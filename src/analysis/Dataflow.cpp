//===- analysis/Dataflow.cpp -----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "analysis/EffectCache.h"
#include "analysis/EffectSnapshot.h"
#include "ir/Subst.h"

using namespace exo;
using namespace exo::analysis;
using namespace exo::ir;

std::pair<Sym, std::vector<EffInt>>
exo::analysis::resolveLocation(const FlowState &State, Sym Name,
                               std::vector<EffInt> Coords) {
  auto It = State.Aliases.find(Name);
  if (It == State.Aliases.end())
    return {Name, std::move(Coords)};
  const AliasInfo &A = It->second;
  std::vector<EffInt> Out;
  Out.reserve(A.Coords.size());
  size_t Next = 0;
  for (const AliasCoord &C : A.Coords) {
    if (!C.IsInterval) {
      Out.push_back(C.Lo);
      continue;
    }
    assert(Next < Coords.size() && "alias rank mismatch");
    EffInt Idx = Coords[Next++];
    Out.push_back({smt::add(C.Lo.Val, Idx.Val), smt::mkAnd(C.Lo.Def, Idx.Def)});
  }
  assert(Next == Coords.size() && "alias rank mismatch");
  // Aliases are stored base-resolved, so one hop suffices.
  return {A.Base, std::move(Out)};
}

std::vector<Sym> exo::analysis::changedKeys(const EffEnv &Before,
                                            const EffEnv &After) {
  std::vector<Sym> Changed;
  for (auto &[Key, Val] : After) {
    auto It = Before.find(Key);
    if (It == Before.end() || !It->second.Val->equals(*Val.Val) ||
        !It->second.Def->equals(*Val.Def))
      Changed.push_back(Key);
  }
  for (auto &[Key, Val] : Before)
    if (!After.count(Key))
      Changed.push_back(Key);
  return Changed;
}

void exo::analysis::havocKeys(AnalysisCtx &Ctx, EffEnv &Env,
                              const std::vector<Sym> &Keys) {
  for (Sym K : Keys)
    Env[K] = Ctx.unknownInt();
}

Block exo::analysis::substitutedCalleeBody(const StmtRef &CallStmt) {
  assert(CallStmt->kind() == StmtKind::Call && "not a call");
  const ProcRef &Callee = CallStmt->proc();
  SymSubst Map;
  const auto &Params = Callee->args();
  const auto &Args = CallStmt->args();
  assert(Params.size() == Args.size() && "call arity mismatch");
  for (size_t I = 0; I < Params.size(); ++I)
    Map[Params[I].Name] = Args[I];
  return refreshBinders(substBlock(Callee->body(), Map));
}

void exo::analysis::flowStmt(AnalysisCtx &Ctx, FlowState &State,
                             const StmtRef &S) {
  // State-invariant subtrees (no WriteConfig/WindowStmt/Call anywhere
  // inside) are identities on the flow state; the memoized predicate makes
  // this a constant-time skip of the If/For recursion below.
  if (isStateInvariant(S))
    return;
  switch (S->kind()) {
  case StmtKind::Assign:
  case StmtKind::Reduce:
  case StmtKind::Pass:
  case StmtKind::Alloc:
    return; // data state is not tracked by ValG
  case StmtKind::WriteConfig:
    State.Env[S->field()] = Ctx.liftControl(S->rhs(), State.Env);
    return;
  case StmtKind::WindowStmt: {
    const ExprRef &W = S->rhs();
    std::vector<AliasCoord> Coords;
    for (const WinCoord &C : W->winCoords())
      Coords.push_back({C.IsInterval, Ctx.liftControl(C.Lo, State.Env)});
    // Resolve through an existing alias so the stored base is physical.
    auto It = State.Aliases.find(W->name());
    if (It == State.Aliases.end()) {
      State.Aliases[S->name()] = {W->name(), std::move(Coords)};
      return;
    }
    const AliasInfo &Inner = It->second;
    std::vector<AliasCoord> Composed;
    size_t Next = 0;
    for (const AliasCoord &C : Inner.Coords) {
      if (!C.IsInterval) {
        Composed.push_back(C);
        continue;
      }
      assert(Next < Coords.size() && "window alias rank mismatch");
      const AliasCoord &O = Coords[Next++];
      Composed.push_back(
          {O.IsInterval,
           {smt::add(C.Lo.Val, O.Lo.Val), smt::mkAnd(C.Lo.Def, O.Lo.Def)}});
    }
    State.Aliases[S->name()] = {Inner.Base, std::move(Composed)};
    return;
  }
  case StmtKind::If: {
    TriBool Cond = Ctx.liftBool(S->rhs(), State.Env);
    FlowState ThenState = State, ElseState = State;
    flowBlock(Ctx, ThenState, S->body());
    flowBlock(Ctx, ElseState, S->orelse());
    // Merge: identical values survive; a fully-known condition merges with
    // ite; otherwise the global becomes unknown.
    bool CondKnown = Cond.Must->equals(*Cond.May);
    EffEnv Merged;
    for (auto &[Key, TVal] : ThenState.Env) {
      auto It = ElseState.Env.find(Key);
      EffInt EVal = It != ElseState.Env.end()
                        ? It->second
                        : EffInt::known(smt::mkVar(Ctx.varFor(Key)));
      if (TVal.Val->equals(*EVal.Val) && TVal.Def->equals(*EVal.Def)) {
        Merged[Key] = TVal;
      } else if (CondKnown) {
        Merged[Key] = {smt::ite(Cond.May, TVal.Val, EVal.Val),
                       smt::ite(Cond.May, TVal.Def, EVal.Def)};
      } else {
        Merged[Key] = Ctx.unknownInt();
      }
    }
    for (auto &[Key, EVal] : ElseState.Env)
      if (!Merged.count(Key)) {
        // Key only changed in the else branch.
        EffInt TVal = EffInt::known(smt::mkVar(Ctx.varFor(Key)));
        auto It = State.Env.find(Key);
        if (It != State.Env.end())
          TVal = It->second;
        if (EVal.Val->equals(*TVal.Val) && EVal.Def->equals(*TVal.Def))
          Merged[Key] = EVal;
        else if (CondKnown)
          Merged[Key] = {smt::ite(Cond.May, TVal.Val, EVal.Val),
                         smt::ite(Cond.May, TVal.Def, EVal.Def)};
        else
          Merged[Key] = Ctx.unknownInt();
      }
    State.Env = std::move(Merged);
    // Aliases bound inside branches are out of scope afterwards.
    return;
  }
  case StmtKind::For: {
    // Stabilization heuristic (§5.3): run the body symbolically once; any
    // global that does not provably return to its entry value is ⊥ both
    // inside subsequent analysis and after the loop. The snapshot's probe
    // cache computes exactly this (same copy/bind/flow/diff), so flows in
    // incremental mode share its per-(node, env-slice) lines.
    if (EffectSnapshot *Snap = activeEffectSnapshot()) {
      havocKeys(Ctx, State.Env, Snap->loopStabilizedKeys(Ctx, S, State));
      return;
    }
    FlowState BodyState = State;
    BodyState.Env[S->name()] = Ctx.unknownInt(); // some iteration
    flowBlock(Ctx, BodyState, S->body());
    BodyState.Env.erase(S->name());
    EffEnv Entry = State.Env;
    std::vector<Sym> Changed = changedKeys(Entry, BodyState.Env);
    havocKeys(Ctx, State.Env, Changed);
    return;
  }
  case StmtKind::Call: {
    Block Body = substitutedCalleeBody(S);
    flowBlock(Ctx, State, Body);
    return;
  }
  }
}

void exo::analysis::flowBlock(AnalysisCtx &Ctx, FlowState &State,
                              const Block &B) {
  for (auto &S : B)
    flowStmt(Ctx, State, S);
}
