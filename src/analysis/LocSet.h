//===- analysis/LocSet.h - Symbolic location sets --------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Location sets (Def 5.3): symbolic abstractions of sets of store
/// locations — elements of heap buffers (a base symbol plus integer
/// coordinates) and configuration globals (a field symbol, rank 0).
///
/// Because membership is a *ternary* predicate, a LocSet simultaneously
/// carries a lower bound (D-membership: definitely in) and an upper bound
/// (M-membership: possibly in), which is exactly what distinguishes the
/// commutativity checks (needing "definitely disjoint") from the
/// shadowing checks (needing "definitely overwritten") in §5.7.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_ANALYSIS_LOCSET_H
#define EXO_ANALYSIS_LOCSET_H

#include "analysis/EffExpr.h"

#include <set>

namespace exo {
namespace analysis {

class LocSet;
using LocSetRef = std::shared_ptr<const LocSet>;

/// A symbolic set of store locations.
class LocSet {
public:
  enum class Kind {
    Empty,
    Single,   ///< { (Base, Coords) } — one (symbolic) location
    Union,    ///< L1 ∪ ... ∪ Ln
    Inter,    ///< L1 ∩ L2
    Diff,     ///< L1 − L2
    BigUnion, ///< ⋃_x L — union over all integer values of a variable
    Filter,   ///< filter(p, L) — members of L when p, else nothing
  };

  Kind kind() const { return TheKind; }
  ir::Sym base() const { return Base; }
  const std::vector<EffInt> &coords() const { return Coords; }
  const std::vector<LocSetRef> &parts() const { return Parts; }
  const smt::TermVar &boundVar() const { return Bound; }
  const TriBool &cond() const { return Cond; }

  // Factories --------------------------------------------------------------
  static LocSetRef empty();
  static LocSetRef single(ir::Sym Base, std::vector<EffInt> Coords);
  static LocSetRef unionOf(std::vector<LocSetRef> Parts);
  static LocSetRef unionOf(LocSetRef A, LocSetRef B);
  static LocSetRef interOf(LocSetRef A, LocSetRef B);
  static LocSetRef diffOf(LocSetRef A, LocSetRef B);
  static LocSetRef bigUnion(smt::TermVar X, LocSetRef L);
  static LocSetRef filter(TriBool P, LocSetRef L);

  bool isEmpty() const { return TheKind == Kind::Empty; }

  /// The base symbols that can possibly appear in this set, paired with
  /// their coordinate rank.
  void collectBases(std::map<ir::Sym, unsigned> &Out) const;

  /// Ternary membership: is the location (Name, Pt) in this set?
  TriBool member(ir::Sym Name, const std::vector<smt::TermRef> &Pt) const;

  std::string str() const;

  LocSet(Kind K) : TheKind(K), Bound{0, "", smt::Sort::Int} {}

  // Internal state (public for factory use).
  Kind TheKind;
  ir::Sym Base;
  std::vector<EffInt> Coords;
  std::vector<LocSetRef> Parts;
  smt::TermVar Bound;
  TriBool Cond = TriBool::yes();
};

/// Ternary emptiness of S restricted to base \p Name with \p Rank fresh
/// point variables: ∀pt. ¬(pt ∈ S).
TriBool emptyAt(const LocSetRef &S, ir::Sym Name, unsigned Rank);

/// Ternary "S1 ∩ S2 = ∅" across all bases.
TriBool disjoint(const LocSetRef &A, const LocSetRef &B);

} // namespace analysis
} // namespace exo

#endif // EXO_ANALYSIS_LOCSET_H
