//===- analysis/EffExpr.cpp ------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/EffExpr.h"

#include <mutex>

using namespace exo;
using namespace exo::analysis;
using namespace exo::smt;
using ir::BinOpKind;
using ir::ExprKind;

namespace {

/// Process-wide Sym ↔ solver-var registry shared by every AnalysisCtx (see
/// the class comment in EffExpr.h). ir::Sym ids are globally unique, so
/// entries never conflict and the maps only grow.
struct SymRegistry {
  std::mutex M;
  std::unordered_map<ir::Sym, TermVar> Vars;
  std::unordered_map<unsigned, ir::Sym> VarSyms;
  std::map<std::pair<ir::Sym, unsigned>, TermRef> Strides;
  std::unordered_map<unsigned, std::pair<ir::Sym, unsigned>> StrideSyms;

  static SymRegistry &get() {
    static SymRegistry R;
    return R;
  }
};

} // namespace

TriBool exo::analysis::triAnd(const TriBool &A, const TriBool &B) {
  return {mkAnd(A.Must, B.Must), mkAnd(A.May, B.May)};
}

TriBool exo::analysis::triOr(const TriBool &A, const TriBool &B) {
  return {mkOr(A.Must, B.Must), mkOr(A.May, B.May)};
}

TriBool exo::analysis::triNot(const TriBool &A) {
  return {mkNot(A.May), mkNot(A.Must)};
}

TriBool exo::analysis::triImplies(const TriBool &A, const TriBool &B) {
  return triOr(triNot(A), B);
}

TriBool exo::analysis::triExists(const TermVar &V, const TriBool &A) {
  return {exists(V, A.Must), exists(V, A.May)};
}

TriBool exo::analysis::triForall(const TermVar &V, const TriBool &A) {
  return {forall(V, A.Must), forall(V, A.May)};
}

TriBool exo::analysis::triCmp(BinOpKind Op, const EffInt &A, const EffInt &B) {
  TermRef Cmp;
  switch (Op) {
  case BinOpKind::Eq:
    Cmp = eq(A.Val, B.Val);
    break;
  case BinOpKind::Ne:
    Cmp = ne(A.Val, B.Val);
    break;
  case BinOpKind::Lt:
    Cmp = lt(A.Val, B.Val);
    break;
  case BinOpKind::Gt:
    Cmp = gt(A.Val, B.Val);
    break;
  case BinOpKind::Le:
    Cmp = le(A.Val, B.Val);
    break;
  case BinOpKind::Ge:
    Cmp = ge(A.Val, B.Val);
    break;
  default:
    fatalError("triCmp: not a comparison");
  }
  TermRef BothKnown = mkAnd(A.Def, B.Def);
  return {mkAnd(BothKnown, Cmp), mkOr(mkNot(BothKnown), Cmp)};
}

TriBool exo::analysis::triEq(const EffInt &A, const EffInt &B) {
  return triCmp(BinOpKind::Eq, A, B);
}

TermVar AnalysisCtx::varFor(ir::Sym S) {
  SymRegistry &R = SymRegistry::get();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Vars.find(S);
  if (It != R.Vars.end())
    return It->second;
  TermVar V = freshVar(S.name(), Sort::Int);
  R.Vars.emplace(S, V);
  R.VarSyms.emplace(V.Id, S);
  return V;
}

std::optional<ir::Sym> AnalysisCtx::symFor(unsigned VarId) const {
  SymRegistry &R = SymRegistry::get();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.VarSyms.find(VarId);
  if (It == R.VarSyms.end())
    return std::nullopt;
  return It->second;
}

TermRef AnalysisCtx::strideValue(ir::Sym Buffer, unsigned Dim) {
  SymRegistry &R = SymRegistry::get();
  std::lock_guard<std::mutex> Lock(R.M);
  auto Key = std::make_pair(Buffer, Dim);
  auto It = R.Strides.find(Key);
  if (It != R.Strides.end())
    return It->second;
  TermRef V = mkVar(freshVar(Buffer.name() + "_stride" + std::to_string(Dim),
                             Sort::Int));
  R.Strides.emplace(Key, V);
  R.StrideSyms.emplace(V->var().Id, Key);
  return V;
}

std::optional<std::pair<ir::Sym, unsigned>>
AnalysisCtx::strideFor(unsigned VarId) const {
  SymRegistry &R = SymRegistry::get();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.StrideSyms.find(VarId);
  if (It == R.StrideSyms.end())
    return std::nullopt;
  return It->second;
}

EffInt AnalysisCtx::unknownInt() {
  return {mkVar(freshVar("unk", Sort::Int)), mkFalse()};
}

EffInt AnalysisCtx::liftControl(const ir::ExprRef &E, const EffEnv &Env) {
  if (!E->type().isControl()) // data values are not lifted
    return unknownInt();
  switch (E->kind()) {
  case ExprKind::Const:
    if (E->type().elem() == ir::ScalarKind::Bool)
      return EffInt::known(intConst(E->boolValue() ? 1 : 0));
    return EffInt::known(intConst(E->intValue()));
  case ExprKind::Read: {
    if (!E->args().empty())
      return unknownInt(); // control arrays do not exist; be safe
    auto It = Env.find(E->name());
    if (It != Env.end())
      return It->second;
    return EffInt::known(mkVar(varFor(E->name())));
  }
  case ExprKind::ReadConfig: {
    auto It = Env.find(E->field());
    if (It != Env.end())
      return It->second;
    return EffInt::known(mkVar(varFor(E->field())));
  }
  case ExprKind::StrideExpr:
    return EffInt::known(strideValue(E->name(), E->strideDim()));
  case ExprKind::USub: {
    EffInt A = liftControl(E->args()[0], Env);
    return {neg(A.Val), A.Def};
  }
  case ExprKind::BinOp: {
    BinOpKind Op = E->binOp();
    if (ir::isCompareOp(Op) || Op == BinOpKind::And || Op == BinOpKind::Or) {
      // Boolean in integer position: encode as 0/1.
      TriBool B = liftBool(E, Env);
      // Known iff D and M agree; value is M (== D where known).
      return {ite(B.May, intConst(1), intConst(0)), iff(B.Must, B.May)};
    }
    EffInt A = liftControl(E->args()[0], Env);
    EffInt B = liftControl(E->args()[1], Env);
    TermRef Def = mkAnd(A.Def, B.Def);
    switch (Op) {
    case BinOpKind::Add:
      return {add(A.Val, B.Val), Def};
    case BinOpKind::Sub:
      return {sub(A.Val, B.Val), Def};
    case BinOpKind::Mul:
      // Quasi-affine: one side must be a literal.
      if (A.Val->kind() == TermKind::IntConst)
        return {mul(A.Val->intValue(), B.Val), Def};
      if (B.Val->kind() == TermKind::IntConst)
        return {mul(B.Val->intValue(), A.Val), Def};
      return unknownInt();
    case BinOpKind::Div:
      if (B.Val->kind() == TermKind::IntConst && B.Val->intValue() > 0)
        return {div(A.Val, B.Val->intValue()), Def};
      return unknownInt();
    case BinOpKind::Mod:
      if (B.Val->kind() == TermKind::IntConst && B.Val->intValue() > 0)
        return {mod(A.Val, B.Val->intValue()), Def};
      return unknownInt();
    default:
      return unknownInt();
    }
  }
  default:
    return unknownInt();
  }
}

TriBool AnalysisCtx::liftBool(const ir::ExprRef &E, const EffEnv &Env) {
  switch (E->kind()) {
  case ExprKind::Const:
    if (E->type().elem() == ir::ScalarKind::Bool)
      return E->boolValue() ? TriBool::yes() : TriBool::no();
    return TriBool::unknown();
  case ExprKind::BinOp: {
    BinOpKind Op = E->binOp();
    if (Op == BinOpKind::And)
      return triAnd(liftBool(E->args()[0], Env), liftBool(E->args()[1], Env));
    if (Op == BinOpKind::Or)
      return triOr(liftBool(E->args()[0], Env), liftBool(E->args()[1], Env));
    if (ir::isCompareOp(Op))
      return triCmp(Op, liftControl(E->args()[0], Env),
                    liftControl(E->args()[1], Env));
    return TriBool::unknown();
  }
  case ExprKind::Read:
  case ExprKind::ReadConfig: {
    // A boolean variable: 0/1-encoded integer.
    EffInt V = liftControl(E, Env);
    return triCmp(BinOpKind::Ge, V, EffInt::known(intConst(1)));
  }
  default:
    return TriBool::unknown();
  }
}

SolverResult AnalysisCtx::checkDefinitely(const TriBool &P) {
  return TheSolver.checkValid(P.Must);
}

SolverResult AnalysisCtx::checkDefinitely(const TriBool &Premise,
                                          const TriBool &P) {
  // Conservative strengthening: require the conclusion to definitely hold
  // whenever the premise may hold (the premise's M is what the rewrite
  // conditions of §5.7/5.8 use).
  return TheSolver.checkValid(implies(Premise.May, P.Must));
}
