//===- analysis/Context.cpp ------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/Context.h"

#include "analysis/EffectSnapshot.h"
#include "support/Error.h"

#include <functional>

using namespace exo;
using namespace exo::analysis;
using namespace exo::ir;

const Block &exo::analysis::blockAt(const Proc &P, const StmtCursor &C) {
  const Block *B = &P.body();
  for (const PathStep &Step : C.Path) {
    if (Step.Index >= B->size())
      fatalError("blockAt: path index out of range");
    const StmtRef &S = (*B)[Step.Index];
    B = Step.Into == PathStep::Branch::Body ? &S->body() : &S->orelse();
  }
  if (C.End > B->size() || C.Begin > C.End)
    fatalError("blockAt: selection out of range");
  return *B;
}

std::vector<StmtRef> exo::analysis::selectedStmts(const Proc &P,
                                                  const StmtCursor &C) {
  const Block &B = blockAt(P, C);
  return std::vector<StmtRef>(B.begin() + C.Begin, B.begin() + C.End);
}

namespace {

Block replaceRangeImpl(const Block &B, const StmtCursor &C, unsigned Depth,
                       const std::vector<StmtRef> &NewStmts) {
  Block Out = B;
  if (Depth == C.Path.size()) {
    Out.erase(Out.begin() + C.Begin, Out.begin() + C.End);
    Out.insert(Out.begin() + C.Begin, NewStmts.begin(), NewStmts.end());
    return Out;
  }
  const PathStep &Step = C.Path[Depth];
  const StmtRef &S = B[Step.Index];
  if (S->kind() == StmtKind::For) {
    assert(Step.Into == PathStep::Branch::Body && "orelse of a loop");
    Out[Step.Index] = withForParts(
        S, S->lo(), S->hi(), replaceRangeImpl(S->body(), C, Depth + 1,
                                              NewStmts));
  } else if (S->kind() == StmtKind::If) {
    if (Step.Into == PathStep::Branch::Body)
      Out[Step.Index] = withIfParts(
          S, S->rhs(), replaceRangeImpl(S->body(), C, Depth + 1, NewStmts),
          S->orelse());
    else
      Out[Step.Index] = withIfParts(
          S, S->rhs(), S->body(),
          replaceRangeImpl(S->orelse(), C, Depth + 1, NewStmts));
  } else {
    fatalError("replaceRange: path descends into a leaf statement");
  }
  return Out;
}

} // namespace

Block exo::analysis::replaceRange(const Block &Body, const StmtCursor &C,
                                  const std::vector<StmtRef> &NewStmts) {
  return replaceRangeImpl(Body, C, 0, NewStmts);
}

void exo::analysis::collectConfigReads(const StmtRef &S,
                                       std::set<Sym> &Out) {
  // Expression-level reads.
  std::function<void(const ExprRef &)> Walk = [&](const ExprRef &E) {
    if (!E)
      return;
    if (E->kind() == ExprKind::ReadConfig)
      Out.insert(E->field());
    for (auto &C : childExprs(E))
      Walk(C);
  };
  for (auto &I : S->indices())
    Walk(I);
  if (S->Rhs)
    Walk(S->Rhs);
  if (S->kind() == StmtKind::For) {
    Walk(S->lo());
    Walk(S->hi());
  }
  if (S->kind() == StmtKind::Alloc)
    for (auto &D : S->allocType().dims())
      Walk(D);
  if (S->kind() == StmtKind::Call)
    collectConfigReads(S->proc()->body(), Out);
  collectConfigReads(S->body(), Out);
  collectConfigReads(S->orelse(), Out);
}

void exo::analysis::collectConfigReads(const Block &B, std::set<Sym> &Out) {
  for (auto &S : B)
    collectConfigReads(S, Out);
}

namespace {

void collectConfigWritesStmt(const StmtRef &S, std::set<Sym> &Out) {
  if (S->kind() == StmtKind::WriteConfig)
    Out.insert(S->field());
  if (S->kind() == StmtKind::Call)
    collectConfigWrites(S->proc()->body(), Out);
  collectConfigWrites(S->body(), Out);
  collectConfigWrites(S->orelse(), Out);
}

} // namespace

void exo::analysis::collectConfigWrites(const Block &B, std::set<Sym> &Out) {
  for (auto &S : B)
    collectConfigWritesStmt(S, Out);
}

ContextInfo exo::analysis::computeContext(AnalysisCtx &Ctx, const Proc &P,
                                          const StmtCursor &C) {
  ContextInfo Info;

  // Incremental mode: per-subtree summaries (config sets, stabilization
  // probes) come from the thread's snapshot when one is active. The
  // snapshot serves exactly what the inline walks below would compute, so
  // the two modes differ only in work saved, never in results.
  EffectSnapshot *Snap = activeEffectSnapshot();
  auto AddCfg = [&](const StmtRef &S) {
    if (Snap) {
      Snap->configSets(S, Info.PostReadFields, Info.PostWriteFields);
    } else {
      collectConfigReads(S, Info.PostReadFields);
      collectConfigWrites({S}, Info.PostWriteFields);
    }
  };

  // Asserted preconditions strengthen the path condition (§3.1 item 6).
  for (auto &Pred : P.preds())
    Info.PathCond = triAnd(Info.PathCond, Ctx.liftBool(Pred, Info.Pre.Env));

  const Block *B = &P.body();
  // Collect post-context fields: trailing statements at every level, plus
  // everything inside the outermost enclosing loop (later iterations
  // re-execute the siblings that precede the selection).
  bool SawLoop = false;

  for (size_t Depth = 0; Depth <= C.Path.size(); ++Depth) {
    unsigned Stop = Depth < C.Path.size() ? C.Path[Depth].Index : C.Begin;
    if (Stop > B->size() || (Depth < C.Path.size() && Stop >= B->size()))
      fatalError("computeContext: cursor path out of range");
    // Flow through the preceding statements of this level.
    for (unsigned I = 0; I < Stop; ++I) {
      flowStmt(Ctx, Info.Pre, (*B)[I]);
      if (SawLoop)
        AddCfg((*B)[I]);
    }
    // Trailing statements at this level execute after the selection.
    unsigned After = Depth < C.Path.size() ? C.Path[Depth].Index + 1 : C.End;
    for (unsigned I = After; I < B->size(); ++I)
      AddCfg((*B)[I]);
    if (Depth == C.Path.size())
      break;

    const StmtRef &S = (*B)[C.Path[Depth].Index];
    if (S->kind() == StmtKind::For) {
      Info.EnclosingLoops.push_back(S);
      if (!SawLoop) {
        SawLoop = true;
        // All of this loop's body may re-execute after the selection; the
        // deeper walk adds the preceding/trailing parts, and the selection
        // itself is added conservatively here by including the full
        // subtree minus nothing — simpler and sound.
        for (auto &Child : S->body())
          AddCfg(Child);
      }
      // Entering the loop at an arbitrary iteration: stabilize globals and
      // bind the iterator to a fresh variable constrained by its bounds.
      EffInt Lo = Ctx.liftControl(S->lo(), Info.Pre.Env);
      EffInt Hi = Ctx.liftControl(S->hi(), Info.Pre.Env);
      if (Snap) {
        havocKeys(Ctx, Info.Pre.Env,
                  Snap->loopStabilizedKeys(Ctx, S, Info.Pre));
      } else {
        FlowState Probe = Info.Pre;
        Probe.Env[S->name()] = Ctx.unknownInt();
        flowBlock(Ctx, Probe, S->body());
        Probe.Env.erase(S->name());
        havocKeys(Ctx, Info.Pre.Env, changedKeys(Info.Pre.Env, Probe.Env));
      }
      // Use the symbol's canonical solver variable so downstream passes
      // (notably unification) can render solutions back to expressions.
      smt::TermVar X = Ctx.varFor(S->name());
      EffInt XV = EffInt::known(smt::mkVar(X));
      Info.Pre.Env[S->name()] = XV;
      Info.PathCond = triAnd(
          Info.PathCond, triAnd(triCmp(BinOpKind::Le, Lo, XV),
                                triCmp(BinOpKind::Lt, XV, Hi)));
    } else if (S->kind() == StmtKind::If) {
      TriBool Cond = Ctx.liftBool(S->rhs(), Info.Pre.Env);
      if (C.Path[Depth].Into == PathStep::Branch::Body)
        Info.PathCond = triAnd(Info.PathCond, Cond);
      else
        Info.PathCond = triAnd(Info.PathCond, triNot(Cond));
    } else {
      fatalError("computeContext: path descends into a leaf statement");
    }
    B = C.Path[Depth].Into == PathStep::Branch::Body ? &S->body()
                                                     : &S->orelse();
  }
  return Info;
}
