//===- analysis/Checks.cpp -------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/Checks.h"

#include "smt/Simplify.h"

using namespace exo;
using namespace exo::analysis;
using namespace exo::smt;

namespace {

/// One Single access reached by the fast-path walk: its coordinates, the
/// interval bounds harvested from Filter conditions on the path, and the
/// BigUnion binder ids the coordinates may mention.
struct FlatAccess {
  ir::Sym Base;
  const std::vector<EffInt> *Coords;
  IntervalEnv Bounds;
  std::set<unsigned> Binders;
};

/// Flattens a location set into Single accesses, over-approximating
/// Inter and Diff by their left operand (sound for disjointness: the
/// flattened list covers every possibly-member location). Returns false
/// when the shape is not analyzable.
bool flattenForFastPath(const LocSetRef &S, IntervalEnv Bounds,
                        std::set<unsigned> Binders,
                        std::vector<FlatAccess> &Out) {
  switch (S->kind()) {
  case LocSet::Kind::Empty:
    return true;
  case LocSet::Kind::Single:
    Out.push_back({S->base(), &S->coords(), std::move(Bounds),
                   std::move(Binders)});
    return true;
  case LocSet::Kind::Union:
    for (const LocSetRef &P : S->parts())
      if (!flattenForFastPath(P, Bounds, Binders, Out))
        return false;
    return true;
  case LocSet::Kind::Inter:
  case LocSet::Kind::Diff:
    // Members(Inter/Diff) ⊆ Members(left operand).
    return flattenForFastPath(S->parts()[0], std::move(Bounds),
                              std::move(Binders), Out);
  case LocSet::Kind::BigUnion:
    Binders.insert(S->boundVar().Id);
    return flattenForFastPath(S->parts()[0], std::move(Bounds),
                              std::move(Binders), Out);
  case LocSet::Kind::Filter:
    // Possible membership requires the condition to *possibly* hold, so
    // bounds must come from the May side (Must would be unsound).
    collectIntervalFacts(S->cond().May, Bounds);
    return flattenForFastPath(S->parts()[0], std::move(Bounds),
                              std::move(Binders), Out);
  }
  return false;
}

/// True when both env intervals jointly rule out any model (a variable
/// constrained to an empty interval).
bool envContradictory(const IntervalEnv &Env) {
  for (const auto &[Var, IV] : Env) {
    (void)Var;
    if (IV.empty())
      return true;
  }
  return false;
}

/// Can accesses PA and PB (same base) provably never alias? True when
/// some dimension's coordinate difference has an interval excluding 0
/// under the merged bounds, or the merged bounds are contradictory.
bool pairSeparated(const FlatAccess &PA, const FlatAccess &PB) {
  // Shared BigUnion binder ids would identify the two sides' binders
  // and prove only the "diagonal" of the cross product — e.g. a(x)=x
  // vs b(x)=x+1 overlap at a(1)=b(0) even though x != x+1 for every
  // single x. Bail; the solver renames binders apart.
  for (unsigned Id : PA.Binders)
    if (PB.Binders.count(Id))
      return false;
  IntervalEnv Env = PA.Bounds;
  for (const auto &[Var, IV] : PB.Bounds) {
    ValueInterval &Slot = Env[Var];
    if (IV.Lo && (!Slot.Lo || *Slot.Lo < *IV.Lo))
      Slot.Lo = IV.Lo;
    if (IV.Hi && (!Slot.Hi || *Slot.Hi > *IV.Hi))
      Slot.Hi = IV.Hi;
  }
  if (envContradictory(Env))
    return true; // the two filters cannot hold at once
  if (PA.Coords->size() != PB.Coords->size())
    return false;
  for (size_t D = 0; D < PA.Coords->size(); ++D) {
    const EffInt &CA = (*PA.Coords)[D], &CB = (*PB.Coords)[D];
    if (!CA.isKnown() || !CB.isKnown())
      continue;
    auto La = linearFromTerm(CA.Val), Lb = linearFromTerm(CB.Val);
    if (!La || !Lb)
      continue;
    ValueInterval IV = intervalOfLinear(*La - *Lb, Env);
    if (IV.empty())
      continue;
    if ((IV.Lo && *IV.Lo >= 1) || (IV.Hi && *IV.Hi <= -1))
      return true; // coordinates can never be equal in dimension D
  }
  return false;
}

} // namespace

bool exo::analysis::disjointFastPath(const LocSetRef &A, const LocSetRef &B) {
  std::vector<FlatAccess> AccA, AccB;
  if (!flattenForFastPath(A, {}, {}, AccA) ||
      !flattenForFastPath(B, {}, {}, AccB))
    return false;
  for (const FlatAccess &PA : AccA)
    for (const FlatAccess &PB : AccB) {
      if (!(PA.Base == PB.Base))
        continue;
      if (!pairSeparated(PA, PB))
        return false;
    }
  return true;
}

TermRef exo::analysis::commutesCond(const EffectSets &A, const EffectSets &B) {
  TriBool C = triAnd(
      triAnd(disjoint(A.wr(), B.all()), disjoint(B.wr(), A.all())),
      triAnd(disjoint(A.rplus(), B.rd()), disjoint(B.rplus(), A.rd())));
  return C.Must;
}

TermRef exo::analysis::shadowsCond(const EffectSets &A, const EffectSets &B) {
  // For every location possibly modified by A: B does not read it (even
  // maybe, including reductions) and definitely writes it.
  LocSetRef ModA = A.mod();
  LocSetRef RdB = LocSet::unionOf(B.rd(), B.rplus());
  LocSetRef WrB = B.wr();
  std::map<ir::Sym, unsigned> Bases;
  ModA->collectBases(Bases);
  std::vector<TermRef> Parts;
  for (auto &[Name, Rank] : Bases) {
    std::vector<TermVar> PtVars;
    std::vector<TermRef> Pt;
    for (unsigned I = 0; I < Rank; ++I) {
      PtVars.push_back(freshVar("sp" + std::to_string(I), Sort::Int));
      Pt.push_back(mkVar(PtVars.back()));
    }
    TermRef Body = implies(
        ModA->member(Name, Pt).May,
        mkAnd(mkNot(RdB->member(Name, Pt).May), WrB->member(Name, Pt).Must));
    for (auto It = PtVars.rbegin(); It != PtVars.rend(); ++It)
      Body = forall(*It, Body);
    Parts.push_back(Body);
  }
  return mkAnd(std::move(Parts));
}

bool exo::analysis::provedUnderPremise(AnalysisCtx &Ctx,
                                       const TriBool &Premise,
                                       const TermRef &Cond) {
  return Ctx.solver().checkValid(implies(Premise.May, Cond)) ==
         SolverResult::Yes;
}

ScheduleErrorInfo::Verdict
exo::analysis::dischargeUnderPremise(AnalysisCtx &Ctx, const TriBool &Premise,
                                     const TermRef &Cond) {
  Solver &S = Ctx.solver();
  // The solver only says Unknown; its per-instance stats carry the
  // budget/structural/timeout breakdown. Delta them around the query.
  uint64_t BudgetBefore = S.stats().NumUnknownBudget;
  uint64_t TimeoutBefore = S.stats().NumUnknownTimeout;
  switch (S.checkValid(implies(Premise.May, Cond))) {
  case SolverResult::Yes:
    return ScheduleErrorInfo::Verdict::Yes;
  case SolverResult::No:
    return ScheduleErrorInfo::Verdict::No;
  case SolverResult::Unknown:
    break;
  }
  if (S.stats().NumUnknownTimeout > TimeoutBefore)
    return ScheduleErrorInfo::Verdict::UnknownTimeout;
  return S.stats().NumUnknownBudget > BudgetBefore
             ? ScheduleErrorInfo::Verdict::UnknownBudget
             : ScheduleErrorInfo::Verdict::UnknownStructural;
}
