//===- analysis/Checks.cpp -------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/Checks.h"

using namespace exo;
using namespace exo::analysis;
using namespace exo::smt;

TermRef exo::analysis::commutesCond(const EffectSets &A, const EffectSets &B) {
  TriBool C = triAnd(
      triAnd(disjoint(A.wr(), B.all()), disjoint(B.wr(), A.all())),
      triAnd(disjoint(A.rplus(), B.rd()), disjoint(B.rplus(), A.rd())));
  return C.Must;
}

TermRef exo::analysis::shadowsCond(const EffectSets &A, const EffectSets &B) {
  // For every location possibly modified by A: B does not read it (even
  // maybe, including reductions) and definitely writes it.
  LocSetRef ModA = A.mod();
  LocSetRef RdB = LocSet::unionOf(B.rd(), B.rplus());
  LocSetRef WrB = B.wr();
  std::map<ir::Sym, unsigned> Bases;
  ModA->collectBases(Bases);
  std::vector<TermRef> Parts;
  for (auto &[Name, Rank] : Bases) {
    std::vector<TermVar> PtVars;
    std::vector<TermRef> Pt;
    for (unsigned I = 0; I < Rank; ++I) {
      PtVars.push_back(freshVar("sp" + std::to_string(I), Sort::Int));
      Pt.push_back(mkVar(PtVars.back()));
    }
    TermRef Body = implies(
        ModA->member(Name, Pt).May,
        mkAnd(mkNot(RdB->member(Name, Pt).May), WrB->member(Name, Pt).Must));
    for (auto It = PtVars.rbegin(); It != PtVars.rend(); ++It)
      Body = forall(*It, Body);
    Parts.push_back(Body);
  }
  return mkAnd(std::move(Parts));
}

bool exo::analysis::provedUnderPremise(AnalysisCtx &Ctx,
                                       const TriBool &Premise,
                                       const TermRef &Cond) {
  return Ctx.solver().checkValid(implies(Premise.May, Cond)) ==
         SolverResult::Yes;
}

ScheduleErrorInfo::Verdict
exo::analysis::dischargeUnderPremise(AnalysisCtx &Ctx, const TriBool &Premise,
                                     const TermRef &Cond) {
  Solver &S = Ctx.solver();
  // The solver only says Unknown; its per-instance stats carry the
  // budget/structural/timeout breakdown. Delta them around the query.
  uint64_t BudgetBefore = S.stats().NumUnknownBudget;
  uint64_t TimeoutBefore = S.stats().NumUnknownTimeout;
  switch (S.checkValid(implies(Premise.May, Cond))) {
  case SolverResult::Yes:
    return ScheduleErrorInfo::Verdict::Yes;
  case SolverResult::No:
    return ScheduleErrorInfo::Verdict::No;
  case SolverResult::Unknown:
    break;
  }
  if (S.stats().NumUnknownTimeout > TimeoutBefore)
    return ScheduleErrorInfo::Verdict::UnknownTimeout;
  return S.stats().NumUnknownBudget > BudgetBefore
             ? ScheduleErrorInfo::Verdict::UnknownBudget
             : ScheduleErrorInfo::Verdict::UnknownStructural;
}
