//===- analysis/EffectSnapshot.cpp -----------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "analysis/EffectSnapshot.h"

#include <functional>

using namespace exo;
using namespace exo::analysis;
using namespace exo::ir;

namespace {

using Fingerprint =
    std::vector<std::tuple<Sym, smt::TermRef, smt::TermRef>>;

/// The environment is small (config fields plus enclosing iterators);
/// walking it and filtering by relevance is much cheaper than probing the
/// environment for every free symbol of a large body.
Fingerprint fingerprintOf(const std::set<Sym> &FreeSyms,
                          const FlowState &State) {
  Fingerprint FP;
  for (auto &[Sy, Val] : State.Env)
    if (FreeSyms.count(Sy))
      FP.emplace_back(Sy, Val.Val, Val.Def);
  return FP;
}

/// Free uses of one expression, mirroring ir::freeVars' Collector: Read,
/// WindowExpr, and StrideExpr use their base symbol; config reads are not
/// free locals.
void exprUses(const ExprRef &E, std::set<Sym> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::Read:
  case ExprKind::WindowExpr:
  case ExprKind::StrideExpr:
    Out.insert(E->name());
    break;
  default:
    break;
  }
  for (auto &C : childExprs(E))
    exprUses(C, Out);
}

bool fingerprintsEqual(const Fingerprint &A, const Fingerprint &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (std::get<0>(A[I]) != std::get<0>(B[I]) ||
        !std::get<1>(A[I])->equals(*std::get<1>(B[I])) ||
        !std::get<2>(A[I])->equals(*std::get<2>(B[I])))
      return false;
  }
  return true;
}

} // namespace

EffectSnapshot::NodeRecord &EffectSnapshot::recordFor(const StmtRef &S) {
  NodeRecord &R = Table[S.get()];
  if (!R.Pin)
    R.Pin = S;
  return R;
}

/// Derives and stores the node's config read/write summary. Children are
/// pulled through the table, so after a rewrite the new spine node
/// recomputes only its own level and reuses the (shared) siblings below —
/// the sub-linear step this file exists for.
void EffectSnapshot::deriveCfg(const StmtRef &S) {
  std::set<Sym> Reads, Writes;
  std::function<void(const ExprRef &)> Walk = [&](const ExprRef &E) {
    if (!E)
      return;
    if (E->kind() == ExprKind::ReadConfig)
      Reads.insert(E->field());
    for (auto &C : childExprs(E))
      Walk(C);
  };
  // Expression-level reads, mirroring collectConfigReads exactly.
  for (auto &I : S->indices())
    Walk(I);
  if (S->Rhs)
    Walk(S->Rhs);
  if (S->kind() == StmtKind::For) {
    Walk(S->lo());
    Walk(S->hi());
  }
  if (S->kind() == StmtKind::Alloc)
    for (auto &D : S->allocType().dims())
      Walk(D);
  if (S->kind() == StmtKind::WriteConfig)
    Writes.insert(S->field());
  if (S->kind() == StmtKind::Call)
    cfgOfBlock(S->proc()->body(), Reads, Writes);
  cfgOfBlock(S->body(), Reads, Writes);
  cfgOfBlock(S->orelse(), Reads, Writes);

  NodeRecord &R = recordFor(S);
  R.CfgReads = std::move(Reads);
  R.CfgWrites = std::move(Writes);
  R.HaveCfg = true;
}

void EffectSnapshot::cfgOfBlock(const Block &B, std::set<Sym> &Reads,
                                std::set<Sym> &Writes) {
  for (auto &S : B)
    configSets(S, Reads, Writes);
}

void EffectSnapshot::configSets(const StmtRef &S, std::set<Sym> &Reads,
                                std::set<Sym> &Writes) {
  if (Table.size() >= MaxNodes) {
    Table.clear();
    ++Stats.Evictions;
  }
  {
    NodeRecord &R = recordFor(S);
    if (R.HaveCfg) {
      ++Stats.Hits;
      Reads.insert(R.CfgReads.begin(), R.CfgReads.end());
      Writes.insert(R.CfgWrites.begin(), R.CfgWrites.end());
      return;
    }
  }
  ++Stats.Misses;
  // deriveCfg inserts child records; unordered_map rehashing keeps element
  // references stable, but we still re-fetch the record afterwards.
  deriveCfg(S);
  NodeRecord &R = recordFor(S);
  Reads.insert(R.CfgReads.begin(), R.CfgReads.end());
  Writes.insert(R.CfgWrites.begin(), R.CfgWrites.end());
}

/// The statement's standalone free-variable set: uses minus whatever the
/// statement itself binds around them (its own For iterator, earlier
/// Alloc/WindowStmt siblings inside nested blocks). Equals
/// ir::freeVars(StmtRef) — but children come through the table, so a
/// rebuilt node recomputes one level and shares the rest.
const std::set<Sym> &EffectSnapshot::freeUses(const StmtRef &S) {
  if (Table.size() >= MaxNodes) {
    Table.clear();
    ++Stats.Evictions;
  }
  {
    NodeRecord &R = recordFor(S);
    if (R.HaveFree) {
      ++Stats.Hits;
      return R.FreeUses;
    }
  }
  ++Stats.Misses;
  std::set<Sym> Uses;
  switch (S->kind()) {
  case StmtKind::Assign:
  case StmtKind::Reduce:
    Uses.insert(S->name());
    for (auto &I : S->indices())
      exprUses(I, Uses);
    exprUses(S->rhs(), Uses);
    break;
  case StmtKind::WriteConfig:
    exprUses(S->rhs(), Uses);
    break;
  case StmtKind::Pass:
    break;
  case StmtKind::If: {
    exprUses(S->rhs(), Uses);
    std::set<Sym> B = blockFreeVars(S->body());
    Uses.insert(B.begin(), B.end());
    std::set<Sym> O = blockFreeVars(S->orelse());
    Uses.insert(O.begin(), O.end());
    break;
  }
  case StmtKind::For: {
    exprUses(S->lo(), Uses);
    exprUses(S->hi(), Uses);
    std::set<Sym> B = blockFreeVars(S->body());
    B.erase(S->name());
    Uses.insert(B.begin(), B.end());
    break;
  }
  case StmtKind::Alloc:
    for (auto &D : S->allocType().dims())
      exprUses(D, Uses);
    break;
  case StmtKind::Call:
    for (auto &A : S->args())
      exprUses(A, Uses);
    break;
  case StmtKind::WindowStmt:
    exprUses(S->rhs(), Uses);
    break;
  }
  // Recursion may have grown (or, on overflow, flushed) the table;
  // re-fetch the record before storing.
  NodeRecord &R = recordFor(S);
  R.FreeUses = std::move(Uses);
  R.HaveFree = true;
  return R.FreeUses;
}

std::set<Sym> EffectSnapshot::blockFreeVars(const Block &B) {
  // Alloc/WindowStmt bindings scope to the rest of the block; a For's
  // iterator does not outlive the statement. Same fold as ir::freeVars.
  std::set<Sym> Free, Bound;
  for (auto &S : B) {
    const std::set<Sym> &U = freeUses(S);
    for (Sym Sy : U)
      if (!Bound.count(Sy))
        Free.insert(Sy);
    if (S->kind() == StmtKind::Alloc || S->kind() == StmtKind::WindowStmt)
      Bound.insert(S->name());
  }
  return Free;
}

std::vector<Sym> EffectSnapshot::loopStabilizedKeys(AnalysisCtx &Ctx,
                                                    const StmtRef &ForStmt,
                                                    const FlowState &Pre) {
  assert(ForStmt->kind() == StmtKind::For && "not a loop");
  if (Table.size() >= MaxNodes) {
    Table.clear();
    ++Stats.Evictions;
  }
  // The probe's result is a function of the body's structure and the
  // environment slice of its free symbols and configuration fields (read
  // or written, looking through call bodies): the body flow only ever
  // rewrites written config fields, with values built from that slice and
  // from canonical per-symbol solver variables. Entry window aliases
  // cannot influence it — the flow uses them only to compose further
  // aliases, never environment values.
  {
    NodeRecord &R = recordFor(ForStmt);
    if (!R.HaveFreeSyms) {
      std::set<Sym> Syms = blockFreeVars(ForStmt->body());
      std::set<Sym> Rd, Wr;
      cfgOfBlock(ForStmt->body(), Rd, Wr);
      Syms.insert(Rd.begin(), Rd.end());
      Syms.insert(Wr.begin(), Wr.end());
      // cfgOfBlock may have grown the table; re-fetch before storing.
      NodeRecord &R2 = recordFor(ForStmt);
      R2.FreeSyms = std::move(Syms);
      R2.HaveFreeSyms = true;
    }
  }
  NodeRecord &R = recordFor(ForStmt);
  Fingerprint FP = fingerprintOf(R.FreeSyms, Pre);
  for (const ProbeLine &Line : R.Probes)
    if (fingerprintsEqual(Line.Env, FP)) {
      ++Stats.Hits;
      return Line.Changed;
    }
  ++Stats.Misses;

  FlowState Probe = Pre;
  Probe.Env[ForStmt->name()] = Ctx.unknownInt();
  flowBlock(Ctx, Probe, ForStmt->body());
  Probe.Env.erase(ForStmt->name());
  std::vector<Sym> Changed = changedKeys(Pre.Env, Probe.Env);

  // flowBlock does not touch our table, so R is still the live record.
  if (R.Probes.size() >= MaxProbesPerNode)
    R.Probes.clear();
  R.Probes.push_back(ProbeLine{std::move(FP), Changed});
  return Changed;
}

void EffectSnapshot::evictSubtreeRoot(const StmtRef &S) {
  // Only the root's record dies with it; records of its descendants stay —
  // the replacement usually shares them (splitLoop reuses the body
  // statements, fuseLoops the two bodies, and so on).
  Stats.Invalidated += Table.erase(S.get());
}

void EffectSnapshot::noteDerived(const Proc &NewProc) {
  const std::optional<DirtyRegion> &D = NewProc.dirtyRegion();
  const ProcRef &Parent = NewProc.parent();
  // Whole-proc rewrites evict nothing: entries are keyed by node identity
  // and stay correct for whatever nodes the new tree still shares; dead
  // nodes age out via the capacity bound.
  if (!D || D->Whole || !Parent)
    return;
  // The spine indices are identical in parent and child — replaceRange
  // rebuilds the spine statement at the same index of each level.
  const Block *B = &Parent->body();
  for (const DirtyRegion::Step &Step : D->Path) {
    if (Step.Index >= B->size())
      return; // region does not resolve in the parent; nothing to evict
    const StmtRef &S = (*B)[Step.Index];
    evictSubtreeRoot(S);
    B = Step.IntoOrelse ? &S->orelse() : &S->body();
  }
  for (unsigned I = D->Begin; I < D->Begin + D->OldCount && I < B->size();
       ++I)
    evictSubtreeRoot((*B)[I]);
}

void EffectSnapshot::clear() { Table.clear(); }

namespace {

EffectSnapshot *&activeSlot() {
  thread_local EffectSnapshot *Active = nullptr;
  return Active;
}

} // namespace

EffectSnapshot *exo::analysis::activeEffectSnapshot() { return activeSlot(); }

ScopedEffectSnapshot::ScopedEffectSnapshot(EffectSnapshot *S) {
  Prev = activeSlot();
  activeSlot() = S;
}

ScopedEffectSnapshot::~ScopedEffectSnapshot() { activeSlot() = Prev; }
