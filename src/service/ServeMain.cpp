//===- service/ServeMain.cpp - exocc-serve entry point ---------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exocc-serve daemon: a supervised, crash-resilient wrapper around
/// service::Server. Two processes when --supervise is on:
///
///   supervisor ──fork──▶ worker (runs the Server)
///        │  waitpid
///        ├─ worker exits 0 (drained): supervisor exits 0
///        ├─ worker dies (signal / crash op): respawn it — the fresh
///        │  worker loads the crash journal, so clients that reconnect
///        │  and poll their unanswered ids get "worker-crash" instead of
///        │  silence
///        └─ SIGTERM: forwarded to the worker, which drains gracefully
///
/// A crash-loop guard stops respawning after --max-respawns consecutive
/// fast deaths; a broken build must fail loudly, not flap forever.
///
/// On startup the worker scavenges stale exo_* scratch directories left
/// under the temp root by previously crashed processes (age-gated, so
/// concurrent live daemons are untouched).
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "support/FaultInjector.h"
#include "support/Signals.h"
#include "support/TempDir.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace exo;
using namespace exo::service;

namespace {

struct ServeFlags {
  ServerOptions Server;
  bool Supervise = false;
  unsigned MaxRespawns = 16;
  int64_t ScavengeAgeSeconds = 3600; ///< <0 disables startup scavenging
  int64_t DrainGraceMillis = 10000;
  std::string InjectSpec;
  uint64_t InjectSeed = 0;
};

void usage() {
  std::printf(
      "usage: exocc-serve [--unix PATH | --port N] [options]\n"
      "  --unix PATH            listen on a unix socket (stable across\n"
      "                         supervised respawns)\n"
      "  --port N               listen on 127.0.0.1:N (0 = ephemeral)\n"
      "  --workers N            job worker threads (default 4)\n"
      "  --deadline-ms N        default per-job deadline (default 30000)\n"
      "  --journal PATH         crash journal for worker-crash replay\n"
      "  --supervise            respawn the worker process if it crashes\n"
      "  --max-respawns N       crash-loop guard (default 16)\n"
      "  --drain-grace-ms N     in-flight grace on shutdown (default 10000)\n"
      "  --idle-timeout-ms N    per-connection idle deadline (default 60000)\n"
      "  --frame-timeout-ms N   slow-loris frame deadline (default 5000)\n"
      "  --rate N               admission tokens/sec per client (default 50)\n"
      "  --burst N              admission burst size (default 25)\n"
      "  --max-per-client N     per-client in-flight cap (default 8)\n"
      "  --max-global N         global in-flight cap / shed point (64)\n"
      "  --breaker-failures N   consecutive failures that trip (default 3)\n"
      "  --breaker-successes N  half-open successes to close (default 2)\n"
      "  --breaker-backoff-ms N initial open backoff (default 200)\n"
      "  --max-literals N       solver budget for compile jobs\n"
      "  --trim-terms N         flush the term interner between jobs once\n"
      "                         it holds > N live nodes (default 8192;\n"
      "                         0 disables)\n"
      "  --scavenge-age-s N     reap exo_* scratch dirs older than N s\n"
      "                         at startup (default 3600; -1 disables)\n"
      "  --allow-crash-op       honor {\"op\":\"crash\"} (tests only)\n"
      "  --inject SPEC          server-side fault plan (runtime-trap,\n"
      "                         solver-timeout, ... — see exocc-batch)\n"
      "  --inject-seed N        fault plan seed\n");
}

int runWorker(const ServeFlags &F) {
  support::ignoreSigpipe();
  support::installTerminationFlag();

  if (F.ScavengeAgeSeconds >= 0) {
    unsigned N = support::TempDir::scavenge("", F.ScavengeAgeSeconds);
    if (N)
      std::fprintf(stderr, "exocc-serve: scavenged %u stale scratch dir%s\n",
                   N, N == 1 ? "" : "s");
  }

  if (!F.InjectSpec.empty()) {
    auto C = support::FaultInjector::instance().configure(F.InjectSpec,
                                                          F.InjectSeed);
    if (!C) {
      std::fprintf(stderr, "--inject: %s\n", C.error().message().c_str());
      return 2;
    }
  }

  Server S(F.Server);
  Expected<bool> Started = S.start();
  if (!Started) {
    std::fprintf(stderr, "exocc-serve: %s\n",
                 Started.error().message().c_str());
    return 1;
  }

  // The readiness line is the contract with clients and tests: once it
  // appears on stdout the socket accepts connections.
  if (!F.Server.UnixPath.empty())
    std::printf("READY unix=%s pid=%d\n", F.Server.UnixPath.c_str(),
                static_cast<int>(::getpid()));
  else
    std::printf("READY port=%d pid=%d\n", S.port(),
                static_cast<int>(::getpid()));
  std::fflush(stdout);

  // Serve until a termination signal lands or a client asks us to drain.
  while (support::terminationSignal() == 0 && !S.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  S.stop(F.DrainGraceMillis);
  std::fprintf(stderr, "exocc-serve: final stats %s\n",
               S.statsJson().dump().c_str());
  return 0;
}

int supervise(const ServeFlags &F) {
  support::installTerminationFlag();
  unsigned Respawns = 0;
  for (;;) {
    pid_t Child = ::fork();
    if (Child < 0) {
      std::perror("exocc-serve: fork");
      return 1;
    }
    if (Child == 0)
      ::_exit(runWorker(F));

    int Status = 0;
    for (;;) {
      pid_t W = ::waitpid(Child, &Status, 0);
      if (W == Child)
        break;
      if (W < 0 && errno == EINTR) {
        if (support::terminationSignal() != 0) {
          // Forward the shutdown and keep waiting: the worker drains.
          ::kill(Child, SIGTERM);
        }
        continue;
      }
      if (W < 0) {
        std::perror("exocc-serve: waitpid");
        return 1;
      }
    }

    if (support::terminationSignal() != 0)
      return WIFEXITED(Status) ? WEXITSTATUS(Status) : 0;
    if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
      return 0; // clean drain
    if (WIFEXITED(Status) && WEXITSTATUS(Status) == 2)
      return 2; // flag/config error: respawning cannot fix it

    if (++Respawns > F.MaxRespawns) {
      std::fprintf(stderr,
                   "exocc-serve: worker crashed %u times; giving up\n",
                   Respawns);
      return 1;
    }
    if (WIFSIGNALED(Status))
      std::fprintf(stderr,
                   "exocc-serve: worker died on signal %d; respawning "
                   "(%u/%u)\n",
                   WTERMSIG(Status), Respawns, F.MaxRespawns);
    else
      std::fprintf(stderr,
                   "exocc-serve: worker exited %d; respawning (%u/%u)\n",
                   WIFEXITED(Status) ? WEXITSTATUS(Status) : -1, Respawns,
                   F.MaxRespawns);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  ServeFlags F;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (A == "--unix")
      F.Server.UnixPath = Next();
    else if (A == "--port")
      F.Server.TcpPort = std::atoi(Next());
    else if (A == "--workers")
      F.Server.Workers = static_cast<unsigned>(std::atoi(Next()));
    else if (A == "--deadline-ms")
      F.Server.DefaultDeadlineMillis = std::atoll(Next());
    else if (A == "--journal")
      F.Server.JournalPath = Next();
    else if (A == "--supervise")
      F.Supervise = true;
    else if (A == "--max-respawns")
      F.MaxRespawns = static_cast<unsigned>(std::atoi(Next()));
    else if (A == "--drain-grace-ms")
      F.DrainGraceMillis = std::atoll(Next());
    else if (A == "--idle-timeout-ms")
      F.Server.IdleTimeoutMillis = std::atoi(Next());
    else if (A == "--frame-timeout-ms")
      F.Server.FrameTimeoutMillis = std::atoi(Next());
    else if (A == "--rate")
      F.Server.Admission.TokensPerSecond = std::atof(Next());
    else if (A == "--burst")
      F.Server.Admission.BurstTokens = std::atof(Next());
    else if (A == "--max-per-client")
      F.Server.Admission.MaxPerClient =
          static_cast<unsigned>(std::atoi(Next()));
    else if (A == "--max-global")
      F.Server.Admission.MaxGlobal = static_cast<unsigned>(std::atoi(Next()));
    else if (A == "--breaker-failures")
      F.Server.Breaker.FailureThreshold =
          static_cast<unsigned>(std::atoi(Next()));
    else if (A == "--breaker-successes")
      F.Server.Breaker.SuccessThreshold =
          static_cast<unsigned>(std::atoi(Next()));
    else if (A == "--breaker-backoff-ms")
      F.Server.Breaker.InitialBackoffMillis = std::atoll(Next());
    else if (A == "--max-literals")
      F.Server.MaxLiterals = static_cast<uint64_t>(std::atoll(Next()));
    else if (A == "--trim-terms")
      F.Server.TermTrimThreshold = static_cast<size_t>(std::atoll(Next()));
    else if (A == "--scavenge-age-s")
      F.ScavengeAgeSeconds = std::atoll(Next());
    else if (A == "--allow-crash-op")
      F.Server.AllowCrashOp = true;
    else if (A == "--inject")
      F.InjectSpec = Next();
    else if (A == "--inject-seed")
      F.InjectSeed = static_cast<uint64_t>(std::atoll(Next()));
    else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return 2;
    }
  }

  if (F.Supervise && F.Server.UnixPath.empty() && F.Server.TcpPort == 0) {
    std::fprintf(stderr, "exocc-serve: --supervise needs a stable endpoint "
                         "(--unix PATH or a fixed --port)\n");
    return 2;
  }

  return F.Supervise ? supervise(F) : runWorker(F);
}
