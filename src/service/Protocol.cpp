//===- service/Protocol.cpp - Wire protocol of exocc-serve -----*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "support/FaultInjector.h"
#include "support/Signals.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace exo;
using namespace exo::service;

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

const Json *Json::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &F : Obj)
    if (F.first == Key)
      return &F.second;
  return nullptr;
}

int64_t Json::getInt(const std::string &Key, int64_t Def) const {
  const Json *V = get(Key);
  return V ? V->asInt(Def) : Def;
}

bool Json::getBool(const std::string &Key, bool Def) const {
  const Json *V = get(Key);
  return V ? V->asBool(Def) : Def;
}

std::string Json::getString(const std::string &Key,
                            const std::string &Def) const {
  const Json *V = get(Key);
  return V && V->kind() == Kind::String ? V->asString() : Def;
}

Json &Json::set(const std::string &Key, Json V) {
  if (K == Kind::Null)
    K = Kind::Object;
  assert(K == Kind::Object && "set() on a non-object Json");
  for (auto &F : Obj)
    if (F.first == Key) {
      F.second = std::move(V);
      return *this;
    }
  Obj.emplace_back(Key, std::move(V));
  return *this;
}

Json &Json::push(Json V) {
  if (K == Kind::Null)
    K = Kind::Array;
  assert(K == Kind::Array && "push() on a non-array Json");
  Arr.push_back(std::move(V));
  return *this;
}

std::string exo::service::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string exo::service::fingerprint(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)H);
  return Buf;
}

std::string Json::dump() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Int:
    return std::to_string(I);
  case Kind::Double: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    return Buf;
  }
  case Kind::String:
    return "\"" + jsonEscape(S) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t N = 0; N < Arr.size(); ++N) {
      if (N)
        Out += ",";
      Out += Arr[N].dump();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    for (size_t N = 0; N < Obj.size(); ++N) {
      if (N)
        Out += ",";
      Out += "\"" + jsonEscape(Obj[N].first) + "\":" + Obj[N].second.dump();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace {

/// Recursive-descent JSON parser over a bounded string. Depth-limited so
/// hostile nesting cannot blow the daemon's stack.
struct JsonParser {
  const std::string &T;
  size_t P = 0;
  unsigned Depth = 0;
  static constexpr unsigned MaxDepth = 64;

  explicit JsonParser(const std::string &T) : T(T) {}

  Error err(const std::string &Msg) {
    return makeError(Error::Kind::Parse,
                     "json: " + Msg + " at offset " + std::to_string(P));
  }

  void skipWs() {
    while (P < T.size() &&
           (T[P] == ' ' || T[P] == '\t' || T[P] == '\n' || T[P] == '\r'))
      ++P;
  }

  bool eat(char C) {
    skipWs();
    if (P < T.size() && T[P] == C) {
      ++P;
      return true;
    }
    return false;
  }

  Expected<Json> value() {
    if (++Depth > MaxDepth)
      return err("nesting too deep");
    skipWs();
    if (P >= T.size())
      return err("unexpected end of input");
    char C = T[P];
    Expected<Json> R = [&]() -> Expected<Json> {
      switch (C) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        auto S = string();
        if (!S)
          return S.error();
        return Json(std::move(*S));
      }
      case 't':
        return literal("true", Json(true));
      case 'f':
        return literal("false", Json(false));
      case 'n':
        return literal("null", Json());
      default:
        return number();
      }
    }();
    --Depth;
    return R;
  }

  Expected<Json> literal(const char *Lit, Json V) {
    size_t N = std::strlen(Lit);
    if (T.compare(P, N, Lit) != 0)
      return err("invalid literal");
    P += N;
    return V;
  }

  Expected<std::string> string() {
    if (!eat('"'))
      return err("expected string");
    std::string Out;
    while (P < T.size()) {
      char C = T[P++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (P >= T.size())
          return err("dangling escape");
        char E = T[P++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (P + 4 > T.size())
            return err("truncated \\u escape");
          unsigned V = 0;
          for (int K = 0; K < 4; ++K) {
            char H = T[P++];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= H - '0';
            else if (H >= 'a' && H <= 'f')
              V |= H - 'a' + 10;
            else if (H >= 'A' && H <= 'F')
              V |= H - 'A' + 10;
            else
              return err("bad \\u escape");
          }
          // Minimal UTF-8 encode (surrogate pairs land as two separate
          // 3-byte sequences; the protocol never emits them).
          if (V < 0x80)
            Out += static_cast<char>(V);
          else if (V < 0x800) {
            Out += static_cast<char>(0xC0 | (V >> 6));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (V >> 12));
            Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (V & 0x3F));
          }
          break;
        }
        default:
          return err("unknown escape");
        }
      } else {
        Out += C;
      }
    }
    return err("unterminated string");
  }

  Expected<Json> number() {
    size_t Start = P;
    if (P < T.size() && T[P] == '-')
      ++P;
    while (P < T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
      ++P;
    bool IsDouble = false;
    if (P < T.size() && T[P] == '.') {
      IsDouble = true;
      ++P;
      while (P < T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
        ++P;
    }
    if (P < T.size() && (T[P] == 'e' || T[P] == 'E')) {
      IsDouble = true;
      ++P;
      if (P < T.size() && (T[P] == '+' || T[P] == '-'))
        ++P;
      while (P < T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
        ++P;
    }
    if (P == Start || (P == Start + 1 && T[Start] == '-'))
      return err("expected value");
    std::string Num = T.substr(Start, P - Start);
    if (IsDouble)
      return Json(std::strtod(Num.c_str(), nullptr));
    errno = 0;
    long long V = std::strtoll(Num.c_str(), nullptr, 10);
    if (errno == ERANGE)
      return Json(std::strtod(Num.c_str(), nullptr));
    return Json(static_cast<int64_t>(V));
  }

  Expected<Json> array() {
    eat('[');
    Json Out = Json::array();
    skipWs();
    if (eat(']'))
      return Out;
    for (;;) {
      auto V = value();
      if (!V)
        return V.error();
      Out.push(std::move(*V));
      if (eat(']'))
        return Out;
      if (!eat(','))
        return err("expected ',' or ']'");
    }
  }

  Expected<Json> object() {
    eat('{');
    Json Out = Json::object();
    skipWs();
    if (eat('}'))
      return Out;
    for (;;) {
      skipWs();
      auto Key = string();
      if (!Key)
        return Key.error();
      if (!eat(':'))
        return err("expected ':'");
      auto V = value();
      if (!V)
        return V.error();
      Out.set(*Key, std::move(*V));
      if (eat('}'))
        return Out;
      if (!eat(','))
        return err("expected ',' or '}'");
    }
  }
};

} // namespace

Expected<Json> Json::parse(const std::string &Text) {
  JsonParser P(Text);
  auto V = P.value();
  if (!V)
    return V;
  P.skipWs();
  if (P.P != Text.size())
    return P.err("trailing garbage");
  return V;
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

const char *exo::service::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::IdleTimeout:
    return "idle-timeout";
  case FrameStatus::Timeout:
    return "timeout";
  case FrameStatus::TooLarge:
    return "too-large";
  case FrameStatus::TruncatedEof:
    return "truncated-eof";
  case FrameStatus::Error:
    return "error";
  }
  return "?";
}

namespace {

int64_t nowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reads exactly N bytes, polling against an absolute deadline (-1 =
/// none). Classifies EOF as TruncatedEof because callers only use this
/// after a frame has begun (the first-byte case is handled separately).
FrameStatus readExact(int Fd, char *Buf, size_t N, int64_t DeadlineAt,
                      std::string &Detail) {
  size_t Got = 0;
  while (Got < N) {
    int Wait = -1;
    if (DeadlineAt >= 0) {
      int64_t Left = DeadlineAt - nowMillis();
      if (Left <= 0) {
        Detail = "frame incomplete at deadline (" + std::to_string(Got) +
                 "/" + std::to_string(N) + " bytes)";
        return FrameStatus::Timeout;
      }
      Wait = static_cast<int>(Left > 1000 ? 1000 : Left);
    } else {
      Wait = 1000;
    }
    struct pollfd PFD = {Fd, POLLIN, 0};
    int PR = ::poll(&PFD, 1, Wait);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      Detail = std::strerror(errno);
      return FrameStatus::Error;
    }
    if (PR == 0)
      continue; // re-check deadline
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R > 0) {
      Got += static_cast<size_t>(R);
      continue;
    }
    if (R == 0) {
      Detail = "peer closed mid-frame (" + std::to_string(Got) + "/" +
               std::to_string(N) + " bytes)";
      return FrameStatus::TruncatedEof;
    }
    if (errno == EINTR || errno == EAGAIN)
      continue;
    Detail = std::strerror(errno);
    return FrameStatus::Error;
  }
  return FrameStatus::Ok;
}

} // namespace

FrameResult exo::service::readFrame(int Fd, int IdleTimeoutMillis,
                                    int FrameTimeoutMillis) {
  FrameResult Out;

  // Phase 1: wait for the first byte under the idle deadline. A clean
  // EOF here is a normal hangup.
  int64_t IdleDeadline =
      IdleTimeoutMillis < 0 ? -1 : nowMillis() + IdleTimeoutMillis;
  char Hdr[4];
  size_t Got = 0;
  while (Got == 0) {
    int Wait = -1;
    if (IdleDeadline >= 0) {
      int64_t Left = IdleDeadline - nowMillis();
      if (Left <= 0) {
        Out.Status = FrameStatus::IdleTimeout;
        return Out;
      }
      Wait = static_cast<int>(Left > 1000 ? 1000 : Left);
    } else {
      Wait = 1000;
    }
    struct pollfd PFD = {Fd, POLLIN, 0};
    int PR = ::poll(&PFD, 1, Wait);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      Out.Status = FrameStatus::Error;
      Out.Detail = std::strerror(errno);
      return Out;
    }
    if (PR == 0)
      continue;
    ssize_t R = ::read(Fd, Hdr, 1);
    if (R == 1) {
      Got = 1;
      break;
    }
    if (R == 0) {
      Out.Status = FrameStatus::Eof;
      return Out;
    }
    if (errno == EINTR || errno == EAGAIN)
      continue;
    Out.Status = FrameStatus::Error;
    Out.Detail = std::strerror(errno);
    return Out;
  }

  // Phase 2: the rest of the frame must complete within the frame
  // deadline — the slow-loris guard.
  int64_t FrameDeadline =
      FrameTimeoutMillis < 0 ? -1 : nowMillis() + FrameTimeoutMillis;
  FrameStatus St = readExact(Fd, Hdr + 1, 3, FrameDeadline, Out.Detail);
  if (St != FrameStatus::Ok) {
    Out.Status = St;
    return Out;
  }
  uint32_t Len = (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[0]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(Hdr[3]));
  if (Len > MaxFrameBytes) {
    Out.Status = FrameStatus::TooLarge;
    Out.Detail = "declared frame length " + std::to_string(Len) +
                 " exceeds the " + std::to_string(MaxFrameBytes) +
                 "-byte ceiling";
    return Out;
  }
  Out.Payload.resize(Len);
  if (Len > 0) {
    St = readExact(Fd, Out.Payload.data(), Len, FrameDeadline, Out.Detail);
    if (St != FrameStatus::Ok) {
      Out.Status = St;
      Out.Payload.clear();
      return Out;
    }
  }
  Out.Status = FrameStatus::Ok;
  return Out;
}

namespace {

std::string frameBytes(const std::string &Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  std::string Buf;
  Buf.reserve(Payload.size() + 4);
  Buf += static_cast<char>((Len >> 24) & 0xFF);
  Buf += static_cast<char>((Len >> 16) & 0xFF);
  Buf += static_cast<char>((Len >> 8) & 0xFF);
  Buf += static_cast<char>(Len & 0xFF);
  Buf += Payload;
  return Buf;
}

FrameResult writeAll(int Fd, const char *Buf, size_t N) {
  FrameResult Out;
  size_t Sent = 0;
  while (Sent < N) {
    ssize_t W = ::write(Fd, Buf + Sent, N - Sent);
    if (W > 0) {
      Sent += static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && (errno == EINTR || errno == EAGAIN))
      continue;
    Out.Status = FrameStatus::Error;
    Out.Detail = W < 0 ? std::strerror(errno) : "zero-length write";
    return Out;
  }
  return Out;
}

} // namespace

FrameResult exo::service::writeFrame(int Fd, const std::string &Payload) {
  support::ignoreSigpipe();
  if (Payload.size() > MaxFrameBytes)
    return {FrameStatus::TooLarge, "",
            "refusing to send a frame above the protocol ceiling"};
  std::string Buf = frameBytes(Payload);
  return writeAll(Fd, Buf.data(), Buf.size());
}

FrameResult exo::service::clientWriteFrame(int Fd,
                                           const std::string &Payload) {
  support::ignoreSigpipe();
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (!FI.enabled())
    return writeFrame(Fd, Payload);

  std::string Buf = frameBytes(Payload);

  if (FI.shouldFire(support::Fault::SockDisconnect)) {
    // Send roughly half the frame, then vanish: the server must classify
    // this as TruncatedEof and fail only this connection's work.
    size_t Half = Buf.size() / 2;
    writeAll(Fd, Buf.data(), Half ? Half : 1);
    ::shutdown(Fd, SHUT_RDWR);
    return {FrameStatus::TruncatedEof, "",
            "injected mid-frame disconnect after " + std::to_string(Half) +
                " bytes"};
  }

  bool Loris = FI.shouldFire(support::Fault::SockSlowLoris);
  bool Short = Loris || FI.shouldFire(support::Fault::SockShortRead);
  if (!Short)
    return writeFrame(Fd, Payload);

  // Dribble the frame out byte by byte; the slow-loris variant also
  // sleeps, long enough that a short server-side frame deadline fires.
  size_t Chunk = 1;
  for (size_t Sent = 0; Sent < Buf.size(); Sent += Chunk) {
    size_t N = Buf.size() - Sent < Chunk ? Buf.size() - Sent : Chunk;
    FrameResult R = writeAll(Fd, Buf.data() + Sent, N);
    if (!R.ok())
      return R;
    if (Loris)
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    else if ((Sent & 0x3F) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return {};
}

//===----------------------------------------------------------------------===//
// ClientConnection
//===----------------------------------------------------------------------===//

ClientConnection::~ClientConnection() { close(); }

ClientConnection::ClientConnection(ClientConnection &&O) noexcept
    : Fd(O.Fd) {
  O.Fd = -1;
}

ClientConnection &ClientConnection::operator=(ClientConnection &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void ClientConnection::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Expected<ClientConnection> ClientConnection::connectUnix(
    const std::string &Path) {
  support::ignoreSigpipe();
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeError(Error::Kind::Internal,
                     std::string("socket: ") + std::strerror(errno));
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return makeError(Error::Kind::Internal,
                     "unix socket path too long: " + Path);
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    std::string E = std::strerror(errno);
    ::close(Fd);
    return makeError(Error::Kind::Internal,
                     "connect " + Path + ": " + E);
  }
  ClientConnection C;
  C.Fd = Fd;
  return C;
}

Expected<ClientConnection> ClientConnection::connectTcp(int Port) {
  support::ignoreSigpipe();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeError(Error::Kind::Internal,
                     std::string("socket: ") + std::strerror(errno));
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    std::string E = std::strerror(errno);
    ::close(Fd);
    return makeError(Error::Kind::Internal,
                     "connect 127.0.0.1:" + std::to_string(Port) + ": " + E);
  }
  ClientConnection C;
  C.Fd = Fd;
  return C;
}

FrameResult ClientConnection::send(const Json &Request, bool WithFaults) {
  if (Fd < 0)
    return {FrameStatus::Error, "", "connection is closed"};
  std::string Payload = Request.dump();
  return WithFaults ? clientWriteFrame(Fd, Payload)
                    : writeFrame(Fd, Payload);
}

FrameResult ClientConnection::receive(int TimeoutMillis) {
  if (Fd < 0)
    return {FrameStatus::Error, "", "connection is closed"};
  return readFrame(Fd, TimeoutMillis, TimeoutMillis);
}

Expected<Json> ClientConnection::call(const Json &Request,
                                      int TimeoutMillis) {
  FrameResult W = send(Request, /*WithFaults=*/false);
  if (!W.ok())
    return makeError(Error::Kind::Internal,
                     std::string("send failed: ") +
                         frameStatusName(W.Status) +
                         (W.Detail.empty() ? "" : ": " + W.Detail));
  FrameResult R = receive(TimeoutMillis);
  if (!R.ok())
    return makeError(Error::Kind::Internal,
                     std::string("receive failed: ") +
                         frameStatusName(R.Status) +
                         (R.Detail.empty() ? "" : ": " + R.Detail));
  return Json::parse(R.Payload);
}
