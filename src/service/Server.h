//===- service/Server.h - The exocc compile service ------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived, multi-tenant compile daemon. Clients connect over a unix
/// or TCP-localhost socket and speak the length-prefixed JSON protocol of
/// Protocol.h; the daemon keeps the process-wide caches that actually pay
/// across requests (JIT module cache, effect cache) warm, and amortizes
/// process startup — a warm compile skips the work a cold exocc-batch
/// process pays on every run. The term interner is the opposite case:
/// compiles intern under fresh variable ids, so it only accumulates, and
/// the daemon *trims* it between jobs (ServerOptions::TermTrimThreshold)
/// to keep per-compile cost flat over thousands of requests.
///
/// Request schema (one JSON object per frame; responses echo "id"):
///
///   {"op":"hello","client":"tenant-a"}            bind a tenant identity
///   {"op":"compile","id":"1","kernel":"<name>"}   compile a suite kernel
///   {"op":"compile","id":"2","fuzz_seed":7}       compile a fuzzed program
///   {"op":"oracle","id":"3","seed":7}             run the triple oracle
///
/// compile/oracle requests may carry "deadline_ms" (absent/0: the server
/// default; negative: treated as already expired — admitted, then shed at
/// dequeue) and "fallback" (emit reference C when the schedule fails).
///   {"op":"poll","ids":["1","2"]}                 resolve lost job ids
///   {"op":"stats"}                                counters snapshot
///   {"op":"drain"}                                begin graceful drain
///   {"op":"crash"}                                test only: kill worker
///
/// The resilience architecture, end to end (DESIGN.md, "Service layer"):
///
///  * admission before work: every compile/oracle request passes the
///    AdmissionController; rejections answer "rate-limited" /
///    "client-queue-full" / "overloaded" immediately — load is shed at
///    the door, never absorbed as unbounded queueing;
///  * deadline-aware scheduling: admitted jobs enter an
///    earliest-deadline-first queue; a job whose deadline passed while it
///    waited is failed without running (running it cannot help anyone);
///  * a per-backend circuit breaker: repeated in-process JIT failures
///    trip oracle execution over to the child-process csource harness,
///    with half-open probes recovering the fast path once traps stop;
///  * crash accounting: a journal records every job start and completion;
///    after a worker crash, the respawned worker loads the
///    started-but-unfinished ids and answers poll requests for them with
///    "worker-crash", so no client waits forever on a dead job;
///  * graceful drain: stop accepting, wake idle readers, finish (or
///    deadline-fail) everything in flight, then flush stats.
///
/// One thread per connection reads frames; a small worker pool runs the
/// jobs and writes responses back on the requesting connection (guarded
/// by a per-connection write lock, since responses to pipelined requests
/// complete out of order).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SERVICE_SERVER_H
#define EXO_SERVICE_SERVER_H

#include "service/Admission.h"
#include "service/CircuitBreaker.h"
#include "service/Protocol.h"
#include "support/Error.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace exo {
namespace service {

struct ServerOptions {
  /// Unix socket path; empty means TCP on 127.0.0.1.
  std::string UnixPath;
  /// TCP port when UnixPath is empty; 0 binds an ephemeral port (read it
  /// back with port()).
  int TcpPort = 0;
  /// Worker threads running admitted jobs.
  unsigned Workers = 4;
  /// Idle deadline between frames on a connection; -1 = forever.
  int IdleTimeoutMillis = 60000;
  /// Completion deadline for a started frame (the slow-loris guard).
  int FrameTimeoutMillis = 5000;
  /// Per-job deadline when the request does not carry "deadline_ms".
  int64_t DefaultDeadlineMillis = 30000;
  /// Job-start/finish journal for crash recovery; empty disables it.
  std::string JournalPath;
  /// Solver budget for compile jobs (0: solver default).
  uint64_t MaxLiterals = 0;
  /// Honor {"op":"crash"} by exiting the process mid-job. Tests and the
  /// soak harness only; never on by default.
  bool AllowCrashOp = false;
  /// Flush the process-wide term interner between jobs once its live-node
  /// count exceeds this (0 disables). Every compile interns a few thousand
  /// nodes under fresh variable ids that no later compile can ever share;
  /// without a trim a long-lived daemon accumulates them until every
  /// compile's working set is spread across a huge, cold table — measured
  /// as per-compile wall time growing near-linearly with requests served.
  /// The threshold keeps steady-state cost flat while still letting terms
  /// be shared freely *within* a job. The default is roughly one large
  /// kernel's working set: cross-job sharing is zero anyway, so trimming
  /// eagerly costs nothing but the flush itself.
  size_t TermTrimThreshold = 8192;
  AdmissionOptions Admission;
  BreakerOptions Breaker;
};

struct ServerStats {
  uint64_t Connections = 0;
  uint64_t Requests = 0;
  uint64_t Responses = 0;
  uint64_t ProtocolErrors = 0; ///< bad frames, bad JSON, unknown ops
  uint64_t CompilesOk = 0;
  uint64_t CompilesFailed = 0;
  uint64_t CompilesDegraded = 0;
  uint64_t OraclesAgree = 0;
  uint64_t OraclesDisagree = 0;
  uint64_t OracleFallbacks = 0;  ///< oracle runs routed to csource
  uint64_t DeadlineExpiredInQueue = 0;
  uint64_t WorkerCrashReplays = 0; ///< poll answers from the crash journal
  uint64_t TermTrims = 0; ///< between-job term-interner flushes
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket, loads the crash journal, spawns the accept thread
  /// and the worker pool.
  Expected<bool> start();

  /// The bound TCP port (after start(); 0 for unix sockets).
  int port() const { return BoundPort; }

  /// Begins a graceful drain: stop accepting, wake idle connection
  /// readers, let workers finish the queue. Safe to call repeatedly.
  void requestDrain();

  /// Drains (if not already draining) and joins every thread. Jobs still
  /// queued when \p GraceMillis runs out are answered "shutdown" without
  /// running.
  void stop(int64_t GraceMillis = 10000);

  bool draining() const { return Draining.load(); }

  ServerStats stats() const;
  AdmissionStats admissionStats() const { return Admission.stats(); }
  BreakerState breakerState() const { return Breaker.state(); }
  BreakerStats breakerStats() const { return Breaker.stats(); }

  /// The stats snapshot the {"op":"stats"} request answers with (also
  /// flushed to stderr on drain).
  Json statsJson() const;

  /// Ids the crash journal says were started but never finished by a
  /// previous incarnation (exposed for tests).
  std::vector<std::string> lostIds() const;

private:
  struct Connection;
  using ConnectionRef = std::shared_ptr<Connection>;

  struct QueuedJob {
    Json Request;
    ConnectionRef Conn;
    std::string Client;
    std::string Id;
    int64_t DeadlineAtMillis = 0;
    int64_t AdmittedAtMillis = 0;
  };

  void acceptLoop();
  void connectionLoop(ConnectionRef C);
  void workerLoop();

  /// Dispatches one parsed request on the connection thread; fast ops
  /// answer inline, compile/oracle pass admission and enqueue.
  void handleRequest(ConnectionRef C, Json Request);

  void runJob(const QueuedJob &J);
  Json runCompile(const QueuedJob &J);
  Json runOracle(const QueuedJob &J);
  Json makeStats() const;
  Json handlePoll(const Json &Request, const std::string &Client);

  void respond(const ConnectionRef &C, Json Response);
  void journalAppend(char Tag, const std::string &Key);
  void loadJournal();
  void recordDone(const std::string &Key, const std::string &Status);

  ServerOptions Opts;
  int ListenFd = -1;
  int BoundPort = 0;

  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopping{false};

  std::thread AcceptThread;
  std::vector<std::thread> WorkerThreads;

  mutable std::mutex ConnMu;
  std::vector<std::weak_ptr<Connection>> Connections;
  std::vector<std::thread> ConnThreads;

  // The EDF job queue: keyed by absolute deadline, earliest first.
  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::multimap<int64_t, QueuedJob> Queue;
  unsigned RunningJobs = 0; // workers currently inside runJob

  AdmissionController Admission;
  CircuitBreaker Breaker;

  mutable std::mutex StatsMu;
  ServerStats TheStats;

  // Crash-recovery state: the journal fd, ids lost by the previous
  // incarnation, and a bounded record of finished jobs for poll.
  mutable std::mutex JournalMu;
  int JournalFd = -1;
  std::set<std::string> Lost;
  std::map<std::string, std::string> Done;
  std::deque<std::string> DoneOrder;
};

} // namespace service
} // namespace exo

#endif // EXO_SERVICE_SERVER_H
