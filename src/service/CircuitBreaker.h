//===- service/CircuitBreaker.h - Per-backend circuit breaker --*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guards the risky execution path (the in-process JIT) with the classic
/// three-state breaker:
///
///   Closed ──N consecutive failures──▶ Open
///   Open ──backoff elapses──▶ HalfOpen (one probe admitted)
///   HalfOpen ──M consecutive successes──▶ Closed
///   HalfOpen ──any failure──▶ Open (backoff grows geometrically)
///
/// While the breaker is Open the server routes oracle jobs to the
/// out-of-process csource harness instead: slower, but a trapping module
/// cannot take the daemon with it. The breaker exists because JIT traps
/// cluster — one poisoned module, replayed by a retrying client, would
/// otherwise fail every request it touches; tripping converts a failure
/// storm into a bounded degradation with automatic recovery.
///
/// Time is injected (millis, monotonic) so tests step the state machine
/// without sleeping. Thread-safe; allow() + onSuccess/onFailure bracket
/// each guarded call.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SERVICE_CIRCUITBREAKER_H
#define EXO_SERVICE_CIRCUITBREAKER_H

#include <cstdint>
#include <mutex>
#include <string>

namespace exo {
namespace service {

enum class BreakerState { Closed, Open, HalfOpen };

const char *breakerStateName(BreakerState S);

struct BreakerOptions {
  /// Consecutive failures in Closed that trip the breaker.
  unsigned FailureThreshold = 3;
  /// Consecutive successes in HalfOpen that re-close it.
  unsigned SuccessThreshold = 2;
  /// Backoff before the first half-open probe, in milliseconds.
  int64_t InitialBackoffMillis = 200;
  /// Geometric growth of the backoff on each re-trip from HalfOpen.
  double BackoffFactor = 2.0;
  /// Ceiling on the grown backoff.
  int64_t MaxBackoffMillis = 10000;
};

struct BreakerStats {
  uint64_t Trips = 0;        ///< Closed/HalfOpen -> Open transitions
  uint64_t Recoveries = 0;   ///< HalfOpen -> Closed transitions
  uint64_t ShortCircuits = 0;///< calls refused while Open
  uint64_t Probes = 0;       ///< calls admitted in HalfOpen
};

class CircuitBreaker {
public:
  explicit CircuitBreaker(BreakerOptions Opts = {}) : Opts(Opts) {}

  /// May a guarded call proceed now? Open transitions to HalfOpen here
  /// once the backoff has elapsed (admitting exactly one probe at a
  /// time: further allow() calls in HalfOpen wait for the probe verdict).
  bool allow(int64_t NowMillis);

  /// Reports the guarded call's outcome; drives the state machine.
  void onSuccess(int64_t NowMillis);
  void onFailure(int64_t NowMillis);

  BreakerState state() const;
  BreakerStats stats() const;
  /// Current backoff the next trip would impose (tests assert growth).
  int64_t currentBackoffMillis() const;

private:
  void trip(int64_t NowMillis); // Mu held

  BreakerOptions Opts;
  mutable std::mutex Mu;
  BreakerState St = BreakerState::Closed;
  unsigned ConsecutiveFailures = 0;
  unsigned ConsecutiveSuccesses = 0;
  int64_t BackoffMillis = 0;   ///< 0 until first trip
  int64_t OpenedAtMillis = 0;
  bool ProbeInFlight = false;
  BreakerStats TheStats;
};

} // namespace service
} // namespace exo

#endif // EXO_SERVICE_CIRCUITBREAKER_H
