//===- service/CircuitBreaker.cpp ------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/CircuitBreaker.h"

using namespace exo;
using namespace exo::service;

const char *exo::service::breakerStateName(BreakerState S) {
  switch (S) {
  case BreakerState::Closed:
    return "closed";
  case BreakerState::Open:
    return "open";
  case BreakerState::HalfOpen:
    return "half-open";
  }
  return "?";
}

void CircuitBreaker::trip(int64_t NowMillis) {
  if (BackoffMillis == 0)
    BackoffMillis = Opts.InitialBackoffMillis;
  else if (St == BreakerState::HalfOpen) {
    // Only a failed recovery grows the backoff; the first trip and any
    // repeat trips from Closed use the current value.
    double Grown = static_cast<double>(BackoffMillis) * Opts.BackoffFactor;
    BackoffMillis = Grown > static_cast<double>(Opts.MaxBackoffMillis)
                        ? Opts.MaxBackoffMillis
                        : static_cast<int64_t>(Grown);
  }
  St = BreakerState::Open;
  OpenedAtMillis = NowMillis;
  ConsecutiveFailures = 0;
  ConsecutiveSuccesses = 0;
  ProbeInFlight = false;
  ++TheStats.Trips;
}

bool CircuitBreaker::allow(int64_t NowMillis) {
  std::lock_guard<std::mutex> Lock(Mu);
  switch (St) {
  case BreakerState::Closed:
    return true;
  case BreakerState::Open:
    if (NowMillis - OpenedAtMillis < BackoffMillis) {
      ++TheStats.ShortCircuits;
      return false;
    }
    St = BreakerState::HalfOpen;
    ConsecutiveSuccesses = 0;
    ProbeInFlight = true;
    ++TheStats.Probes;
    return true;
  case BreakerState::HalfOpen:
    // One probe at a time: concurrent callers fall back while a probe's
    // verdict is pending, otherwise a thundering herd re-trips on the
    // same broken dependency all at once.
    if (ProbeInFlight) {
      ++TheStats.ShortCircuits;
      return false;
    }
    ProbeInFlight = true;
    ++TheStats.Probes;
    return true;
  }
  return true;
}

void CircuitBreaker::onSuccess(int64_t NowMillis) {
  (void)NowMillis;
  std::lock_guard<std::mutex> Lock(Mu);
  switch (St) {
  case BreakerState::Closed:
    ConsecutiveFailures = 0;
    break;
  case BreakerState::Open:
    break; // stale result from before the trip; ignore
  case BreakerState::HalfOpen:
    ProbeInFlight = false;
    if (++ConsecutiveSuccesses >= Opts.SuccessThreshold) {
      St = BreakerState::Closed;
      ConsecutiveFailures = 0;
      BackoffMillis = 0; // full recovery resets the backoff schedule
      ++TheStats.Recoveries;
    }
    break;
  }
}

void CircuitBreaker::onFailure(int64_t NowMillis) {
  std::lock_guard<std::mutex> Lock(Mu);
  switch (St) {
  case BreakerState::Closed:
    if (++ConsecutiveFailures >= Opts.FailureThreshold)
      trip(NowMillis);
    break;
  case BreakerState::Open:
    break;
  case BreakerState::HalfOpen:
    trip(NowMillis); // failed probe: back to Open with grown backoff
    break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

BreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TheStats;
}

int64_t CircuitBreaker::currentBackoffMillis() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return BackoffMillis;
}
