//===- service/Server.cpp - The exocc compile service ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "analysis/EffectCache.h"
#include "backend/Backend.h"
#include "driver/CompileSession.h"
#include "driver/KernelSuite.h"
#include "smt/QueryCache.h"
#include "smt/Solver.h"
#include "smt/Term.h"
#include "support/Deadline.h"
#include "support/FaultInjector.h"
#include "support/Signals.h"
#include "testing/Oracle.h"
#include "testing/ProgramGen.h"
#include "testing/Rng.h"
#include "testing/ScheduleGen.h"
#include "tuning/Tuner.h"

#include <cerrno>
#include <chrono>
#ifdef __GLIBC__
#include <malloc.h>
#endif
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace exo;
using namespace exo::service;

namespace {

int64_t nowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

/// One accepted socket. Shared between the connection's reader thread and
/// every worker holding a queued job for it; the write lock serializes
/// response frames (pipelined jobs finish out of order).
struct Server::Connection {
  int Fd = -1;
  std::mutex WriteMu;
  std::mutex ClientMu;
  std::string Client; ///< tenant identity, bound by the hello op

  std::string client() {
    std::lock_guard<std::mutex> Lock(ClientMu);
    return Client;
  }
  void setClient(const std::string &C) {
    std::lock_guard<std::mutex> Lock(ClientMu);
    Client = C;
  }

  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

Server::Server(ServerOptions Opts)
    : Opts(Opts), Admission(Opts.Admission), Breaker(Opts.Breaker) {}

Server::~Server() { stop(0); }

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Expected<bool> Server::start() {
  support::ignoreSigpipe();
  loadJournal();

  if (!Opts.UnixPath.empty()) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return makeError(Error::Kind::Internal,
                       std::string("socket: ") + std::strerror(errno));
    struct sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Opts.UnixPath.size() >= sizeof(Addr.sun_path))
      return makeError(Error::Kind::Internal,
                       "unix socket path too long: " + Opts.UnixPath);
    std::strncpy(Addr.sun_path, Opts.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Opts.UnixPath.c_str()); // stale socket from a dead process
    if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
               sizeof(Addr)) != 0)
      return makeError(Error::Kind::Internal,
                       "bind " + Opts.UnixPath + ": " + std::strerror(errno));
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return makeError(Error::Kind::Internal,
                       std::string("socket: ") + std::strerror(errno));
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    struct sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.TcpPort));
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
               sizeof(Addr)) != 0)
      return makeError(Error::Kind::Internal,
                       "bind 127.0.0.1:" + std::to_string(Opts.TcpPort) +
                           ": " + std::strerror(errno));
    struct sockaddr_in Bound;
    socklen_t Len = sizeof(Bound);
    if (::getsockname(ListenFd, reinterpret_cast<struct sockaddr *>(&Bound),
                      &Len) == 0)
      BoundPort = ntohs(Bound.sin_port);
  }
  if (::listen(ListenFd, 64) != 0)
    return makeError(Error::Kind::Internal,
                     std::string("listen: ") + std::strerror(errno));

  unsigned Workers = Opts.Workers ? Opts.Workers : 1;
  for (unsigned I = 0; I < Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::requestDrain() {
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return;
  // Wake idle connection readers: shutting the read side down turns their
  // blocked read into EOF while leaving the write side intact, so
  // in-flight responses still go out.
  std::lock_guard<std::mutex> Lock(ConnMu);
  for (auto &W : Connections)
    if (ConnectionRef C = W.lock())
      ::shutdown(C->Fd, SHUT_RD);
  QueueCv.notify_all();
}

void Server::stop(int64_t GraceMillis) {
  if (Stopping.load() && !AcceptThread.joinable())
    return; // already stopped
  requestDrain();

  // Let the workers finish (or deadline-fail) everything admitted before
  // the drain, up to the grace deadline.
  int64_t GraceAt = nowMillis() + (GraceMillis < 0 ? 0 : GraceMillis);
  {
    std::unique_lock<std::mutex> Lock(QueueMu);
    while ((!Queue.empty() || RunningJobs > 0) && nowMillis() < GraceAt)
      QueueCv.wait_for(Lock, std::chrono::milliseconds(50));
  }

  Stopping.store(true);
  QueueCv.notify_all();

  // Anything still queued when the grace ran out is answered honestly:
  // the daemon is going down, the job did not run.
  std::vector<QueuedJob> Abandoned;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    for (auto &E : Queue)
      Abandoned.push_back(std::move(E.second));
    Queue.clear();
  }
  for (QueuedJob &J : Abandoned) {
    Json R = Json::object();
    R.set("id", J.Id).set("ok", false).set("status", "shutdown");
    respond(J.Conn, std::move(R));
    recordDone(J.Client + "|" + J.Id, "shutdown");
    Admission.release(J.Client);
  }

  for (std::thread &T : WorkerThreads)
    if (T.joinable())
      T.join();
  WorkerThreads.clear();
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    if (!Opts.UnixPath.empty())
      ::unlink(Opts.UnixPath.c_str());
  }

  // Fully shut the connections so their reader threads unwind, then join.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (auto &W : Connections)
      if (ConnectionRef C = W.lock())
        ::shutdown(C->Fd, SHUT_RDWR);
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    Threads.swap(ConnThreads);
    Connections.clear();
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();

  {
    std::lock_guard<std::mutex> Lock(JournalMu);
    if (JournalFd >= 0) {
      ::close(JournalFd);
      JournalFd = -1;
    }
  }
}

//===----------------------------------------------------------------------===//
// Accept + connection loops
//===----------------------------------------------------------------------===//

void Server::acceptLoop() {
  while (!Draining.load() && !Stopping.load()) {
    struct pollfd PFD = {ListenFd, POLLIN, 0};
    int PR = ::poll(&PFD, 1, 200);
    if (PR < 0 && errno != EINTR)
      break;
    if (PR <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto C = std::make_shared<Connection>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      if (Draining.load()) {
        // Raced with a drain: refuse politely instead of serving.
        Json R = Json::object();
        R.set("ok", false).set("status", "draining");
        writeFrame(Fd, R.dump());
        ::close(Fd);
        continue;
      }
      Connections.push_back(C);
      ConnThreads.emplace_back([this, C] { connectionLoop(C); });
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++TheStats.Connections;
    }
  }
}

void Server::connectionLoop(ConnectionRef C) {
  for (;;) {
    FrameResult F =
        readFrame(C->Fd, Opts.IdleTimeoutMillis, Opts.FrameTimeoutMillis);
    if (F.Status == FrameStatus::Eof || F.Status == FrameStatus::IdleTimeout)
      break; // clean hangup, or the peer went quiet: just close
    if (!F.ok()) {
      // Mid-frame disconnects, slow-loris timeouts, oversized frames,
      // socket errors: report once if the peer can still hear us, then
      // hang up. Only this connection is affected.
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++TheStats.ProtocolErrors;
      }
      Json R = Json::object();
      R.set("ok", false)
          .set("status", "protocol-error")
          .set("error", std::string(frameStatusName(F.Status)) +
                            (F.Detail.empty() ? "" : ": " + F.Detail));
      respond(C, std::move(R));
      break;
    }
    Expected<Json> Req = Json::parse(F.Payload);
    if (!Req || !Req->isObject()) {
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++TheStats.ProtocolErrors;
      }
      Json R = Json::object();
      R.set("ok", false)
          .set("status", "bad-request")
          .set("error", Req ? "request is not a JSON object"
                            : Req.error().message());
      respond(C, std::move(R));
      continue; // framing is intact; the connection can carry on
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++TheStats.Requests;
    }
    handleRequest(C, std::move(*Req));
  }
  // Only the read side: jobs this connection queued may still be running,
  // and their responses go out on the write side (a drain wakes every
  // reader with EOF precisely so the connection can be answered out). The
  // fd itself closes when the last QueuedJob reference drops.
  ::shutdown(C->Fd, SHUT_RD);
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

void Server::respond(const ConnectionRef &C, Json Response) {
  std::lock_guard<std::mutex> Lock(C->WriteMu);
  FrameResult W = writeFrame(C->Fd, Response.dump());
  std::lock_guard<std::mutex> SLock(StatsMu);
  if (W.ok())
    ++TheStats.Responses;
  // A dead peer (EPIPE) is not an error worth counting: the client
  // vanished, its poll after reconnecting will resolve the job.
}

void Server::handleRequest(ConnectionRef C, Json Request) {
  std::string Op = Request.getString("op");
  std::string Id = Request.getString("id");
  std::string Client = Request.getString("client", C->client());
  if (Client.empty())
    Client = "anon";

  if (Op == "hello") {
    C->setClient(Request.getString("client", "anon"));
    Json R = Json::object();
    R.set("ok", true)
        .set("proto", 1)
        .set("server", "exocc-serve")
        .set("pid", static_cast<int64_t>(::getpid()));
    respond(C, std::move(R));
    return;
  }
  if (Op == "stats") {
    Json R = makeStats();
    R.set("ok", true);
    if (!Id.empty())
      R.set("id", Id);
    respond(C, std::move(R));
    return;
  }
  if (Op == "poll") {
    respond(C, handlePoll(Request, Client));
    return;
  }
  if (Op == "drain") {
    Json R = Json::object();
    R.set("ok", true).set("status", "draining");
    respond(C, std::move(R));
    requestDrain();
    return;
  }
  if (Op == "crash") {
    if (!Opts.AllowCrashOp) {
      Json R = Json::object();
      R.set("ok", false).set("status", "forbidden");
      respond(C, std::move(R));
      return;
    }
    // Simulated worker crash for the supervisor/soak tests: die without
    // answering, leaving started-but-unfinished journal entries behind.
    std::fflush(nullptr);
    ::_exit(42);
  }

  if (Op != "compile" && Op != "oracle") {
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++TheStats.ProtocolErrors;
    }
    Json R = Json::object();
    R.set("ok", false)
        .set("status", "bad-request")
        .set("error", "unknown op '" + Op + "'");
    if (!Id.empty())
      R.set("id", Id);
    respond(C, std::move(R));
    return;
  }

  // Work ops: admission first, before any expensive state is touched.
  int64_t Now = nowMillis();
  if (Draining.load()) {
    Json R = Json::object();
    R.set("id", Id).set("ok", false).set("status", "draining");
    respond(C, std::move(R));
    return;
  }
  AdmitDecision D = Admission.tryAdmit(Client, Now);
  if (D != AdmitDecision::Admit) {
    Json R = Json::object();
    R.set("id", Id).set("ok", false).set("status", admitDecisionName(D));
    if (D == AdmitDecision::RateLimited)
      R.set("retry_after_ms", Admission.retryAfterMillis(Client, Now));
    respond(C, std::move(R));
    return;
  }

  // 0 / absent means the server default; an explicitly negative deadline
  // is honored as already expired (the job is admitted, then shed at
  // dequeue — the knob tests and load generators use to drive the
  // expired-in-queue path deterministically).
  int64_t DeadlineMs = Request.getInt("deadline_ms", 0);
  if (DeadlineMs == 0)
    DeadlineMs = Opts.DefaultDeadlineMillis;

  QueuedJob J;
  J.Request = std::move(Request);
  J.Conn = std::move(C);
  J.Client = Client;
  J.Id = Id;
  J.AdmittedAtMillis = Now;
  J.DeadlineAtMillis = Now + DeadlineMs;

  journalAppend('S', Client + "|" + Id);
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Queue.emplace(J.DeadlineAtMillis, std::move(J));
  }
  QueueCv.notify_one();
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop() {
  for (;;) {
    QueuedJob J;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [this] { return !Queue.empty() || Stopping.load(); });
      if (Queue.empty()) {
        if (Stopping.load())
          return;
        continue;
      }
      auto It = Queue.begin(); // earliest deadline first
      J = std::move(It->second);
      Queue.erase(It);
      ++RunningJobs;
    }
    runJob(J);
    // Between-job cache hygiene: compiles intern terms under fresh
    // variable ids, so cross-job sharing is zero and the interner only
    // ever grows. Trimming once it passes the budget is what keeps a
    // long-lived daemon's per-compile cost flat (see ServerOptions).
    if (Opts.TermTrimThreshold &&
        smt::termInternerStats().Live > Opts.TermTrimThreshold) {
      smt::clearTermInterner();
#ifdef __GLIBC__
      // The flush frees ~10k heterogeneous chunks in one burst; without
      // consolidating, the next compile allocates through the resulting
      // free-list churn and pays a measured ~35% spike (the bounded
      // warm-compile oscillation — see DESIGN.md, "Between-job cache
      // hygiene"). malloc_trim coalesces the arenas while the worker is
      // idle anyway, cutting the spike to ~10%.
      malloc_trim(0);
#endif
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++TheStats.TermTrims;
    }
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      --RunningJobs;
    }
    QueueCv.notify_all(); // stop() waits for the queue to truly drain
  }
}

void Server::runJob(const QueuedJob &J) {
  std::string Key = J.Client + "|" + J.Id;
  int64_t Now = nowMillis();

  Json R;
  if (Now >= J.DeadlineAtMillis) {
    // The deadline passed while the job sat in the queue: running it now
    // serves no one, and under overload skipping it is what lets the
    // queue catch back up.
    R = Json::object();
    R.set("id", J.Id).set("ok", false).set("status", "deadline");
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++TheStats.DeadlineExpiredInQueue;
    }
    recordDone(Key, "deadline");
  } else {
    std::string Op = J.Request.getString("op");
    R = Op == "oracle" ? runOracle(J) : runCompile(J);
    recordDone(Key, R.getString("status", "?"));
  }
  respond(J.Conn, std::move(R));
  journalAppend('D', Key);
  Admission.release(J.Client);
}

Json Server::runCompile(const QueuedJob &J) {
  Json R = Json::object();
  R.set("id", J.Id);

  driver::CompileJob Job;
  std::string Kernel = J.Request.getString("kernel");
  int64_t FuzzSeed = J.Request.getInt("fuzz_seed", -1);
  if (!Kernel.empty()) {
    bool Found = false;
    for (driver::CompileJob &K : driver::standardKernelSuite())
      if (K.Name == Kernel) {
        Job = std::move(K);
        Found = true;
        break;
      }
    if (!Found) {
      R.set("ok", false)
          .set("status", "failed")
          .set("error", "unknown kernel '" + Kernel + "'");
      return R;
    }
  } else if (FuzzSeed >= 0) {
    uint64_t S = static_cast<uint64_t>(FuzzSeed);
    Job.Name = "fuzz_p" + std::to_string(S);
    Job.Build = [S]() -> Expected<std::vector<ir::ProcRef>> {
      auto G = testing::generateProgram(S);
      if (!G)
        return G.error();
      testing::Rng Rn(S * 7919 + 104730);
      return std::vector<ir::ProcRef>{
          testing::generateSchedule(G->Proc, Rn).Scheduled};
    };
    Job.BuildReference = [S]() -> Expected<std::vector<ir::ProcRef>> {
      auto G = testing::generateProgram(S);
      if (!G)
        return G.error();
      return std::vector<ir::ProcRef>{G->Proc};
    };
  } else {
    R.set("ok", false)
        .set("status", "failed")
        .set("error", "compile needs 'kernel' or 'fuzz_seed'");
    return R;
  }

  driver::SessionOptions SO;
  SO.Tenant = J.Client;
  SO.DeadlineMillis = J.DeadlineAtMillis - nowMillis();
  if (SO.DeadlineMillis < 1)
    SO.DeadlineMillis = 1;
  SO.MaxRetries = 1;
  SO.FallbackReference = J.Request.getBool("fallback", false);
  if (Opts.MaxLiterals)
    SO.MaxLiterals = Opts.MaxLiterals;

  driver::JobResult Res = driver::CompileSession(SO).run(Job);

  R.set("ok", Res.Ok)
      .set("status",
           Res.Ok ? (Res.Degraded ? "degraded" : "ok") : "failed")
      .set("kernel", Job.Name)
      .set("wall_ms", Res.WallMillis)
      .set("solver_queries", Res.SolverQueries);
  if (Res.Ok)
    R.set("fingerprint", fingerprint(Res.Output))
        .set("output_bytes", static_cast<int64_t>(Res.Output.size()));
  if (!Res.ErrorKind.empty())
    R.set("error_kind", Res.ErrorKind).set("error", Res.ErrorMessage);
  if (Res.DeadlineMiss)
    R.set("deadline_miss", true);

  std::lock_guard<std::mutex> Lock(StatsMu);
  if (!Res.Ok)
    ++TheStats.CompilesFailed;
  else if (Res.Degraded)
    ++TheStats.CompilesDegraded;
  else
    ++TheStats.CompilesOk;
  return R;
}

Json Server::runOracle(const QueuedJob &J) {
  Json R = Json::object();
  R.set("id", J.Id);

  uint64_t Seed = static_cast<uint64_t>(J.Request.getInt("seed", 1));
  auto G = testing::generateProgram(Seed);
  if (!G) {
    R.set("ok", false).set("status", "failed").set("error",
                                                   G.error().message());
    return R;
  }
  testing::Rng Rn(Seed * 7919 + 104730);
  testing::OracleCase Case;
  Case.Reference = G->Proc;
  Case.Scheduled = testing::generateSchedule(G->Proc, Rn).Scheduled;
  Case.Args = G->Args;
  Case.InputSeed = Seed;

  // The breaker decides which execution backend runs pipeline 3. An Open
  // breaker routes straight to the child-process csource harness; a
  // Closed (or probing HalfOpen) one uses the in-process JIT and reports
  // the outcome back.
  int64_t Now = nowMillis();
  bool UseJit = Breaker.allow(Now);

  // Server-side trap injection: the soak harness trips the breaker by
  // making the "JIT" fail here, deterministically, without having to
  // craft genuinely trapping modules.
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (UseJit && FI.enabled() &&
      FI.shouldFire(support::Fault::RuntimeTrap)) {
    Breaker.onFailure(nowMillis());
    UseJit = false; // fall back for this request, like a real trap would
  }

  testing::OracleOptions OO;
  OO.Backend = UseJit ? "jit" : "csource";
  if (!UseJit) {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++TheStats.OracleFallbacks;
  }

  support::Deadline D =
      support::Deadline::afterMillis(J.DeadlineAtMillis - nowMillis());
  support::ScopedDeadline Scope(D);

  Expected<testing::OracleOutcome> Out = testing::runOracle(Case, OO);
  if (!Out) {
    if (UseJit)
      Breaker.onFailure(nowMillis());
    R.set("ok", false).set("status", "failed").set("error",
                                                   Out.error().message());
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++TheStats.OraclesDisagree;
    return R;
  }

  if (UseJit) {
    // Divergences are the *program's* fault, not the backend's: only
    // harness-level execution failures count against the JIT.
    bool BackendFailure = Out->Status == testing::OracleStatus::CompileError ||
                          Out->Status == testing::OracleStatus::RunError;
    if (BackendFailure)
      Breaker.onFailure(nowMillis());
    else
      Breaker.onSuccess(nowMillis());
  }

  R.set("ok", Out->ok())
      .set("status", testing::oracleStatusName(Out->Status))
      .set("backend", OO.Backend)
      .set("seed", Seed);
  if (!Out->Detail.empty())
    R.set("detail", Out->Detail);

  std::lock_guard<std::mutex> Lock(StatsMu);
  if (Out->ok())
    ++TheStats.OraclesAgree;
  else
    ++TheStats.OraclesDisagree;
  return R;
}

//===----------------------------------------------------------------------===//
// Poll + stats
//===----------------------------------------------------------------------===//

Json Server::handlePoll(const Json &Request, const std::string &Client) {
  Json R = Json::object();
  R.set("ok", true);
  Json Results = Json::object();
  const Json *Ids = Request.get("ids");
  if (Ids && Ids->isArray()) {
    for (const Json &IdV : Ids->items()) {
      std::string Id = IdV.asString();
      std::string Key = Client + "|" + Id;
      std::string Status;
      {
        std::lock_guard<std::mutex> Lock(JournalMu);
        auto DoneIt = Done.find(Key);
        if (DoneIt != Done.end()) {
          Status = DoneIt->second;
        } else if (Lost.count(Key)) {
          // The previous incarnation started this job and died with it in
          // flight: the one answer a crash allows.
          Status = "worker-crash";
          Lost.erase(Key);
        }
      }
      if (Status == "worker-crash") {
        recordDone(Key, Status);
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++TheStats.WorkerCrashReplays;
      }
      if (Status.empty()) {
        // Admitted but not finished? It is still pending; otherwise the
        // daemon has never heard of it.
        bool Pending = false;
        {
          std::lock_guard<std::mutex> Lock(QueueMu);
          for (const auto &E : Queue)
            if (E.second.Client == Client && E.second.Id == Id) {
              Pending = true;
              break;
            }
        }
        Status = Pending ? "pending" : "unknown";
      }
      Results.set(Id, Status);
    }
  }
  R.set("results", std::move(Results));
  return R;
}

Json Server::makeStats() const { return statsJson(); }

Json Server::statsJson() const {
  Json R = Json::object();

  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Json S = Json::object();
    S.set("connections", TheStats.Connections)
        .set("requests", TheStats.Requests)
        .set("responses", TheStats.Responses)
        .set("protocol_errors", TheStats.ProtocolErrors)
        .set("compiles_ok", TheStats.CompilesOk)
        .set("compiles_failed", TheStats.CompilesFailed)
        .set("compiles_degraded", TheStats.CompilesDegraded)
        .set("oracles_agree", TheStats.OraclesAgree)
        .set("oracles_disagree", TheStats.OraclesDisagree)
        .set("oracle_fallbacks", TheStats.OracleFallbacks)
        .set("deadline_expired_in_queue", TheStats.DeadlineExpiredInQueue)
        .set("worker_crash_replays", TheStats.WorkerCrashReplays)
        .set("term_trims", TheStats.TermTrims);
    R.set("server", std::move(S));
  }

  {
    AdmissionStats A = Admission.stats();
    Json S = Json::object();
    S.set("admitted", A.Admitted)
        .set("rate_limited", A.RateLimited)
        .set("client_queue_full", A.ClientQueueFull)
        .set("shed", A.Shed)
        .set("in_flight", static_cast<int64_t>(Admission.globalInFlight()));
    R.set("admission", std::move(S));
  }

  {
    BreakerStats B = Breaker.stats();
    Json S = Json::object();
    S.set("state", breakerStateName(Breaker.state()))
        .set("trips", B.Trips)
        .set("recoveries", B.Recoveries)
        .set("short_circuits", B.ShortCircuits)
        .set("probes", B.Probes);
    R.set("breaker", std::move(S));
  }

  {
    smt::Solver::Stats SS = smt::solverGlobalStats();
    Json S = Json::object();
    S.set("queries", SS.NumQueries)
        .set("cache_hits", SS.CacheHits)
        .set("unknown", SS.NumUnknown);
    R.set("solver", std::move(S));
  }

  {
    backend::JitBackend::CacheStats JS = backend::JitBackend::cacheStats();
    Json S = Json::object();
    S.set("compiles", JS.Compiles)
        .set("hits", JS.Hits)
        .set("evictions", JS.Evictions);
    R.set("jit_cache", std::move(S));
  }

  // Long-lived-process gauges: the term interner and the solver query
  // cache are process-wide and survive across requests; a daemon that is
  // slowly getting slower shows up here first (live nodes / cached keys
  // climbing, hit rates falling).
  {
    smt::TermInternerStats TS = smt::termInternerStats();
    Json S = Json::object();
    S.set("live", static_cast<int64_t>(TS.Live))
        .set("hits", static_cast<int64_t>(TS.Hits))
        .set("misses", static_cast<int64_t>(TS.Misses))
        .set("flushes", static_cast<int64_t>(TS.Flushes));
    R.set("term_interner", std::move(S));
  }
  {
    smt::QueryCacheStats QS = smt::solverQueryCacheStats();
    Json S = Json::object();
    S.set("size", static_cast<int64_t>(QS.Size))
        .set("insertions", static_cast<int64_t>(QS.Insertions))
        .set("evictions", static_cast<int64_t>(QS.Evictions))
        .set("uncacheable", static_cast<int64_t>(QS.Uncacheable))
        .set("hits", static_cast<int64_t>(QS.Hits))
        .set("misses", static_cast<int64_t>(QS.Misses))
        // The warm-daemon currency: verdicts one request reused from a
        // different request's compile (VarId-canonical keys make these
        // possible across tenants and parses).
        .set("cross_job_hits", static_cast<int64_t>(QS.CrossJobHits));
    R.set("query_cache", std::move(S));
  }
  {
    analysis::EffectCacheStats ES = analysis::effectCacheStats();
    Json S = Json::object();
    S.set("hits", static_cast<int64_t>(ES.Hits))
        .set("misses", static_cast<int64_t>(ES.Misses))
        .set("canon_indexed", static_cast<int64_t>(ES.CanonIndexed))
        .set("cross_compile_hits",
             static_cast<int64_t>(ES.CrossCompileHits));
    R.set("effect_cache", std::move(S));
  }
  {
    tuning::TunerProgress TP = tuning::tunerProgress();
    Json S = Json::object();
    S.set("runs_started", static_cast<int64_t>(TP.RunsStarted))
        .set("runs_finished", static_cast<int64_t>(TP.RunsFinished))
        .set("generations_done", static_cast<int64_t>(TP.GenerationsDone))
        .set("candidates_tried", static_cast<int64_t>(TP.CandidatesTried))
        .set("candidates_ok", static_cast<int64_t>(TP.CandidatesOk));
    R.set("tuner", std::move(S));
  }

  return R;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  return TheStats;
}

//===----------------------------------------------------------------------===//
// Crash journal
//===----------------------------------------------------------------------===//

void Server::loadJournal() {
  if (Opts.JournalPath.empty())
    return;
  {
    std::ifstream In(Opts.JournalPath);
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.size() < 3 || Line[1] != ' ')
        continue;
      std::string Key = Line.substr(2);
      if (Line[0] == 'S')
        Lost.insert(Key);
      else if (Line[0] == 'D')
        Lost.erase(Key);
    }
  }
  // Start this incarnation's journal fresh; the lost set carries forward
  // everything that still matters from the old one.
  JournalFd = ::open(Opts.JournalPath.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0600);
}

void Server::journalAppend(char Tag, const std::string &Key) {
  std::lock_guard<std::mutex> Lock(JournalMu);
  if (JournalFd < 0)
    return;
  std::string Line;
  Line += Tag;
  Line += ' ';
  Line += Key;
  Line += '\n';
  // Best-effort: a full disk must not take compiles down with it.
  ssize_t W = ::write(JournalFd, Line.data(), Line.size());
  (void)W;
}

void Server::recordDone(const std::string &Key, const std::string &Status) {
  std::lock_guard<std::mutex> Lock(JournalMu);
  if (Done.emplace(Key, Status).second) {
    DoneOrder.push_back(Key);
    while (DoneOrder.size() > 4096) { // bounded: poll history, not a log
      Done.erase(DoneOrder.front());
      DoneOrder.pop_front();
    }
  }
}

std::vector<std::string> Server::lostIds() const {
  std::lock_guard<std::mutex> Lock(JournalMu);
  return std::vector<std::string>(Lost.begin(), Lost.end());
}
