//===- service/Admission.h - Admission control & backpressure --*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's first line of defense: every request passes admission
/// before any IR is built or any solver query posed. Three independent
/// gates, cheapest first:
///
///  1. a per-client token bucket (steady-state rate + burst capacity), so
///     one chatty tenant cannot starve the rest;
///  2. a per-client in-flight cap (bounded queue depth per tenant), so a
///     tenant that never reads replies cannot park unbounded work;
///  3. a global in-flight cap — the backpressure valve. When the whole
///     daemon is saturated, new work is shed with Overloaded instead of
///     queued without bound; clients retry with jitter. Shedding is the
///     contract: a bounded, honest "no" beats an unbounded, silent queue
///     (the latency cliff hides until OOM).
///
/// Decisions are reported distinctly (RateLimited / ClientQueueFull /
/// Overloaded) because clients back off differently: rate limiting is
/// per-tenant and retry-after is computable; overload is global and wants
/// randomized exponential backoff.
///
/// Time is passed in, not read from a clock, so tests drive the bucket
/// deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SERVICE_ADMISSION_H
#define EXO_SERVICE_ADMISSION_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace exo {
namespace service {

enum class AdmitDecision {
  Admit,
  RateLimited,    ///< per-client token bucket is empty
  ClientQueueFull,///< per-client in-flight cap reached
  Overloaded,     ///< global in-flight cap reached (load shed)
};

const char *admitDecisionName(AdmitDecision D);

struct AdmissionOptions {
  /// Steady-state tokens per second per client; <= 0 disables the rate
  /// gate.
  double TokensPerSecond = 50.0;
  /// Bucket capacity (burst size). A fresh client starts full.
  double BurstTokens = 25.0;
  /// Max jobs a single client may have admitted-but-unfinished.
  unsigned MaxPerClient = 8;
  /// Max jobs the whole daemon may have admitted-but-unfinished.
  unsigned MaxGlobal = 64;
};

struct AdmissionStats {
  uint64_t Admitted = 0;
  uint64_t RateLimited = 0;
  uint64_t ClientQueueFull = 0;
  uint64_t Shed = 0; ///< Overloaded rejections
};

/// Thread-safe admission controller. tryAdmit/release bracket a job's
/// admitted lifetime; the in-flight counters they maintain are what the
/// queue-depth gates read.
class AdmissionController {
public:
  explicit AdmissionController(AdmissionOptions Opts = {}) : Opts(Opts) {}

  /// Decides admission for one request from \p Client at \p NowMillis
  /// (monotonic). On Admit the client's in-flight count (and the global
  /// one) is incremented; the caller must pair it with release().
  AdmitDecision tryAdmit(const std::string &Client, int64_t NowMillis);

  /// Marks one admitted job finished (any terminal status).
  void release(const std::string &Client);

  /// Milliseconds until \p Client's bucket next has a whole token; 0 when
  /// it already does (or the rate gate is off). For retry-after hints.
  int64_t retryAfterMillis(const std::string &Client,
                           int64_t NowMillis) const;

  unsigned globalInFlight() const;
  AdmissionStats stats() const;

private:
  struct ClientState {
    double Tokens = 0;
    int64_t LastRefillMillis = 0;
    unsigned InFlight = 0;
    bool Seen = false;
  };

  void refill(ClientState &CS, int64_t NowMillis) const;

  AdmissionOptions Opts;
  mutable std::mutex Mu;
  std::map<std::string, ClientState> Clients;
  unsigned GlobalInFlight = 0;
  AdmissionStats TheStats;
};

} // namespace service
} // namespace exo

#endif // EXO_SERVICE_ADMISSION_H
