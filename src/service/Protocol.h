//===- service/Protocol.h - Wire protocol of exocc-serve -------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service speaks length-prefixed JSON over a stream socket:
/// every frame is a 4-byte big-endian payload length followed by exactly
/// that many bytes of UTF-8 JSON. Framing is deliberately dumb — no
/// pipelined framing tricks, no compression — because the failure modes
/// are where the engineering goes:
///
///  * reads are poll()-driven with two deadlines: an idle deadline before
///    the first byte of a frame (so server loops can wake up and notice
///    drain requests) and a completion deadline for the rest of it (so a
///    slow-loris peer that trickles one byte a minute is disconnected
///    instead of pinning a connection thread forever);
///  * a declared length above MaxFrameBytes is rejected before any
///    allocation, so garbage or hostile prefixes cannot OOM the daemon;
///  * EOF is classified: between frames it is a clean hangup, inside a
///    frame it is a protocol error the caller reports;
///  * writes loop over partial progress and rely on the process-wide
///    SIGPIPE policy (support::ignoreSigpipe) to turn dead peers into
///    EPIPE errors.
///
/// Json is a small self-contained value type (null/bool/int/double/
/// string/array/object) with a strict parser — no dependency is baked
/// into the tree for what is a flat request/response schema.
///
/// clientWriteFrame is the fault-injectable variant the soak harness and
/// tests use to misbehave on purpose (support::FaultInjector kinds
/// sock-short-read, sock-disconnect, sock-slowloris); writeFrame itself
/// is always honest.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SERVICE_PROTOCOL_H
#define EXO_SERVICE_PROTOCOL_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace exo {
namespace service {

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

class Json {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool B) : K(Kind::Bool), B(B) {}
  Json(int64_t I) : K(Kind::Int), I(I) {}
  Json(int I) : K(Kind::Int), I(I) {}
  Json(uint64_t I) : K(Kind::Int), I(static_cast<int64_t>(I)) {}
  Json(double D) : K(Kind::Double), D(D) {}
  Json(std::string S) : K(Kind::String), S(std::move(S)) {}
  Json(const char *S) : K(Kind::String), S(S) {}

  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Scalar accessors with defaults (wrong-kind reads return the
  /// default; a flat protocol prefers lenient reads + explicit schema
  /// checks at the call site).
  bool asBool(bool Def = false) const { return K == Kind::Bool ? B : Def; }
  int64_t asInt(int64_t Def = 0) const {
    if (K == Kind::Int)
      return I;
    if (K == Kind::Double)
      return static_cast<int64_t>(D);
    return Def;
  }
  double asDouble(double Def = 0) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Def;
  }
  const std::string &asString() const { return S; }

  /// Object access: null when absent or not an object.
  const Json *get(const std::string &Key) const;
  /// Convenience typed lookups on objects.
  int64_t getInt(const std::string &Key, int64_t Def = 0) const;
  bool getBool(const std::string &Key, bool Def = false) const;
  std::string getString(const std::string &Key,
                        const std::string &Def = "") const;

  /// Object/array mutation (switches kind on first use from Null).
  Json &set(const std::string &Key, Json V);
  Json &push(Json V);

  const std::vector<Json> &items() const { return Arr; }
  const std::vector<std::pair<std::string, Json>> &fields() const {
    return Obj;
  }

  /// Compact serialization (no insignificant whitespace; object fields in
  /// insertion order, so output is deterministic).
  std::string dump() const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  static Expected<Json> parse(const std::string &Text);

private:
  Kind K;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Arr;
  std::vector<std::pair<std::string, Json>> Obj;
};

/// JSON string escaping (shared with ad-hoc emitters in the CLIs).
std::string jsonEscape(const std::string &S);

/// FNV-1a 64-bit as 16 hex digits: the service's output fingerprint (the
/// soak harness's bit-identity check compares these instead of shipping
/// whole C files back over the socket).
std::string fingerprint(const std::string &S);

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

/// Hard ceiling on one frame's payload; declared lengths above it are a
/// protocol error, rejected before allocation.
constexpr uint32_t MaxFrameBytes = 32u << 20;

enum class FrameStatus {
  Ok,         ///< a whole frame arrived / was sent
  Eof,        ///< clean hangup between frames (read only)
  IdleTimeout,///< no first byte within the idle deadline (read only)
  Timeout,    ///< frame started but did not complete in time (slow loris)
  TooLarge,   ///< declared length exceeds MaxFrameBytes
  TruncatedEof,///< peer vanished mid-frame
  Error,      ///< errno-level socket failure (EPIPE, ECONNRESET, ...)
};

const char *frameStatusName(FrameStatus S);

struct FrameResult {
  FrameStatus Status = FrameStatus::Ok;
  std::string Payload; ///< valid when Status == Ok
  std::string Detail;  ///< diagnosis for the failure statuses

  bool ok() const { return Status == FrameStatus::Ok; }
};

/// Reads one frame. Waits up to \p IdleTimeoutMillis for the first byte
/// (-1 = forever), then up to \p FrameTimeoutMillis for the remainder
/// (-1 = forever). Loops over partial reads and EINTR.
FrameResult readFrame(int Fd, int IdleTimeoutMillis, int FrameTimeoutMillis);

/// Writes one frame, looping over partial writes. Returns Ok or Error.
FrameResult writeFrame(int Fd, const std::string &Payload);

/// The misbehaving writer used by the soak client and the protocol tests:
/// consults support::FaultInjector before sending. sock-short-read
/// dribbles the frame in 1-byte writes (the receiver must reassemble);
/// sock-slowloris inserts long pauses between those dribbles (the
/// receiver's frame deadline must fire); sock-disconnect sends roughly
/// half the frame and shuts the socket down. Faults compose with an
/// honest fallback when none fire.
FrameResult clientWriteFrame(int Fd, const std::string &Payload);

//===----------------------------------------------------------------------===//
// Client connection helper
//===----------------------------------------------------------------------===//

/// A blocking client connection (unix or TCP localhost), used by the soak
/// harness, the tests, and exocc-serve's own admin subcommands.
class ClientConnection {
public:
  ClientConnection() = default;
  ~ClientConnection();
  ClientConnection(ClientConnection &&O) noexcept;
  ClientConnection &operator=(ClientConnection &&O) noexcept;
  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  /// Connects to a unix socket path.
  static Expected<ClientConnection> connectUnix(const std::string &Path);
  /// Connects to 127.0.0.1:port.
  static Expected<ClientConnection> connectTcp(int Port);

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// One request/response round trip: send \p Request (honestly), wait up
  /// to \p TimeoutMillis for the matching reply frame.
  Expected<Json> call(const Json &Request, int TimeoutMillis = 30000);

  /// Raw sends/receives for tests and the pipelining soak client.
  FrameResult send(const Json &Request, bool WithFaults = false);
  FrameResult receive(int TimeoutMillis);

private:
  int Fd = -1;
};

} // namespace service
} // namespace exo

#endif // EXO_SERVICE_PROTOCOL_H
