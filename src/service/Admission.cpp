//===- service/Admission.cpp -----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Admission.h"

#include <cmath>

using namespace exo;
using namespace exo::service;

const char *exo::service::admitDecisionName(AdmitDecision D) {
  switch (D) {
  case AdmitDecision::Admit:
    return "admit";
  case AdmitDecision::RateLimited:
    return "rate-limited";
  case AdmitDecision::ClientQueueFull:
    return "client-queue-full";
  case AdmitDecision::Overloaded:
    return "overloaded";
  }
  return "?";
}

void AdmissionController::refill(ClientState &CS, int64_t NowMillis) const {
  if (!CS.Seen) {
    CS.Tokens = Opts.BurstTokens; // fresh clients start with a full burst
    CS.LastRefillMillis = NowMillis;
    CS.Seen = true;
    return;
  }
  int64_t Elapsed = NowMillis - CS.LastRefillMillis;
  if (Elapsed <= 0)
    return;
  CS.Tokens += Opts.TokensPerSecond * static_cast<double>(Elapsed) / 1000.0;
  if (CS.Tokens > Opts.BurstTokens)
    CS.Tokens = Opts.BurstTokens;
  CS.LastRefillMillis = NowMillis;
}

AdmitDecision AdmissionController::tryAdmit(const std::string &Client,
                                            int64_t NowMillis) {
  std::lock_guard<std::mutex> Lock(Mu);

  // Global backpressure first: when the daemon is saturated, shed before
  // touching per-client state so the rejection cost stays flat.
  if (GlobalInFlight >= Opts.MaxGlobal) {
    ++TheStats.Shed;
    return AdmitDecision::Overloaded;
  }

  ClientState &CS = Clients[Client];
  refill(CS, NowMillis);

  if (CS.InFlight >= Opts.MaxPerClient) {
    ++TheStats.ClientQueueFull;
    return AdmitDecision::ClientQueueFull;
  }
  if (Opts.TokensPerSecond > 0) {
    if (CS.Tokens < 1.0) {
      ++TheStats.RateLimited;
      return AdmitDecision::RateLimited;
    }
    CS.Tokens -= 1.0;
  }

  ++CS.InFlight;
  ++GlobalInFlight;
  ++TheStats.Admitted;
  return AdmitDecision::Admit;
}

void AdmissionController::release(const std::string &Client) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Clients.find(Client);
  if (It != Clients.end() && It->second.InFlight > 0)
    --It->second.InFlight;
  if (GlobalInFlight > 0)
    --GlobalInFlight;
}

int64_t AdmissionController::retryAfterMillis(const std::string &Client,
                                              int64_t NowMillis) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Opts.TokensPerSecond <= 0)
    return 0;
  auto It = Clients.find(Client);
  if (It == Clients.end())
    return 0;
  ClientState CS = It->second; // simulate a refill without mutating
  refill(CS, NowMillis);
  if (CS.Tokens >= 1.0)
    return 0;
  double Needed = 1.0 - CS.Tokens;
  return static_cast<int64_t>(
      std::ceil(Needed * 1000.0 / Opts.TokensPerSecond));
}

unsigned AdmissionController::globalInFlight() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return GlobalInFlight;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TheStats;
}
