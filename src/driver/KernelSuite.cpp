//===- driver/KernelSuite.cpp ----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "driver/KernelSuite.h"

#include "apps/Autoschedule.h"
#include "apps/Conv.h"
#include "apps/GemminiMatmul.h"
#include "apps/Sgemm.h"

using namespace exo;
using namespace exo::driver;
using namespace exo::ir;

// Every suite job carries a BuildReference producing the unscheduled
// algorithm its kernel was derived from (the apps' parse-only entry
// points, which run no scheduling and no solver queries), so
// --fallback-reference can degrade to correct naive C no matter why the
// scheduled build failed.

std::vector<CompileJob> exo::driver::standardKernelSuite() {
  std::vector<CompileJob> Jobs;

  Jobs.push_back({"fig4a_gemmini_matmul",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto K = apps::buildGemminiMatmul(128, 128, 128);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->OldLib, K->ExoLib};
                  },
                  []() -> Expected<std::vector<ProcRef>> {
                    auto A = apps::buildGemminiMatmulAlgorithm(128, 128, 128);
                    if (!A)
                      return A.error();
                    return std::vector<ProcRef>{*A};
                  }});

  Jobs.push_back({"fig4b_gemmini_conv",
                  []() -> Expected<std::vector<ProcRef>> {
                    apps::ConvShape Shape{1, 16, 16, 16, 16};
                    auto K = apps::buildConvGemmini(Shape, /*RowTile=*/14);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->OldLib, K->Scheduled};
                  },
                  []() -> Expected<std::vector<ProcRef>> {
                    apps::ConvShape Shape{1, 16, 16, 16, 16};
                    auto A = apps::buildConvGemminiAlgorithm(Shape);
                    if (!A)
                      return A.error();
                    return std::vector<ProcRef>{*A};
                  }});

  Jobs.push_back({"fig5a_sgemm_square",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto K = apps::buildSgemm(48, 128, 64);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->ExoSgemm};
                  },
                  []() -> Expected<std::vector<ProcRef>> {
                    auto A = apps::buildSgemmAlgorithm(48, 128, 64);
                    if (!A)
                      return A.error();
                    return std::vector<ProcRef>{*A};
                  }});

  Jobs.push_back({"fig5b_sgemm_aspect",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto K = apps::buildSgemm(24, 192, 64);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->ExoSgemm};
                  },
                  []() -> Expected<std::vector<ProcRef>> {
                    auto A = apps::buildSgemmAlgorithm(24, 192, 64);
                    if (!A)
                      return A.error();
                    return std::vector<ProcRef>{*A};
                  }});

  Jobs.push_back({"fig6_conv_x86",
                  []() -> Expected<std::vector<ProcRef>> {
                    apps::ConvShape Shape{1, 8, 8, 16, 32};
                    auto K = apps::buildConvX86(Shape);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->Scheduled};
                  },
                  []() -> Expected<std::vector<ProcRef>> {
                    apps::ConvShape Shape{1, 8, 8, 16, 32};
                    auto A = apps::buildConvX86Algorithm(Shape);
                    if (!A)
                      return A.error();
                    return std::vector<ProcRef>{*A};
                  }});

  Jobs.push_back({"sgemm_autoschedule",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto R = apps::autoscheduleSgemm(48, 128, 64);
                    if (!R)
                      return R.error();
                    return std::vector<ProcRef>{R->Kernels.ExoSgemm};
                  },
                  []() -> Expected<std::vector<ProcRef>> {
                    auto A = apps::buildSgemmAlgorithm(48, 128, 64);
                    if (!A)
                      return A.error();
                    return std::vector<ProcRef>{*A};
                  }});

  return Jobs;
}
