//===- driver/KernelSuite.cpp ----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "driver/KernelSuite.h"

#include "apps/AmxMatmul.h"
#include "apps/Autoschedule.h"
#include "apps/Conv.h"
#include "apps/GemminiMatmul.h"
#include "apps/Sgemm.h"

using namespace exo;
using namespace exo::driver;
using namespace exo::ir;

// Every suite job's BuildReference delegates to the buildReference
// lookup table below, which produces the unscheduled algorithm the
// kernel was derived from (the apps' parse-only entry points — no
// scheduling, no solver queries), so --fallback-reference can degrade to
// correct naive C no matter why the scheduled build failed.

namespace {

using RefBuilder = Expected<std::vector<ProcRef>> (*)();

template <typename Fn> Expected<std::vector<ProcRef>> one(Fn Build) {
  auto A = Build();
  if (!A)
    return A.error();
  return std::vector<ProcRef>{*A};
}

struct RefEntry {
  const char *Name;
  RefBuilder Build;
};

/// The one place the per-app build*Algorithm entry points are enumerated.
const RefEntry RefTable[] = {
    {"fig4a_gemmini_matmul",
     [] { return one([] { return apps::buildGemminiMatmulAlgorithm(128, 128, 128); }); }},
    {"fig4b_gemmini_conv",
     [] {
       return one([] {
         return apps::buildConvGemminiAlgorithm({1, 16, 16, 16, 16});
       });
     }},
    {"fig5a_sgemm_square",
     [] { return one([] { return apps::buildSgemmAlgorithm(48, 128, 64); }); }},
    {"fig5b_sgemm_aspect",
     [] { return one([] { return apps::buildSgemmAlgorithm(24, 192, 64); }); }},
    {"fig6_conv_x86",
     [] {
       return one([] { return apps::buildConvX86Algorithm({1, 8, 8, 16, 32}); });
     }},
    {"sgemm_autoschedule",
     [] { return one([] { return apps::buildSgemmAlgorithm(48, 128, 64); }); }},
    {"amx_matmul",
     [] { return one([] { return apps::buildAmxMatmulAlgorithm(64, 64, 64); }); }},
};

} // namespace

Expected<std::vector<ProcRef>>
exo::driver::buildReference(const std::string &Name) {
  for (const RefEntry &E : RefTable)
    if (Name == E.Name)
      return E.Build();
  return makeError(Error::Kind::Internal,
                   "kernel suite has no reference named '" + Name + "'");
}

std::vector<std::string> exo::driver::referenceNames() {
  std::vector<std::string> Names;
  for (const RefEntry &E : RefTable)
    Names.push_back(E.Name);
  return Names;
}

std::vector<CompileJob> exo::driver::standardKernelSuite() {
  auto RefFor = [](std::string Name) {
    return [Name]() { return buildReference(Name); };
  };

  std::vector<CompileJob> Jobs;

  Jobs.push_back({"fig4a_gemmini_matmul",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto K = apps::buildGemminiMatmul(128, 128, 128);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->OldLib, K->ExoLib};
                  },
                  RefFor("fig4a_gemmini_matmul")});

  Jobs.push_back({"fig4b_gemmini_conv",
                  []() -> Expected<std::vector<ProcRef>> {
                    apps::ConvShape Shape{1, 16, 16, 16, 16};
                    auto K = apps::buildConvGemmini(Shape, /*RowTile=*/14);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->OldLib, K->Scheduled};
                  },
                  RefFor("fig4b_gemmini_conv")});

  Jobs.push_back({"fig5a_sgemm_square",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto K = apps::buildSgemm(48, 128, 64);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->ExoSgemm};
                  },
                  RefFor("fig5a_sgemm_square")});

  Jobs.push_back({"fig5b_sgemm_aspect",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto K = apps::buildSgemm(24, 192, 64);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->ExoSgemm};
                  },
                  RefFor("fig5b_sgemm_aspect")});

  Jobs.push_back({"fig6_conv_x86",
                  []() -> Expected<std::vector<ProcRef>> {
                    apps::ConvShape Shape{1, 8, 8, 16, 32};
                    auto K = apps::buildConvX86(Shape);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->Scheduled};
                  },
                  RefFor("fig6_conv_x86")});

  Jobs.push_back({"sgemm_autoschedule",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto R = apps::autoscheduleSgemm(48, 128, 64);
                    if (!R)
                      return R.error();
                    return std::vector<ProcRef>{R->Kernels.ExoSgemm};
                  },
                  RefFor("sgemm_autoschedule")});

  Jobs.push_back({"amx_matmul",
                  []() -> Expected<std::vector<ProcRef>> {
                    auto K = apps::buildAmxMatmul(64, 64, 64);
                    if (!K)
                      return K.error();
                    return std::vector<ProcRef>{K->PerTile, K->Hoisted};
                  },
                  RefFor("amx_matmul")});

  return Jobs;
}
