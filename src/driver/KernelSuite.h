//===- driver/KernelSuite.h - The standard batch kernel suite --*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark kernels packaged as CompileJobs for exocc-batch
/// and the parallel-compile benchmark: the Gemmini matmul (fig. 4a), the
/// Gemmini conv (fig. 4b), the AVX-512 sgemm at square and skewed aspect
/// ratios (figs. 5a/5b), the AVX-512 conv (fig. 6), the autoscheduled
/// sgemm (§9), and the AMX-style tile-engine matmul (the second
/// accelerator library). Shapes are kept modest so a full batch compiles
/// in seconds.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_DRIVER_KERNELSUITE_H
#define EXO_DRIVER_KERNELSUITE_H

#include "driver/CompileSession.h"

namespace exo {
namespace driver {

/// All standard kernels, one job per bench figure.
std::vector<CompileJob> standardKernelSuite();

/// The unscheduled reference algorithm of the named suite job — a single
/// lookup table over the apps' parse-only entry points (no scheduling, no
/// solver queries). This is what every job's BuildReference delegates to,
/// and what tests use to fetch a kernel's naive form by name.
Expected<std::vector<ir::ProcRef>> buildReference(const std::string &Name);

/// The names buildReference knows, in suite order.
std::vector<std::string> referenceNames();

} // namespace driver
} // namespace exo

#endif // EXO_DRIVER_KERNELSUITE_H
