//===- driver/KernelSuite.h - The standard batch kernel suite --*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark kernels packaged as CompileJobs for exocc-batch
/// and the parallel-compile benchmark: the Gemmini matmul (fig. 4a), the
/// Gemmini conv (fig. 4b), the AVX-512 sgemm at square and skewed aspect
/// ratios (figs. 5a/5b), the AVX-512 conv (fig. 6), and the
/// autoscheduled sgemm (§9). Shapes are kept modest so a full batch
/// compiles in seconds.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_DRIVER_KERNELSUITE_H
#define EXO_DRIVER_KERNELSUITE_H

#include "driver/CompileSession.h"

namespace exo {
namespace driver {

/// All standard kernels, one job per bench figure.
std::vector<CompileJob> standardKernelSuite();

} // namespace driver
} // namespace exo

#endif // EXO_DRIVER_KERNELSUITE_H
