//===- driver/CompileSession.h - One thread-safe compile job ---*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CompileSession runs one CompileJob — build the scheduled procedures
/// (parse + schedule), then generate C — and reports a structured
/// JobResult instead of throwing or aborting. Sessions are safe to run
/// concurrently on different threads: the process-wide caches they share
/// (term interner, query cache, effect cache, Sym table, registries) are
/// individually synchronized, and per-session solver options are installed
/// thread-locally for the duration of the job. See DESIGN.md, "Threading
/// model".
///
/// On top of PR 2's thread-safety story this adds the failure model
/// (DESIGN.md, "Failure model"):
///
///  - a per-job wall-clock deadline, installed as a thread-local
///    support::ScopedDeadline so runaway solver queries cooperatively
///    unwind with Unknown{timeout};
///  - a retry policy: budget-Unknown failures (and only those — the
///    paper's conservative rejection makes structural Unknowns final) are
///    re-built with a geometrically escalated solver budget, until
///    MaxRetries or the deadline runs out;
///  - graceful degradation: with FallbackReference set, a job whose
///    schedule fails still emits correct C from its unscheduled reference
///    algorithm, tagged Degraded in the result.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_DRIVER_COMPILESESSION_H
#define EXO_DRIVER_COMPILESESSION_H

#include "ir/Proc.h"
#include "smt/Solver.h"
#include "support/Error.h"

#include <functional>
#include <string>
#include <vector>

namespace exo {
namespace driver {

/// Per-session tuning, applied thread-locally while the job runs so that
/// concurrent sessions can use different settings.
struct SessionOptions {
  uint64_t MaxLiterals = smt::defaultMaxLiterals();
  bool UseQueryCache = true;

  /// Wall-clock deadline per job in milliseconds; 0 means none. Enforced
  /// cooperatively (solver hot loops poll it) and by the BatchDriver
  /// watchdog.
  int64_t DeadlineMillis = 0;

  /// How many times a budget-Unknown failure is rebuilt with an escalated
  /// budget. 0 (the default) preserves single-shot behavior.
  unsigned MaxRetries = 0;

  /// Geometric escalation factor applied to MaxLiterals on each retry.
  uint64_t RetryBudgetFactor = 4;

  /// When a job's scheduled build fails and the job carries a reference
  /// builder, emit C from the (unscheduled, always-correct) reference and
  /// mark the result Degraded instead of failing the job.
  bool FallbackReference = false;

  /// Install a per-job analysis::EffectSnapshot for the duration of the
  /// build, so each scheduling rewrite in the job's chain re-analyzes
  /// only the dirty region it touched. Incremental and full analysis
  /// pose identical solver queries (the snapshot caches no verdicts), so
  /// this is purely a time optimization; the hit/miss counters land on
  /// the JobResult.
  bool UseEffectSnapshot = true;

  /// Which execution backend lowers the job (backend::findBackend name).
  /// Every backend's module source is byte-identical generated C, so the
  /// choice only matters to callers that go on to execute the module;
  /// "csource" is what exocc-batch ships and the goldens pin.
  std::string BackendName = "csource";

  /// Tenant identity of the submitting client (empty for single-tenant
  /// CLI runs). The generated C is tenant-independent — Sym minting is
  /// globally unique and codegen naming procedure-local, so outputs stay
  /// bit-identical across tenants — but the tenant id is folded into the
  /// module content hash (LowerOptions::CacheSalt) so tenants never share
  /// compiled-artifact cache entries. See DESIGN.md, "Service layer".
  std::string Tenant;
};

/// One unit of batch work: a name plus a builder producing the procedures
/// to emit. The builder runs parsing and scheduling; it must be
/// self-contained (capture shapes by value) because it may run on any
/// worker thread — and because the retry policy may invoke it several
/// times under different solver budgets. BuildReference, when present,
/// produces the unscheduled reference algorithm for --fallback-reference
/// degradation; it must not depend on any scheduling proof.
struct CompileJob {
  std::string Name;
  std::function<Expected<std::vector<ir::ProcRef>>()> Build;
  std::function<Expected<std::vector<ir::ProcRef>>()> BuildReference;
};

/// Outcome of one job. Errors are captured — including the structured
/// scheduling payload when present — so one failing kernel never aborts
/// the batch.
struct JobResult {
  std::string Name;
  bool Ok = false;
  std::string Output; ///< generated C on success
  double WallMillis = 0;

  /// Retry bookkeeping: how many extra build attempts ran, and the solver
  /// budget the final attempt used (== SessionOptions::MaxLiterals when
  /// no retry escalated it).
  unsigned Retries = 0;
  uint64_t FinalMaxLiterals = 0;

  /// How many single-query re-proof probes the retry policy ran before
  /// (or instead of) full re-builds, and which escalation path the last
  /// retry took: "probe" (the failed query was re-proved alone and its
  /// verdict changed, so the job was re-built), "probe-exhausted" (probes
  /// stayed budget-Unknown through every escalation — no re-build, the
  /// result would not change), "full" (no failed query was recorded;
  /// whole-job re-run). Empty when no retry happened.
  unsigned RetryProbes = 0;
  std::string RetryPath;

  /// Per-job solver activity (exact deltas of the worker thread's
  /// counters — a job runs entirely on one thread): total queries, how
  /// many the preprocessing pipeline decided before Cooper, and how many
  /// disjointness checks the effect fast path answered without a query.
  uint64_t SolverQueries = 0;
  uint64_t SimplifyDecided = 0;
  uint64_t FastPathHits = 0;

  /// Per-job query-cache activity (thread-exact deltas). CrossJobHits is
  /// the subset of hits served from entries another compile inserted —
  /// the cross-compile amortization the VarId-canonical keys exist for.
  uint64_t QueryCacheHits = 0;
  uint64_t QueryCacheMisses = 0;
  uint64_t QueryCacheCrossJobHits = 0;

  /// Incremental re-analysis activity of the job's EffectSnapshot (zero
  /// when SessionOptions::UseEffectSnapshot is off): subtree summaries
  /// served from the snapshot vs (re)derived.
  uint64_t IncrementalHits = 0;
  uint64_t IncrementalMisses = 0;

  /// The job's deadline had passed by the time it finished (stamped by
  /// the session; the batch watchdog may also mark it).
  bool DeadlineMiss = false;

  /// Output came from the reference algorithm, not the schedule (only
  /// under SessionOptions::FallbackReference). Ok is true; the Error*
  /// fields still describe why the schedule failed.
  bool Degraded = false;

  // On failure (or degradation): the rendered error plus the structured
  // payload fields.
  std::string ErrorKind;
  std::string ErrorMessage;
  std::string ErrorOp;      ///< scheduling operator, when known
  std::string ErrorPattern; ///< cursor pattern text, when known
  std::string ErrorLoc;     ///< matched location, when known
  std::string ErrorVerdict; ///< solver verdict, when a solver was involved
};

/// Runs jobs one at a time under the given options. Stateless apart from
/// the options; a single session object may be used from many threads.
class CompileSession {
public:
  explicit CompileSession(SessionOptions Opts = {}) : Opts(Opts) {}

  /// Builds and compiles one job, timing it and capturing any error.
  /// Applies the deadline, retry, and fallback policies described above.
  JobResult run(const CompileJob &Job) const;

private:
  SessionOptions Opts;
};

} // namespace driver
} // namespace exo

#endif // EXO_DRIVER_COMPILESESSION_H
