//===- driver/CompileSession.h - One thread-safe compile job ---*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CompileSession runs one CompileJob — build the scheduled procedures
/// (parse + schedule), then generate C — and reports a structured
/// JobResult instead of throwing or aborting. Sessions are safe to run
/// concurrently on different threads: the process-wide caches they share
/// (term interner, query cache, effect cache, Sym table, registries) are
/// individually synchronized, and per-session solver options are installed
/// thread-locally for the duration of the job. See DESIGN.md, "Threading
/// model".
///
//===----------------------------------------------------------------------===//

#ifndef EXO_DRIVER_COMPILESESSION_H
#define EXO_DRIVER_COMPILESESSION_H

#include "ir/Proc.h"
#include "smt/Solver.h"
#include "support/Error.h"

#include <functional>
#include <string>
#include <vector>

namespace exo {
namespace driver {

/// Per-session tuning, applied thread-locally while the job runs so that
/// concurrent sessions can use different settings.
struct SessionOptions {
  uint64_t MaxLiterals = smt::defaultMaxLiterals();
  bool UseQueryCache = true;
};

/// One unit of batch work: a name plus a builder producing the procedures
/// to emit. The builder runs parsing and scheduling; it must be
/// self-contained (capture shapes by value) because it may run on any
/// worker thread.
struct CompileJob {
  std::string Name;
  std::function<Expected<std::vector<ir::ProcRef>>()> Build;
};

/// Outcome of one job. Errors are captured — including the structured
/// scheduling payload when present — so one failing kernel never aborts
/// the batch.
struct JobResult {
  std::string Name;
  bool Ok = false;
  std::string Output; ///< generated C on success
  double WallMillis = 0;

  // On failure: the rendered error plus the structured payload fields.
  std::string ErrorKind;
  std::string ErrorMessage;
  std::string ErrorOp;      ///< scheduling operator, when known
  std::string ErrorPattern; ///< cursor pattern text, when known
  std::string ErrorLoc;     ///< matched location, when known
  std::string ErrorVerdict; ///< solver verdict, when a solver was involved
};

/// Runs jobs one at a time under the given options. Stateless apart from
/// the options; a single session object may be used from many threads.
class CompileSession {
public:
  explicit CompileSession(SessionOptions Opts = {}) : Opts(Opts) {}

  /// Builds and compiles one job, timing it and capturing any error.
  JobResult run(const CompileJob &Job) const;

private:
  SessionOptions Opts;
};

} // namespace driver
} // namespace exo

#endif // EXO_DRIVER_COMPILESESSION_H
