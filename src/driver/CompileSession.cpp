//===- driver/CompileSession.cpp -------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "driver/CompileSession.h"

#include "analysis/EffectSnapshot.h"
#include "backend/Backend.h"
#include "smt/QueryCache.h"
#include "support/Deadline.h"

#include <chrono>

using namespace exo;
using namespace exo::driver;

static void recordError(JobResult &R, const Error &E) {
  R.Ok = false;
  R.ErrorKind = errorKindName(E.kind());
  R.ErrorMessage = E.message();
  R.ErrorOp.clear();
  R.ErrorPattern.clear();
  R.ErrorLoc.clear();
  R.ErrorVerdict.clear();
  if (const ScheduleErrorInfo *Info = E.scheduleInfo()) {
    R.ErrorOp = Info->Op;
    R.ErrorPattern = Info->Pattern;
    R.ErrorLoc = Info->Loc;
    if (Info->SolverVerdict != ScheduleErrorInfo::Verdict::None)
      R.ErrorVerdict = scheduleVerdictName(Info->SolverVerdict);
  }
}

/// Only a budget-Unknown is worth a retry: a bigger budget can flip it to
/// Yes/No, whereas structural Unknowns and timeouts are final (the former
/// by the paper's conservative-rejection rule, the latter because the
/// deadline is already gone).
static bool isRetryableError(const Error &E) {
  const ScheduleErrorInfo *Info = E.scheduleInfo();
  return Info &&
         Info->SolverVerdict == ScheduleErrorInfo::Verdict::UnknownBudget;
}

/// One build-then-lower attempt under the given solver budget. Returns
/// true on success; on failure the error is recorded into \p R.
static bool attemptJob(const CompileJob &Job, JobResult &R,
                       backend::Backend &BE, uint64_t MaxLiterals,
                       bool UseQueryCache, const std::string &Tenant,
                       Error *OutError) {
  smt::ScopedSolverDefaults Defaults(MaxLiterals, UseQueryCache);
  Expected<std::vector<ir::ProcRef>> Procs = Job.Build();
  if (!Procs) {
    recordError(R, Procs.error());
    if (OutError)
      *OutError = Procs.error();
    return false;
  }
  backend::LowerOptions LO;
  LO.CacheSalt = Tenant;
  Expected<backend::LoweredModuleRef> M = BE.lower(*Procs, LO);
  if (!M) {
    recordError(R, M.error());
    if (OutError)
      *OutError = M.error();
    return false;
  }
  R.Ok = true;
  R.Output = (*M)->source();
  // A retried attempt may have recorded an earlier failure; the job
  // succeeded, so only the retry counters keep that history.
  R.ErrorKind.clear();
  R.ErrorMessage.clear();
  R.ErrorOp.clear();
  R.ErrorPattern.clear();
  R.ErrorLoc.clear();
  R.ErrorVerdict.clear();
  return true;
}

JobResult CompileSession::run(const CompileJob &Job) const {
  JobResult R;
  R.Name = Job.Name;
  auto Start = std::chrono::steady_clock::now();

  backend::Backend *BE = backend::findBackend(Opts.BackendName);
  if (!BE) {
    R.ErrorKind = errorKindName(Error::Kind::Internal);
    R.ErrorMessage = "unknown backend '" + Opts.BackendName + "'";
    return R;
  }

  {
    // Pin this job's deadline for the current thread; solver hot loops
    // poll it (see smt::Budget) so a wedged query returns
    // Unknown{timeout} instead of hanging the worker.
    support::Deadline D = Opts.DeadlineMillis > 0
                              ? support::Deadline::afterMillis(
                                    Opts.DeadlineMillis)
                              : support::Deadline::never();
    support::ScopedDeadline Scope(D);

    // Every job is its own cache job: verdicts it inserts are tagged with
    // this id, so hits a *later* job takes on them count as cross-job
    // (the batch/daemon/tuner amortization gauge).
    smt::ScopedQueryJob QCJob;
    smt::QueryCacheStats QCBefore = smt::queryCacheThreadStats();

    // One snapshot for the whole job (including retries): every rewrite
    // in the schedule chain re-analyzes only its dirty region. The
    // snapshot caches summaries, never solver verdicts, so retries under
    // escalated budgets still re-pose their queries.
    analysis::EffectSnapshot Snapshot;
    analysis::ScopedEffectSnapshot SnapScope(
        Opts.UseEffectSnapshot ? &Snapshot : nullptr);

    uint64_t Budget = Opts.MaxLiterals == 0 ? 1 : Opts.MaxLiterals;
    uint64_t Factor = Opts.RetryBudgetFactor < 2 ? 2 : Opts.RetryBudgetFactor;
    Error LastError(Error::Kind::None, "");
    smt::Solver::Stats Before = smt::solverThreadStats();
    smt::clearLastBudgetUnknownQuery();
    unsigned EscalationsLeft = Opts.MaxRetries;
    for (;;) {
      R.FinalMaxLiterals = Budget;
      if (attemptJob(Job, R, *BE, Budget, Opts.UseQueryCache, Opts.Tenant,
                     &LastError))
        break;
      if (EscalationsLeft == 0 || !isRetryableError(LastError) || D.expired())
        break;
      // Cheap retry: the solver remembered the query that came back
      // budget-Unknown. Re-prove just that query under escalated budgets;
      // only when its verdict actually changes is a full re-build worth
      // the cost (Unknown verdicts are never cached, and a Yes/No probe
      // result is, so the re-build gets the answer from the cache).
      smt::TermRef Failed = smt::lastBudgetUnknownQuery();
      bool VerdictChanged = false;
      while (EscalationsLeft > 0 && !D.expired()) {
        --EscalationsLeft;
        Budget = Budget > UINT64_MAX / Factor ? UINT64_MAX : Budget * Factor;
        if (!Failed) {
          // Nothing recorded (the failure surfaced without a solver
          // query on this thread): fall back to whole-job escalation.
          R.RetryPath = "full";
          VerdictChanged = true;
          break;
        }
        ++R.RetryProbes;
        smt::ScopedSolverDefaults Escalated(Budget, Opts.UseQueryCache);
        smt::Solver Probe;
        if (Probe.checkValid(Failed) != smt::SolverResult::Unknown) {
          R.RetryPath = "probe";
          VerdictChanged = true;
          break;
        }
        R.RetryPath = "probe-exhausted";
      }
      if (!VerdictChanged)
        break; // every probe stayed Unknown: a re-build would fail the same
      ++R.Retries;
      smt::clearLastBudgetUnknownQuery();
    }
    smt::Solver::Stats After = smt::solverThreadStats();
    R.SolverQueries = After.NumQueries - Before.NumQueries;
    R.SimplifyDecided = After.SimplifyDecided - Before.SimplifyDecided;
    R.FastPathHits = After.FastPathHits - Before.FastPathHits;
    smt::QueryCacheStats QCAfter = smt::queryCacheThreadStats();
    R.QueryCacheHits = QCAfter.Hits - QCBefore.Hits;
    R.QueryCacheMisses = QCAfter.Misses - QCBefore.Misses;
    R.QueryCacheCrossJobHits = QCAfter.CrossJobHits - QCBefore.CrossJobHits;
    analysis::EffectSnapshotStats SS = Snapshot.stats();
    R.IncrementalHits = SS.Hits;
    R.IncrementalMisses = SS.Misses;

    if (!R.Ok && Opts.FallbackReference && Job.BuildReference) {
      // Graceful degradation: correct-but-unscheduled C beats no C. The
      // schedule's failure stays on the result for the batch report.
      Expected<std::vector<ir::ProcRef>> Ref = Job.BuildReference();
      if (Ref) {
        backend::LowerOptions LO;
        LO.CacheSalt = Opts.Tenant;
        Expected<backend::LoweredModuleRef> M = BE->lower(*Ref, LO);
        if (M) {
          R.Ok = true;
          R.Degraded = true;
          R.Output = (*M)->source();
        }
      }
    }

    if (D.expired())
      R.DeadlineMiss = true;
  }

  R.WallMillis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  return R;
}
