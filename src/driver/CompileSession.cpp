//===- driver/CompileSession.cpp -------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "driver/CompileSession.h"

#include "backend/CodeGen.h"

#include <chrono>

using namespace exo;
using namespace exo::driver;

static void recordError(JobResult &R, const Error &E) {
  R.Ok = false;
  R.ErrorKind = errorKindName(E.kind());
  R.ErrorMessage = E.message();
  if (const ScheduleErrorInfo *Info = E.scheduleInfo()) {
    R.ErrorOp = Info->Op;
    R.ErrorPattern = Info->Pattern;
    R.ErrorLoc = Info->Loc;
    if (Info->SolverVerdict != ScheduleErrorInfo::Verdict::None)
      R.ErrorVerdict = scheduleVerdictName(Info->SolverVerdict);
  }
}

JobResult CompileSession::run(const CompileJob &Job) const {
  JobResult R;
  R.Name = Job.Name;
  auto Start = std::chrono::steady_clock::now();

  {
    // Pin this session's solver settings for the current thread; solvers
    // constructed anywhere below (effect analysis, bounds checks,
    // unification) pick them up without global state changes.
    smt::ScopedSolverDefaults Defaults(Opts.MaxLiterals, Opts.UseQueryCache);

    Expected<std::vector<ir::ProcRef>> Procs = Job.Build();
    if (!Procs) {
      recordError(R, Procs.error());
    } else {
      Expected<std::string> C = backend::generateC(*Procs);
      if (!C)
        recordError(R, C.error());
      else {
        R.Ok = true;
        R.Output = std::move(*C);
      }
    }
  }

  R.WallMillis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  return R;
}
