//===- driver/BatchDriver.cpp ----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "analysis/EffectCache.h"
#include "smt/QueryCache.h"
#include "support/ThreadPool.h"

#include <chrono>

using namespace exo;
using namespace exo::driver;

BatchResult BatchDriver::run(const std::vector<CompileJob> &Jobs) const {
  BatchResult Out;
  Out.Threads = Threads == 0 ? 1 : Threads;
  Out.Jobs.resize(Jobs.size());

  smt::Solver::Stats Solver0 = smt::solverGlobalStats();
  smt::TermInternerStats Term0 = smt::termInternerStats();
  smt::QueryCacheStats Query0 = smt::solverQueryCacheStats();
  analysis::EffectCacheStats Eff0 = analysis::effectCacheStats();

  auto Start = std::chrono::steady_clock::now();
  {
    CompileSession Session(SOpts);
    // 0 workers = run submissions inline on this thread: the serial
    // baseline takes the exact same code path as the parallel one.
    support::ThreadPool Pool(Threads <= 1 ? 0 : Threads);
    for (size_t I = 0; I < Jobs.size(); ++I) {
      const CompileJob *Job = &Jobs[I];
      JobResult *Slot = &Out.Jobs[I];
      Pool.submit([&Session, Job, Slot] { *Slot = Session.run(*Job); });
    }
    Pool.waitIdle();
  }
  Out.WallMillis = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  for (const JobResult &R : Out.Jobs)
    Out.AllOk = Out.AllOk && R.Ok;

  smt::Solver::Stats Solver1 = smt::solverGlobalStats();
  smt::TermInternerStats Term1 = smt::termInternerStats();
  smt::QueryCacheStats Query1 = smt::solverQueryCacheStats();
  analysis::EffectCacheStats Eff1 = analysis::effectCacheStats();
  Out.Cache.SolverQueries = Solver1.NumQueries - Solver0.NumQueries;
  Out.Cache.QueryCacheHits = Query1.Hits - Query0.Hits;
  Out.Cache.QueryCacheMisses = Query1.Misses - Query0.Misses;
  Out.Cache.TermHits = Term1.Hits - Term0.Hits;
  Out.Cache.TermMisses = Term1.Misses - Term0.Misses;
  Out.Cache.EffectHits = Eff1.Hits - Eff0.Hits;
  Out.Cache.EffectMisses = Eff1.Misses - Eff0.Misses;
  return Out;
}
