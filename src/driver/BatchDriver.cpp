//===- driver/BatchDriver.cpp ----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "analysis/EffectCache.h"
#include "smt/QueryCache.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

using namespace exo;
using namespace exo::driver;

namespace {

/// Per-job state shared between the worker that runs the job and the
/// watchdog that supervises it. Kept separate from JobResult so the
/// watchdog never races the worker's result assignment: workers write
/// State/StartMillis, the watchdog writes Overdue, and the merge into
/// JobResult happens only after both have finished.
struct JobTrack {
  std::atomic<int> State{0}; ///< 0 = pending, 1 = running, 2 = done
  std::atomic<int64_t> StartMillis{0};
  std::atomic<bool> Overdue{false};
};

int64_t nowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

BatchResult BatchDriver::run(const std::vector<CompileJob> &Jobs) const {
  BatchResult Out;
  Out.Threads = Threads == 0 ? 1 : Threads;
  Out.Jobs.resize(Jobs.size());

  smt::Solver::Stats Solver0 = smt::solverGlobalStats();
  smt::TermInternerStats Term0 = smt::termInternerStats();
  smt::QueryCacheStats Query0 = smt::solverQueryCacheStats();
  analysis::EffectCacheStats Eff0 = analysis::effectCacheStats();

  std::unique_ptr<JobTrack[]> Track(new JobTrack[Jobs.size()]);

  auto Start = std::chrono::steady_clock::now();
  {
    CompileSession Session(SOpts);
    // 0 workers = run submissions inline on this thread: the serial
    // baseline takes the exact same code path as the parallel one.
    support::ThreadPool Pool(Threads <= 1 ? 0 : Threads);

    // With a per-job deadline configured, a watchdog thread flags jobs
    // still running past it. Cancellation is cooperative (the session's
    // thread-local deadline unwinds solver loops), so the watchdog never
    // kills anything — it guarantees the batch report calls an overdue
    // job a failure even if the job's own polling never tripped. The
    // grace period covers post-solver work (codegen, fallback emission)
    // that legitimately runs after the deadline fires.
    std::atomic<bool> WatchdogStop{false};
    std::thread Watchdog;
    if (SOpts.DeadlineMillis > 0) {
      int64_t Limit = SOpts.DeadlineMillis;
      int64_t Grace = Limit / 4 > 25 ? Limit / 4 : 25;
      JobTrack *T = Track.get();
      size_t N = Jobs.size();
      Watchdog = std::thread([&WatchdogStop, T, N, Limit, Grace] {
        while (!WatchdogStop.load(std::memory_order_acquire)) {
          int64_t Now = nowMillis();
          for (size_t I = 0; I < N; ++I) {
            if (T[I].State.load(std::memory_order_acquire) != 1)
              continue;
            int64_t Began = T[I].StartMillis.load(std::memory_order_acquire);
            if (Now - Began > Limit + Grace)
              T[I].Overdue.store(true, std::memory_order_release);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }

    for (size_t I = 0; I < Jobs.size(); ++I) {
      const CompileJob *Job = &Jobs[I];
      JobResult *Slot = &Out.Jobs[I];
      JobTrack *T = &Track[I];
      Pool.submit([&Session, Job, Slot, T] {
        T->StartMillis.store(nowMillis(), std::memory_order_release);
        T->State.store(1, std::memory_order_release);
        *Slot = Session.run(*Job);
        T->State.store(2, std::memory_order_release);
      });
    }
    Pool.waitIdle();
    if (Watchdog.joinable()) {
      WatchdogStop.store(true, std::memory_order_release);
      Watchdog.join();
    }
  }
  Out.WallMillis = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  for (size_t I = 0; I < Out.Jobs.size(); ++I) {
    JobResult &R = Out.Jobs[I];
    if (Track[I].Overdue.load(std::memory_order_acquire)) {
      R.DeadlineMiss = true;
      // An overdue job is a failure unless the fallback already salvaged
      // it — degraded output is the sanctioned way past a blown deadline.
      if (R.Ok && !R.Degraded) {
        R.Ok = false;
        if (R.ErrorKind.empty()) {
          R.ErrorKind = "deadline";
          R.ErrorMessage = "job exceeded its wall-clock deadline";
        }
      }
    }
    Out.AllOk = Out.AllOk && R.Ok;
    if (!R.Ok)
      ++Out.NumFailed;
    if (R.Degraded)
      ++Out.NumDegraded;
    if (R.DeadlineMiss)
      ++Out.NumDeadlineMiss;
    if (R.Retries > 0)
      ++Out.NumRetried;
    Out.Cache.IncrementalHits += R.IncrementalHits;
    Out.Cache.IncrementalMisses += R.IncrementalMisses;
  }

  smt::Solver::Stats Solver1 = smt::solverGlobalStats();
  smt::TermInternerStats Term1 = smt::termInternerStats();
  smt::QueryCacheStats Query1 = smt::solverQueryCacheStats();
  analysis::EffectCacheStats Eff1 = analysis::effectCacheStats();
  Out.Cache.SolverQueries = Solver1.NumQueries - Solver0.NumQueries;
  Out.Cache.QueryCacheHits = Query1.Hits - Query0.Hits;
  Out.Cache.QueryCacheMisses = Query1.Misses - Query0.Misses;
  Out.Cache.QueryCacheCrossJobHits = Query1.CrossJobHits - Query0.CrossJobHits;
  Out.Cache.EffectCrossCompileHits =
      Eff1.CrossCompileHits - Eff0.CrossCompileHits;
  Out.Cache.TermHits = Term1.Hits - Term0.Hits;
  Out.Cache.TermMisses = Term1.Misses - Term0.Misses;
  Out.Cache.EffectHits = Eff1.Hits - Eff0.Hits;
  Out.Cache.EffectMisses = Eff1.Misses - Eff0.Misses;
  Out.Cache.SimplifyDecided = Solver1.SimplifyDecided - Solver0.SimplifyDecided;
  Out.Cache.FastPathHits = Solver1.FastPathHits - Solver0.FastPathHits;
  Out.Cache.FastPathMisses = Solver1.FastPathMisses - Solver0.FastPathMisses;
  Out.Cache.CooperLiterals = Solver1.NumLiterals - Solver0.NumLiterals;
  return Out;
}
