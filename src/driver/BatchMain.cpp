//===- driver/BatchMain.cpp - exocc-batch CLI ------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the standard kernel suite concurrently:
///
///   exocc-batch                       # all kernels, hardware threads
///   exocc-batch --threads 4           # fixed worker count
///   exocc-batch --serial-check        # also run serially; require the
///                                     # generated C to be bit-identical
///   exocc-batch --json out.json       # machine-readable results
///   exocc-batch --list                # print job names and exit
///   exocc-batch fig5a_sgemm_square    # only the named jobs
///
/// Failure-model controls (DESIGN.md, "Failure model"):
///
///   --deadline-ms N                   # per-job wall-clock deadline
///   --max-retries N                   # re-run budget-Unknown failures
///                                     # with escalated solver budgets
///   --max-literals N                  # starting solver budget
///   --fallback-reference              # emit unscheduled reference C when
///                                     # a schedule fails (job counts as
///                                     # success, tagged degraded)
///   --inject SPEC --inject-seed N     # deterministic fault injection,
///                                     # e.g. --inject solver-timeout*1
///                                     # or budget-unknown@0.5
///
/// Exit status: 0 when every job succeeded (degraded counts as success
/// only because --fallback-reference was requested), 1 when any job
/// failed, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"
#include "driver/KernelSuite.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"
#include "testing/ProgramGen.h"
#include "testing/ScheduleGen.h"

#include "analysis/EffectCache.h"
#include "smt/QueryCache.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace exo;
using namespace exo::driver;

namespace {

void clearAllCaches() {
  smt::clearTermInterner();
  smt::clearSolverQueryCache();
  analysis::clearEffectCache();
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// --fuzz N: replace the kernel suite with N randomly generated,
/// randomly scheduled procedures (the fuzzing harness's generators, see
/// testing/Fuzzer.h) and push them through the same parallel batch
/// pipeline. Each job is self-contained and deterministic in its seed,
/// so retries and worker interleavings cannot change the output.
std::vector<CompileJob> fuzzJobs(uint64_t Seed, unsigned N) {
  std::vector<CompileJob> Jobs;
  for (unsigned I = 0; I < N; ++I) {
    uint64_t S = Seed + I;
    CompileJob J;
    J.Name = "fuzz_p" + std::to_string(S);
    J.Build = [S]() -> Expected<std::vector<ir::ProcRef>> {
      auto G = testing::generateProgram(S);
      if (!G)
        return G.error();
      testing::Rng R(S * 7919 + 104730);
      return std::vector<ir::ProcRef>{
          testing::generateSchedule(G->Proc, R).Scheduled};
    };
    J.BuildReference = [S]() -> Expected<std::vector<ir::ProcRef>> {
      auto G = testing::generateProgram(S);
      if (!G)
        return G.error();
      return std::vector<ir::ProcRef>{G->Proc};
    };
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}

const char *jobStatus(const JobResult &J) {
  if (!J.Ok)
    return "failed";
  return J.Degraded ? "degraded" : "ok";
}

void writeJson(const std::string &Path, const BatchResult &R) {
  std::ofstream Out(Path);
  Out << "{\n  \"threads\": " << R.Threads
      << ",\n  \"wall_ms\": " << R.WallMillis
      << ",\n  \"all_ok\": " << (R.AllOk ? "true" : "false")
      << ",\n  \"failed\": " << R.NumFailed
      << ",\n  \"degraded\": " << R.NumDegraded
      << ",\n  \"deadline_misses\": " << R.NumDeadlineMiss
      << ",\n  \"retried\": " << R.NumRetried
      << ",\n  \"cache\": {\"solver_queries\": " << R.Cache.SolverQueries
      << ", \"query_cache_hits\": " << R.Cache.QueryCacheHits
      << ", \"query_cache_misses\": " << R.Cache.QueryCacheMisses
      << ", \"query_cache_cross_job_hits\": " << R.Cache.QueryCacheCrossJobHits
      << ", \"effect_cross_compile_hits\": " << R.Cache.EffectCrossCompileHits
      << ", \"term_hits\": " << R.Cache.TermHits
      << ", \"effect_hits\": " << R.Cache.EffectHits
      << ", \"simplify_decided\": " << R.Cache.SimplifyDecided
      << ", \"fastpath_hits\": " << R.Cache.FastPathHits
      << ", \"fastpath_misses\": " << R.Cache.FastPathMisses
      << ", \"cooper_literals\": " << R.Cache.CooperLiterals
      << ", \"incremental_hits\": " << R.Cache.IncrementalHits
      << ", \"incremental_misses\": " << R.Cache.IncrementalMisses
      << "},\n  \"jobs\": [";
  bool First = true;
  for (const JobResult &J : R.Jobs) {
    Out << (First ? "\n" : ",\n") << "    {\"name\": \"" << jsonEscape(J.Name)
        << "\", \"status\": \"" << jobStatus(J)
        << "\", \"ok\": " << (J.Ok ? "true" : "false")
        << ", \"wall_ms\": " << J.WallMillis
        << ", \"retries\": " << J.Retries
        << ", \"retry_probes\": " << J.RetryProbes
        << ", \"retry_path\": \"" << jsonEscape(J.RetryPath) << "\""
        << ", \"final_max_literals\": " << J.FinalMaxLiterals
        << ", \"deadline_miss\": " << (J.DeadlineMiss ? "true" : "false")
        << ", \"output_bytes\": " << J.Output.size()
        << ", \"solver_queries\": " << J.SolverQueries
        << ", \"simplify_decided\": " << J.SimplifyDecided
        << ", \"fastpath_hits\": " << J.FastPathHits
        << ", \"incremental_hits\": " << J.IncrementalHits
        << ", \"incremental_misses\": " << J.IncrementalMisses;
    // Degraded jobs carry the schedule's failure alongside the reference
    // output, so report error detail for them too.
    if (!J.Ok || J.Degraded) {
      Out << ", \"error_kind\": \"" << jsonEscape(J.ErrorKind)
          << "\", \"error\": \"" << jsonEscape(J.ErrorMessage) << "\"";
      if (!J.ErrorOp.empty())
        Out << ", \"op\": \"" << jsonEscape(J.ErrorOp) << "\"";
      if (!J.ErrorPattern.empty())
        Out << ", \"pattern\": \"" << jsonEscape(J.ErrorPattern) << "\"";
      if (!J.ErrorVerdict.empty())
        Out << ", \"verdict\": \"" << jsonEscape(J.ErrorVerdict) << "\"";
    }
    Out << "}";
    First = false;
  }
  Out << "\n  ]\n}\n";
}

void printResult(const BatchResult &R) {
  for (const JobResult &J : R.Jobs) {
    if (J.Ok) {
      std::printf("  %-4s %-22s %8.1f ms  %6zu bytes of C", jobStatus(J),
                  J.Name.c_str(), J.WallMillis, J.Output.size());
      if (J.Retries > 0)
        std::printf("  (retries=%u%s%s)", J.Retries,
                    J.RetryPath.empty() ? "" : " via ", J.RetryPath.c_str());
      if (J.DeadlineMiss)
        std::printf("  (deadline miss)");
      std::printf("\n");
      if (J.Degraded)
        std::printf("       degraded: %s: %s\n", J.ErrorKind.c_str(),
                    J.ErrorMessage.c_str());
    } else {
      std::printf("  FAIL %-22s %8.1f ms  %s: %s%s\n", J.Name.c_str(),
                  J.WallMillis, J.ErrorKind.c_str(), J.ErrorMessage.c_str(),
                  J.DeadlineMiss ? " (deadline miss)" : "");
      if (!J.ErrorOp.empty())
        std::printf("       op=%s pattern='%s'%s%s\n", J.ErrorOp.c_str(),
                    J.ErrorPattern.c_str(),
                    J.ErrorVerdict.empty() ? "" : " solver=",
                    J.ErrorVerdict.c_str());
    }
  }
  std::printf("batch: %zu jobs on %u thread%s in %.1f ms (solver queries: "
              "%llu, query-cache hits: %llu)\n",
              R.Jobs.size(), R.Threads, R.Threads == 1 ? "" : "s",
              R.WallMillis, (unsigned long long)R.Cache.SolverQueries,
              (unsigned long long)R.Cache.QueryCacheHits);
  std::printf("       preprocessing: %llu decided, fast path %llu hit / "
              "%llu miss, %llu Cooper literals\n",
              (unsigned long long)R.Cache.SimplifyDecided,
              (unsigned long long)R.Cache.FastPathHits,
              (unsigned long long)R.Cache.FastPathMisses,
              (unsigned long long)R.Cache.CooperLiterals);
  std::printf("       incremental re-analysis: %llu hits / %llu misses\n",
              (unsigned long long)R.Cache.IncrementalHits,
              (unsigned long long)R.Cache.IncrementalMisses);
  if (R.NumFailed || R.NumDegraded || R.NumDeadlineMiss || R.NumRetried)
    std::printf("       %u failed, %u degraded, %u deadline miss%s, "
                "%u retried\n",
                R.NumFailed, R.NumDegraded, R.NumDeadlineMiss,
                R.NumDeadlineMiss == 1 ? "" : "es", R.NumRetried);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Threads = support::ThreadPool::hardwareThreads();
  bool SerialCheck = false, List = false;
  std::string JsonPath, InjectSpec;
  uint64_t InjectSeed = 0;
  unsigned FuzzCount = 0;
  uint64_t FuzzSeed = 1;
  std::vector<std::string> Filters;
  SessionOptions SOpts;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--threads" && I + 1 < Argc)
      Threads = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (A == "--serial-check")
      SerialCheck = true;
    else if (A == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (A == "--deadline-ms" && I + 1 < Argc)
      SOpts.DeadlineMillis = std::atoll(Argv[++I]);
    else if (A == "--max-retries" && I + 1 < Argc)
      SOpts.MaxRetries = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (A == "--max-literals" && I + 1 < Argc)
      SOpts.MaxLiterals = static_cast<uint64_t>(std::atoll(Argv[++I]));
    else if (A == "--fallback-reference")
      SOpts.FallbackReference = true;
    else if (A == "--backend" && I + 1 < Argc)
      SOpts.BackendName = Argv[++I];
    else if (A.rfind("--backend=", 0) == 0)
      SOpts.BackendName = A.substr(10);
    else if (A == "--inject" && I + 1 < Argc)
      InjectSpec = Argv[++I];
    else if (A == "--inject-seed" && I + 1 < Argc)
      InjectSeed = static_cast<uint64_t>(std::atoll(Argv[++I]));
    else if (A == "--fuzz" && I + 1 < Argc)
      FuzzCount = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (A == "--fuzz-seed" && I + 1 < Argc)
      FuzzSeed = static_cast<uint64_t>(std::atoll(Argv[++I]));
    else if (A == "--list")
      List = true;
    else if (A == "--help" || A == "-h") {
      std::printf(
          "usage: exocc-batch [--threads N] [--serial-check] [--json PATH]\n"
          "                   [--deadline-ms N] [--max-retries N]\n"
          "                   [--max-literals N] [--fallback-reference]\n"
          "                   [--inject SPEC] [--inject-seed N]\n"
          "                   [--fuzz N] [--fuzz-seed S]\n"
          "                   [--backend csource|jit]\n"
          "                   [--list] [job-name...]\n"
          "--backend picks the execution backend that lowers each job\n"
          "(default csource; every backend emits identical C).\n"
          "--fuzz N compiles N randomly generated+scheduled procedures\n"
          "instead of the kernel suite (same parallel pipeline).\n"
          "inject SPEC: comma-separated kind[@prob][*count]; kinds:\n"
          "  solver-timeout, budget-unknown, alloc-fail, runtime-trap\n");
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return 2;
    } else
      Filters.push_back(A);
  }
  if (Threads == 0)
    Threads = 1;

  if (!InjectSpec.empty()) {
    auto C = support::FaultInjector::instance().configure(InjectSpec,
                                                          InjectSeed);
    if (!C) {
      std::fprintf(stderr, "--inject: %s\n", C.error().message().c_str());
      return 2;
    }
  }

  std::vector<CompileJob> Jobs =
      FuzzCount ? fuzzJobs(FuzzSeed, FuzzCount) : standardKernelSuite();
  if (List) {
    for (const CompileJob &J : Jobs)
      std::printf("%s\n", J.Name.c_str());
    return 0;
  }
  if (!Filters.empty()) {
    std::vector<CompileJob> Kept;
    for (CompileJob &J : Jobs)
      for (const std::string &F : Filters)
        if (J.Name.find(F) != std::string::npos) {
          Kept.push_back(std::move(J));
          break;
        }
    if (Kept.empty()) {
      std::fprintf(stderr, "no jobs match the given filters\n");
      return 2;
    }
    Jobs = std::move(Kept);
  }

  BatchResult Serial;
  if (SerialCheck) {
    clearAllCaches();
    Serial = BatchDriver(1, SOpts).run(Jobs);
    std::printf("== serial baseline ==\n");
    printResult(Serial);
  }

  clearAllCaches();
  BatchResult Parallel = BatchDriver(Threads, SOpts).run(Jobs);
  if (SerialCheck)
    std::printf("== %u threads ==\n", Threads);
  printResult(Parallel);

  if (!JsonPath.empty())
    writeJson(JsonPath, Parallel);

  if (SerialCheck) {
    for (size_t I = 0; I < Jobs.size(); ++I) {
      const JobResult &A = Serial.Jobs[I], &B = Parallel.Jobs[I];
      if (A.Ok != B.Ok || A.Output != B.Output ||
          A.ErrorMessage != B.ErrorMessage) {
        std::fprintf(stderr,
                     "serial-check FAILED: job '%s' differs between 1 and "
                     "%u threads\n",
                     A.Name.c_str(), Threads);
        return 1;
      }
    }
    std::printf("serial-check: all %zu outputs bit-identical (1 vs %u "
                "threads), speedup %.2fx\n",
                Jobs.size(), Threads,
                Parallel.WallMillis > 0 ? Serial.WallMillis /
                                              Parallel.WallMillis
                                        : 0.0);
  }

  // Nonzero exit when any job failed. A degraded job only exists under
  // --fallback-reference, where emitting reference C is the requested
  // success mode.
  return Parallel.AllOk ? 0 : 1;
}
