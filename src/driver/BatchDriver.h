//===- driver/BatchDriver.h - Parallel batch compilation -------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans a list of CompileJobs across a work-stealing thread pool, one
/// CompileSession invocation per job, and collects per-job results plus
/// batch-wide cache-statistics deltas. Job failures are recorded, not
/// fatal. Because every shared cache returns exactly what a cold
/// computation would and codegen naming is procedure-local, the produced
/// C is bit-identical regardless of thread count or interleaving.
///
/// When SessionOptions carries a deadline, a watchdog thread supervises
/// the batch: any job still running past its deadline (plus a grace
/// period) is marked overdue, and overdue jobs are reported failed with a
/// deadline miss — without killing the pool. Cancellation itself is
/// cooperative (the session's thread-local deadline makes solver loops
/// unwind), so the watchdog is the safety net that keeps the *report*
/// honest even for code paths that poll rarely.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_DRIVER_BATCHDRIVER_H
#define EXO_DRIVER_BATCHDRIVER_H

#include "driver/CompileSession.h"

namespace exo {
namespace driver {

/// Cache/solver activity over one batch (after-minus-before deltas of the
/// process-wide counters; meaningful when no other threads compile
/// concurrently with the batch).
struct BatchCacheStats {
  uint64_t SolverQueries = 0;
  uint64_t QueryCacheHits = 0;
  uint64_t QueryCacheMisses = 0;
  /// Query-cache hits served from entries a *different* compile job
  /// inserted (batch siblings or earlier compiles in this process) —
  /// the cross-compile amortization the VarId-canonical keys enable.
  uint64_t QueryCacheCrossJobHits = 0;
  /// Effect-summary cache hits rehydrated from another compile's
  /// canonically-equal statement (see analysis::EffectCacheStats).
  uint64_t EffectCrossCompileHits = 0;
  uint64_t TermHits = 0;
  uint64_t TermMisses = 0;
  uint64_t EffectHits = 0;
  uint64_t EffectMisses = 0;
  /// Preprocessing activity (DESIGN.md, "Solver preprocessing"):
  /// queries decided before Cooper, disjointness checks answered by the
  /// effect fast path (and ones that fell back), and the total Cooper
  /// literal consumption over the batch.
  uint64_t SimplifyDecided = 0;
  uint64_t FastPathHits = 0;
  uint64_t FastPathMisses = 0;
  uint64_t CooperLiterals = 0;
  /// Incremental re-analysis activity, summed over the per-job
  /// EffectSnapshots (DESIGN.md, "Incremental analysis").
  uint64_t IncrementalHits = 0;
  uint64_t IncrementalMisses = 0;
};

struct BatchResult {
  std::vector<JobResult> Jobs; ///< in input order
  double WallMillis = 0;
  unsigned Threads = 1;
  bool AllOk = true;          ///< degraded jobs count as Ok
  unsigned NumFailed = 0;     ///< jobs with Ok == false
  unsigned NumDegraded = 0;   ///< jobs emitted from the reference fallback
  unsigned NumDeadlineMiss = 0;
  unsigned NumRetried = 0;    ///< jobs that needed at least one retry
  BatchCacheStats Cache;
};

/// Runs batches with a fixed worker count. Threads <= 1 runs inline on
/// the calling thread (the serial baseline), with identical results.
class BatchDriver {
public:
  explicit BatchDriver(unsigned Threads, SessionOptions SOpts = {})
      : Threads(Threads), SOpts(SOpts) {}

  BatchResult run(const std::vector<CompileJob> &Jobs) const;

private:
  unsigned Threads;
  SessionOptions SOpts;
};

} // namespace driver
} // namespace exo

#endif // EXO_DRIVER_BATCHDRIVER_H
