//===- backend/CodeGen.h - C code generation -------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates human-readable C from LoopIR (§3.1.2):
///
///  * data values — including scalars — are passed by pointer;
///  * windows compile to structs carrying a data pointer and strides
///    (static sizes alone cannot address a strided view);
///  * buffer allocation/free go through the user-defined Memory hooks;
///  * calls to @instr procedures expand their C template with argument
///    strings interpolated (instruction procedures are never emitted as
///    functions — that is the whole point of §3.2.2);
///  * static assertions become compiler hints.
///
/// Backend checks (memory discipline, precision consistency) run first.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_BACKEND_CODEGEN_H
#define EXO_BACKEND_CODEGEN_H

#include "ir/Proc.h"
#include "support/Error.h"

namespace exo {
namespace backend {

struct CodeGenOptions {
  /// Emitted verbatim near the top of the file (e.g. test harness
  /// includes).
  std::string Prelude;
  /// Skip the backend checks (used by tests that exercise codegen alone).
  bool SkipChecks = false;
};

/// Generates one self-contained C file defining \p Procs (and every
/// non-instr procedure they transitively call).
Expected<std::string> generateC(const std::vector<ir::ProcRef> &Procs,
                                const CodeGenOptions &Opts = {});

/// Convenience single-proc form.
Expected<std::string> generateC(const ir::ProcRef &P,
                                const CodeGenOptions &Opts = {});

/// The C scalar type for a precision ("float", "int8_t", ...). R resolves
/// to float.
const char *cTypeOf(ir::ScalarKind K);

} // namespace backend
} // namespace exo

#endif // EXO_BACKEND_CODEGEN_H
