//===- backend/Memory.h - User-defined memories ----------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Custom memories (§2.2, §3.2.1): hardware targets define memories in
/// *libraries*, not compiler backends. A Memory chooses the C code
/// emitted for buffer allocation and free, contributes global snippets
/// (includes, helpers), and decides whether plain reads/writes/reductions
/// of its buffers are allowed at all — scratchpads typically disable
/// direct access so only custom instructions can touch them (enforced by
/// the backend MemoryCheck).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_BACKEND_MEMORY_H
#define EXO_BACKEND_MEMORY_H

#include "support/Error.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace exo {
namespace backend {

/// Information handed to the allocation hooks.
struct AllocInfo {
  std::string Name;       ///< C identifier of the buffer
  std::string PrimType;   ///< C scalar type, e.g. "float"
  std::vector<std::string> DimExprs; ///< C expressions for each dimension
  bool ConstSize;         ///< every dimension is a literal
  long long TotalConstSize; ///< product of dims when ConstSize
};

/// Base class for memory definitions. Subclass and override the hooks;
/// the defaults implement ordinary heap allocation.
class Memory {
public:
  Memory(std::string Name, bool Addressable)
      : Name(std::move(Name)), Addressable(Addressable) {}
  virtual ~Memory();

  const std::string &name() const { return Name; }

  /// May generated C read/write/reduce elements directly? Scratchpad-like
  /// memories return false and are only accessible through instructions.
  bool isAddressable() const { return Addressable; }

  /// C statement(s) allocating the buffer. The default uses a stack array
  /// for constant sizes and malloc otherwise.
  virtual std::string allocCode(const AllocInfo &Info) const;

  /// C statement(s) freeing the buffer (empty when allocCode used the
  /// stack).
  virtual std::string freeCode(const AllocInfo &Info) const;

  /// Emitted once per generated file (includes, helper definitions).
  virtual std::string globalCode() const { return ""; }

private:
  std::string Name;
  bool Addressable;
};

using MemoryRef = std::shared_ptr<const Memory>;

/// Process-wide registry of memory definitions; "DRAM" is pre-registered.
/// Thread-safe: hardware libraries register memories lazily from whichever
/// compile session touches them first, while codegen on other sessions
/// looks memories up concurrently.
class MemoryRegistry {
public:
  static MemoryRegistry &instance();

  void add(MemoryRef M);
  /// Returns the memory, or null when unknown.
  MemoryRef find(const std::string &Name) const;

private:
  MemoryRegistry();
  mutable std::mutex M;
  std::map<std::string, MemoryRef> Memories;
};

} // namespace backend
} // namespace exo

#endif // EXO_BACKEND_MEMORY_H
