//===- backend/Memory.cpp --------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "backend/Memory.h"

using namespace exo;
using namespace exo::backend;

Memory::~Memory() = default;

std::string Memory::allocCode(const AllocInfo &Info) const {
  std::string Size;
  for (const std::string &D : Info.DimExprs) {
    if (!Size.empty())
      Size += " * ";
    Size += "(" + D + ")";
  }
  if (Size.empty())
    Size = "1";
  if (Info.ConstSize && Info.TotalConstSize <= 4096)
    return Info.PrimType + " " + Info.Name + "[" + Size + "];";
  return Info.PrimType + " *" + Info.Name + " = (" + Info.PrimType +
         " *)malloc(" + Size + " * sizeof(" + Info.PrimType + "));";
}

std::string Memory::freeCode(const AllocInfo &Info) const {
  if (Info.ConstSize && Info.TotalConstSize <= 4096)
    return "";
  return "free(" + Info.Name + ");";
}

MemoryRegistry::MemoryRegistry() {
  add(std::make_shared<Memory>("DRAM", /*Addressable=*/true));
}

MemoryRegistry &MemoryRegistry::instance() {
  static MemoryRegistry R;
  return R;
}

void MemoryRegistry::add(MemoryRef Mem) {
  std::lock_guard<std::mutex> Lock(M);
  Memories[Mem->name()] = std::move(Mem);
}

MemoryRef MemoryRegistry::find(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Memories.find(Name);
  return It == Memories.end() ? nullptr : It->second;
}
