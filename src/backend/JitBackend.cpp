//===- backend/JitBackend.cpp - In-process JIT backend ---------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process execution path: the module source (identical to the
/// csource backend's, byte for byte) plus generated `exo_rt_<entry>`
/// trampolines are compiled once with `cc -O0 -shared -fPIC` into a temp
/// .so and dlopened. Compiled modules live in a process-wide
/// content-hashed cache (key: FNV-1a of the generated source), so
/// re-lowering the same program — the autotuner's and the fuzz replay
/// loop's common case — costs a hash lookup instead of a compile. LRU
/// eviction dlcloses a module as soon as no live LoweredModule still
/// references it (the handle is shared_ptr-owned, so an in-use module
/// survives its own eviction until released).
///
/// Trap containment is per module: each .so links its own copy of the
/// accelerator simulator runtimes (their state is module-local), and the
/// backend installs a host-side recording handler into that copy at load
/// time. execute() clears the module's trap state before the call and
/// reports ExecKind::Trap after it, so a trapping candidate fails the
/// case — never the process.
///
//===----------------------------------------------------------------------===//

#include "backend/Backend.h"

#include "backend/BackendImpl.h"
#include "support/Signals.h"
#include "support/TempDir.h"

#include <cstdlib>
#include <fstream>
#include <list>
#include <map>
#include <mutex>

#include <dlfcn.h>

using namespace exo;
using namespace exo::backend;
using namespace exo::backend::detail;
using namespace exo::ir;

namespace {

/// A recording trap handler installed into every module's simulator
/// copies: the sims count traps before dispatching, so containment only
/// needs the handler to return (the faulting instruction is skipped).
extern "C" void exoJitTrapSink(int, const char *) {}

/// The simulator bridge of one dlopened module: the trap/stat entry
/// points of the module's own runtime copies, resolved once at load.
struct SimBridge {
  void (*ClearTraps)() = nullptr;
  uint64_t (*TrapCount)() = nullptr;
  int (*LastTrap)() = nullptr;
  const char *(*TrapName)(int) = nullptr;

  bool present() const { return ClearTraps && TrapCount && LastTrap; }
};

/// One compiled .so. Owned by shared_ptr from both the cache and every
/// LoweredModule using it; dlclose runs when the last owner lets go.
struct JitModule {
  support::TempDir Dir;
  void *Handle = nullptr;
  std::string BuildError;
  SimBridge Gemmini, Amx;
  std::map<std::string, void *> Symbols;
  std::mutex Mu; ///< serializes calls into this module

  ~JitModule() {
    if (Handle)
      dlclose(Handle);
  }

  void *symbol(const std::string &Name) {
    if (!Handle)
      return nullptr;
    auto It = Symbols.find(Name);
    if (It != Symbols.end())
      return It->second;
    void *S = dlsym(Handle, Name.c_str());
    Symbols[Name] = S;
    return S;
  }
};

using JitModuleRef = std::shared_ptr<JitModule>;

SimBridge resolveBridge(JitModule &M, const std::string &Prefix) {
  SimBridge B;
  B.ClearTraps = reinterpret_cast<void (*)()>(
      M.symbol(Prefix + "_clear_traps"));
  B.TrapCount =
      reinterpret_cast<uint64_t (*)()>(M.symbol(Prefix + "_trap_count"));
  B.LastTrap = reinterpret_cast<int (*)()>(M.symbol(Prefix + "_last_trap"));
  B.TrapName = reinterpret_cast<const char *(*)(int)>(
      M.symbol(Prefix + "_trap_name"));
  if (B.present()) {
    using TrapFn = void (*)(int, const char *);
    auto SetTrap = reinterpret_cast<TrapFn (*)(TrapFn)>(
        M.symbol(Prefix + "_set_trap_handler"));
    if (SetTrap)
      SetTrap(exoJitTrapSink); // route this module's traps to the sink
  }
  return B;
}

/// The process-wide content-addressed module cache.
struct JitCache {
  std::mutex Mu;
  size_t Capacity = 64;
  std::map<std::string, JitModuleRef> ByHash;
  std::list<std::string> Lru; ///< front = most recently used
  JitBackend::CacheStats Stats;

  static JitCache &instance() {
    static JitCache *C = new JitCache();
    return *C;
  }

  void touch(const std::string &Hash) {
    Lru.remove(Hash);
    Lru.push_front(Hash);
  }

  void evictOver() {
    while (ByHash.size() > Capacity && !Lru.empty()) {
      std::string Victim = Lru.back();
      Lru.pop_back();
      ByHash.erase(Victim); // dlclose deferred until last user releases
      ++Stats.Evictions;
    }
  }
};

/// Compiles one module into a fresh .so; returns a JitModule whose
/// BuildError is set on failure (with the evidence directory kept).
JitModuleRef compileModule(const LoweredModule &M) {
  support::ignoreSigpipe(); // cc children write through pipes
  auto J = std::make_shared<JitModule>();
  J->Dir = M.workDirHint().empty()
               ? support::TempDir("jit")
               : support::TempDir::adopt(M.workDirHint());
  if (!J->Dir.valid()) {
    J->BuildError = "jit: cannot create scratch directory";
    return J;
  }
  if (M.keepArtifactsHint())
    J->Dir.keep();

  std::string Src = J->Dir.file("module_" + M.hash() + ".c");
  std::string So = J->Dir.file("module_" + M.hash() + ".so");
  std::string Err = Src + ".cc.err";
  {
    std::ofstream F(Src);
    F << M.source() << emitTrampolines(M.entries());
  }
  // -O0 halves compile time vs -O1 and execution is bit-identical on the
  // integer-exact data the oracle feeds; -w because generated code is
  // warning-noisy under harnesses and the diagnostics go nowhere.
  std::string Cmd = compileCommand(M.compilerHint(),
                                   "-O0 -w -pipe -std=c11 -shared -fPIC", Src,
                                   So, M.source(), Err);
  if (std::system(Cmd.c_str()) != 0) {
    J->BuildError = "cc failed on " + J->Dir.keep() + ": " +
                    truncated(readFile(Err), 800);
    return J;
  }
  J->Handle = dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!J->Handle) {
    const char *E = dlerror();
    J->BuildError = "dlopen failed on " + J->Dir.keep() + ": " +
                    (E ? E : "unknown error");
    return J;
  }
  if (usesGemminiSim(M.source()))
    J->Gemmini = resolveBridge(*J, "gemmini");
  if (usesAmxSim(M.source()))
    J->Amx = resolveBridge(*J, "amx");
  return J;
}

/// Returns the compiled module for \p M, from the cache when the same
/// source was compiled before. Never returns null; check BuildError.
JitModuleRef ensureBuilt(LoweredModule &M) {
  if (M.state())
    return std::static_pointer_cast<JitModule>(M.state());

  JitCache &C = JitCache::instance();
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    auto It = C.ByHash.find(M.hash());
    if (It != C.ByHash.end()) {
      ++C.Stats.Hits;
      C.touch(M.hash());
      ModuleAccess::state(M) = It->second;
      return It->second;
    }
  }

  // Compile outside the cache lock: cc dominates and concurrent lowers of
  // *different* sources must not serialize. A rare duplicate compile of
  // the same source is benign (second insert wins the cache, both work).
  JitModuleRef J = compileModule(M);
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    ++C.Stats.Compiles;
    if (J->Handle) { // only cache healthy modules
      C.ByHash[M.hash()] = J;
      C.touch(M.hash());
      C.evictOver();
    }
  }
  ModuleAccess::state(M) = J;
  return J;
}

} // namespace

Expected<LoweredModuleRef> JitBackend::lower(const std::vector<ProcRef> &Procs,
                                             const LowerOptions &LO) {
  return lowerCommon(Procs, LO, name());
}

ExecStatus JitBackend::execute(LoweredModule &M, const std::string &Entry,
                               BufferSet &Args) {
  if (M.backendName() != name())
    return {ExecKind::Error, 0,
            "module was lowered by '" + M.backendName() + "', not jit"};
  const EntryInfo *E = M.findEntry(Entry);
  if (!E)
    return {ExecKind::Error, 0, "no entry '" + Entry + "' in module"};
  if (!E->Executable)
    return {ExecKind::Unsupported, 0,
            "entry '" + Entry + "' has a window-typed argument"};
  if (Args.size() != E->Args.size())
    return {ExecKind::Error, 0,
            "entry '" + Entry + "' takes " + std::to_string(E->Args.size()) +
                " arguments, got " + std::to_string(Args.size())};

  JitModuleRef J = ensureBuilt(M);
  if (!J->BuildError.empty())
    return {ExecKind::CompileError, 0, J->BuildError};

  void *Sym = J->symbol("exo_rt_" + Entry);
  if (!Sym)
    return {ExecKind::Error, 0, "trampoline for '" + Entry + "' not found"};
  auto Fn = reinterpret_cast<void (*)(void **)>(Sym);

  // Control values need stable addresses for the void** marshalling.
  std::vector<int64_t> Controls(Args.size(), 0);
  std::vector<void *> Ptrs(Args.size(), nullptr);
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I].IsControl) {
      Controls[I] = Args[I].Control;
      Ptrs[I] = &Controls[I];
    } else {
      Ptrs[I] = Args[I].Data;
    }
  }

  std::lock_guard<std::mutex> Lock(J->Mu); // sim state is module-global
  if (J->Gemmini.present())
    J->Gemmini.ClearTraps();
  if (J->Amx.present())
    J->Amx.ClearTraps();

  Fn(Ptrs.data());

  for (const SimBridge *B : {&J->Gemmini, &J->Amx}) {
    if (!B->present() || B->TrapCount() == 0)
      continue;
    int Code = B->LastTrap();
    std::string Name = B->TrapName ? B->TrapName(Code) : "trap";
    return {ExecKind::Trap, Code,
            "sim trap " + std::to_string(Code) + " (" + Name + "), " +
                std::to_string(B->TrapCount()) + " total"};
  }
  return {};
}

JitBackend::CacheStats JitBackend::cacheStats() {
  JitCache &C = JitCache::instance();
  std::lock_guard<std::mutex> Lock(C.Mu);
  return C.Stats;
}

void JitBackend::resetCacheStats() {
  JitCache &C = JitCache::instance();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Stats = {};
}

void JitBackend::clearCache() {
  JitCache &C = JitCache::instance();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.ByHash.clear();
  C.Lru.clear();
}

void JitBackend::setCacheCapacity(size_t N) {
  JitCache &C = JitCache::instance();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Capacity = N ? N : 1;
  C.evictOver();
}

void *JitBackend::moduleSymbol(LoweredModule &M, const std::string &Name) {
  if (M.backendName() != name())
    return nullptr;
  JitModuleRef J = ensureBuilt(M);
  if (!J->BuildError.empty())
    return nullptr;
  std::lock_guard<std::mutex> Lock(J->Mu);
  return J->symbol(Name);
}
