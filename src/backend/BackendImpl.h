//===- backend/BackendImpl.h - Shared backend internals --------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by CSourceBackend and JitBackend: module construction
/// (generateC + entry metadata + content hash), the host-compiler command
/// line (simulator runtime include paths, conditional sim sources), and
/// the generic `void exo_rt_<entry>(void **)` trampoline emission both
/// execution paths marshal through. Internal to src/backend.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_BACKEND_BACKENDIMPL_H
#define EXO_BACKEND_BACKENDIMPL_H

#include "backend/Backend.h"

namespace exo {
namespace backend {
namespace detail {

/// Grants module-construction code access to LoweredModule's private
/// fields without widening the public API.
struct ModuleAccess {
  static std::string &source(LoweredModule &M) { return M.Source; }
  static std::string &hash(LoweredModule &M) { return M.Hash; }
  static std::string &backendName(LoweredModule &M) { return M.BackendName; }
  static std::vector<EntryInfo> &entries(LoweredModule &M) {
    return M.Entries;
  }
  static std::shared_ptr<void> &state(LoweredModule &M) { return M.State; }
  static std::string &workDir(LoweredModule &M) { return M.WorkDir; }
  static bool &keepArtifacts(LoweredModule &M) { return M.KeepArtifacts; }
  static std::string &compiler(LoweredModule &M) { return M.Compiler; }
};

/// FNV-1a 64-bit of \p S, as 16 hex digits.
std::string fnv1aHex(const std::string &S);

/// Builds the LoweredModule skeleton every backend shares: runs CodeGen
/// on \p Procs, records one EntryInfo per root (rejecting duplicate
/// names), hashes the source, and stamps the artifact policy from \p LO.
Expected<LoweredModuleRef> lowerCommon(const std::vector<ir::ProcRef> &Procs,
                                       const LowerOptions &LO,
                                       const std::string &BackendName);

/// Whether the generated source pulls in an accelerator simulator (and
/// its .c must be linked into the artifact).
bool usesGemminiSim(const std::string &Source);
bool usesAmxSim(const std::string &Source);

/// The full host-compiler command: `<cc> <Flags> -o <Out> <Src> -I <sim
/// runtimes> [sim .c files] -lm 2> <ErrPath>`. Sim sources are appended
/// only when \p SourceText references their header.
std::string compileCommand(const std::string &Compiler,
                           const std::string &Flags, const std::string &Src,
                           const std::string &Out,
                           const std::string &SourceText,
                           const std::string &ErrPath);

/// C source for the `void exo_rt_<name>(void **a)` trampolines of every
/// executable entry: a[i] is read as int64_t for controls and cast to the
/// argument's element-pointer type otherwise.
std::string emitTrampolines(const std::vector<EntryInfo> &Entries);

/// Reads a whole file; empty string when unreadable.
std::string readFile(const std::string &Path);

/// First \p N bytes of \p S with a "..." marker when truncated.
std::string truncated(std::string S, size_t N);

} // namespace detail
} // namespace backend
} // namespace exo

#endif // EXO_BACKEND_BACKENDIMPL_H
