//===- backend/MemoryCheck.cpp ---------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "backend/Checks.h"

#include "backend/Memory.h"

#include <set>
#include <unordered_map>

using namespace exo;
using namespace exo::backend;
using namespace exo::ir;

namespace {

/// Tracks the memory of every buffer in scope and rejects direct accesses
/// to non-addressable memories.
class MemoryChecker {
public:
  std::optional<Error> Err;

  void checkProc(const Proc &P) {
    std::unordered_map<Sym, std::string> Mem;
    for (const FnArg &A : P.args())
      if (!A.Ty.isControl())
        Mem[A.Name] = A.Mem;
    checkBlock(P.body(), Mem, P.name());
  }

private:
  void fail(const std::string &Msg) {
    if (!Err)
      Err = makeError(Error::Kind::Backend, Msg);
  }

  bool addressable(const std::string &MemName, const std::string &ProcName) {
    MemoryRef M = MemoryRegistry::instance().find(MemName);
    if (!M) {
      fail("unknown memory '" + MemName + "' in " + ProcName);
      return true;
    }
    return M->isAddressable();
  }

  void checkAccess(Sym Buf, const std::unordered_map<Sym, std::string> &Mem,
                   const std::string &ProcName, const char *What) {
    auto It = Mem.find(Buf);
    if (It == Mem.end())
      return; // control var or unknown — not this check's business
    if (!addressable(It->second, ProcName))
      fail("buffer '" + Buf.name() + "' lives in non-addressable memory '" +
           It->second + "' and cannot be " + What +
           " directly; use a custom instruction (in " + ProcName + ")");
  }

  void checkExpr(const ExprRef &E,
                 const std::unordered_map<Sym, std::string> &Mem,
                 const std::string &ProcName) {
    if (E->kind() == ExprKind::Read && E->type().isData() &&
        !E->args().empty())
      checkAccess(E->name(), Mem, ProcName, "read");
    for (const ExprRef &K : childExprs(E))
      if (K)
        checkExpr(K, Mem, ProcName);
  }

  void checkBlock(const Block &B, std::unordered_map<Sym, std::string> Mem,
                  const std::string &ProcName) {
    for (const StmtRef &S : B) {
      switch (S->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce:
        checkAccess(S->name(), Mem, ProcName,
                    S->kind() == StmtKind::Assign ? "written" : "reduced");
        for (const ExprRef &I : S->indices())
          checkExpr(I, Mem, ProcName);
        checkExpr(S->rhs(), Mem, ProcName);
        break;
      case StmtKind::WriteConfig:
        checkExpr(S->rhs(), Mem, ProcName);
        break;
      case StmtKind::Alloc:
        Mem[S->name()] = S->memName();
        (void)addressable(S->memName(), ProcName); // existence check
        break;
      case StmtKind::WindowStmt:
        // The window inherits its base buffer's memory.
        if (auto It = Mem.find(S->rhs()->name()); It != Mem.end())
          Mem[S->name()] = It->second;
        break;
      case StmtKind::If:
        checkExpr(S->rhs(), Mem, ProcName);
        checkBlock(S->body(), Mem, ProcName);
        checkBlock(S->orelse(), Mem, ProcName);
        break;
      case StmtKind::For:
        checkBlock(S->body(), Mem, ProcName);
        break;
      case StmtKind::Call: {
        // Instructions access their operands through hardware; plain
        // callees are checked recursively with the memae of the actuals.
        if (S->proc()->isInstr())
          break;
        if (!Visited.insert(S->proc().get()).second)
          break;
        checkProcWithArgMems(*S->proc(), S, Mem);
        break;
      }
      case StmtKind::Pass:
        break;
      }
    }
  }

  void checkProcWithArgMems(const Proc &Callee, const StmtRef &CallSite,
                            const std::unordered_map<Sym, std::string> &Mem) {
    std::unordered_map<Sym, std::string> CalleeMem;
    for (size_t I = 0; I < Callee.args().size(); ++I) {
      const FnArg &A = Callee.args()[I];
      if (A.Ty.isControl())
        continue;
      const ExprRef &Actual = CallSite->args()[I];
      std::string M = A.Mem;
      if (Actual->kind() == ExprKind::Read ||
          Actual->kind() == ExprKind::WindowExpr) {
        auto It = Mem.find(Actual->name());
        if (It != Mem.end())
          M = It->second;
      }
      CalleeMem[A.Name] = M;
    }
    checkBlock(Callee.body(), std::move(CalleeMem), Callee.name());
  }

  std::set<const Proc *> Visited;
};

} // namespace

Expected<bool> exo::backend::checkMemories(const ProcRef &P) {
  MemoryChecker C;
  C.checkProc(*P);
  if (C.Err)
    return *C.Err;
  return true;
}
