//===- backend/CSourceBackend.cpp - C-source backend -----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-isolated execution path. lower() is exactly generateC — a
/// module's source() is what exocc-batch writes and what the golden
/// snapshots pin. execute() lazily compiles the source plus a generated
/// harness into one binary per module: the harness reads a
/// length-prefixed binary argument file, dispatches on the entry name,
/// calls the kernel, and writes every data buffer back. Accelerator
/// traps install an exiting handler (status 77, "EXO_TRAP <code>" on
/// stderr) so a trapping case is contained by the child process and
/// reported as ExecKind::Trap, same as the JIT path.
///
//===----------------------------------------------------------------------===//

#include "backend/Backend.h"

#include "backend/BackendImpl.h"
#include "support/Signals.h"
#include "support/TempDir.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include <sys/wait.h>

using namespace exo;
using namespace exo::backend;
using namespace exo::backend::detail;
using namespace exo::ir;

namespace {

/// Exit statuses the generated harness reserves.
enum {
  HarnessTrapExit = 77,    ///< an accelerator sim trapped
  HarnessUsageExit = 86,   ///< bad argv / unreadable files
  HarnessUnknownExit = 87, ///< entry name not in this module
};

/// Compiled state of one csource module.
struct CsModule {
  std::mutex Mu;
  support::TempDir Dir;
  std::string Exe;
  bool Built = false;
  std::string BuildError; ///< non-empty: compilation failed
  std::atomic<uint64_t> NextCall{0};
};

/// Emits the per-entry harness runner: read args (controls as int64,
/// buffers as u64 byte-count + payload), call, write buffers back.
void emitRunner(std::ostream &OS, const EntryInfo &E) {
  OS << "static int exo_case_" << E.Name << "(FILE *in, FILE *out) {\n";
  std::ostringstream Call;
  for (size_t I = 0; I < E.Args.size(); ++I) {
    const FnArg &A = E.Args[I];
    if (I)
      Call << ", ";
    if (A.Ty.isControl()) {
      OS << "  int64_t c" << I << "; if (!exo_rd(in, &c" << I
         << ", 8)) return " << HarnessUsageExit << ";\n";
      Call << "(int_fast32_t)c" << I;
    } else {
      const char *Ty = cTypeOf(A.Ty.elem());
      OS << "  uint64_t n" << I << "; if (!exo_rd(in, &n" << I
         << ", 8)) return " << HarnessUsageExit << ";\n";
      OS << "  " << Ty << " *b" << I << " = (" << Ty << " *)malloc(n" << I
         << " ? n" << I << " : 1);\n";
      OS << "  if (!b" << I << " || !exo_rd(in, b" << I << ", n" << I
         << ")) return " << HarnessUsageExit << ";\n";
      Call << "b" << I;
    }
  }
  OS << "  " << E.Name << "(" << Call.str() << ");\n";
  for (size_t I = 0; I < E.Args.size(); ++I) {
    if (E.Args[I].Ty.isControl())
      continue;
    OS << "  fwrite(&n" << I << ", 8, 1, out); fwrite(b" << I << ", 1, n" << I
       << ", out);\n";
  }
  OS << "  return 0;\n}\n";
}

/// The whole harness appended to the module source before compiling.
/// Kept out of source() so snapshots stay byte-identical.
std::string emitHarness(const LoweredModule &M) {
  std::ostringstream OS;
  OS << "\n/* --- execution harness (backend-internal) --- */\n";
  OS << "#include <stdio.h>\n#include <string.h>\n#include <unistd.h>\n";
  OS << "static int exo_rd(FILE *f, void *p, uint64_t n) {\n"
        "  return fread(p, 1, n, f) == n;\n"
        "}\n";
  bool Gem = usesGemminiSim(M.source());
  bool Amx = usesAmxSim(M.source());
  if (Gem || Amx) {
    OS << "static void exo_trap_exit(int code, const char *what) {\n"
          "  fprintf(stderr, \"EXO_TRAP %d %s\\n\", code, what);\n"
          "  fflush(stderr);\n"
          "  _exit(" << HarnessTrapExit << ");\n"
          "}\n";
  }
  for (const EntryInfo &E : M.entries())
    if (E.Executable)
      emitRunner(OS, E);
  OS << "int main(int argc, char **argv) {\n";
  OS << "  if (argc < 4) return " << HarnessUsageExit << ";\n";
  OS << "  FILE *in = fopen(argv[2], \"rb\");\n";
  OS << "  FILE *out = fopen(argv[3], \"wb\");\n";
  OS << "  if (!in || !out) return " << HarnessUsageExit << ";\n";
  if (Gem)
    OS << "  gemmini_set_trap_handler(exo_trap_exit);\n";
  if (Amx)
    OS << "  amx_set_trap_handler(exo_trap_exit);\n";
  OS << "  int rc = " << HarnessUnknownExit << ";\n";
  for (const EntryInfo &E : M.entries())
    if (E.Executable)
      OS << "  if (!strcmp(argv[1], \"" << E.Name << "\")) rc = exo_case_"
         << E.Name << "(in, out);\n";
  OS << "  if (fclose(out) != 0 && rc == 0) rc = " << HarnessUsageExit
     << ";\n";
  OS << "  fclose(in);\n  return rc;\n}\n";
  return OS.str();
}

/// Compiles the module binary once; later calls reuse or report the
/// recorded failure.
ExecStatus ensureBuilt(LoweredModule &M, CsModule &S) {
  // Child marshalling writes to files today and sockets/pipes tomorrow; a
  // peer dying mid-write must yield an Error status, not SIGPIPE death.
  support::ignoreSigpipe();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Built)
    return S.BuildError.empty()
               ? ExecStatus{}
               : ExecStatus{ExecKind::CompileError, 0, S.BuildError};
  S.Built = true;

  S.Dir = M.workDirHint().empty() ? support::TempDir("csource")
                                  : support::TempDir::adopt(M.workDirHint());
  if (!S.Dir.valid()) {
    S.BuildError = "csource: cannot create scratch directory";
    return {ExecKind::CompileError, 0, S.BuildError};
  }
  if (M.keepArtifactsHint())
    S.Dir.keep();

  std::string Src = S.Dir.file("module_" + M.hash() + ".c");
  S.Exe = S.Dir.file("module_" + M.hash());
  std::string Err = Src + ".cc.err";
  {
    std::ofstream F(Src);
    F << M.source() << emitHarness(M);
  }
  std::string Cmd = compileCommand(M.compilerHint(), "-O1 -std=c11", Src,
                                   S.Exe, M.source(), Err);
  if (std::system(Cmd.c_str()) != 0) {
    S.BuildError = "cc failed on " + S.Dir.keep() + ": " +
                   truncated(readFile(Err), 800);
    return {ExecKind::CompileError, 0, S.BuildError};
  }
  return {};
}

} // namespace

Expected<LoweredModuleRef>
CSourceBackend::lower(const std::vector<ProcRef> &Procs,
                      const LowerOptions &LO) {
  auto M = lowerCommon(Procs, LO, name());
  if (!M)
    return M;
  (*M)->State = std::make_shared<CsModule>();
  return M;
}

ExecStatus CSourceBackend::execute(LoweredModule &M, const std::string &Entry,
                                   BufferSet &Args) {
  if (M.backendName() != name())
    return {ExecKind::Error, 0,
            "module was lowered by '" + M.backendName() + "', not csource"};
  const EntryInfo *E = M.findEntry(Entry);
  if (!E)
    return {ExecKind::Error, 0, "no entry '" + Entry + "' in module"};
  if (!E->Executable)
    return {ExecKind::Unsupported, 0,
            "entry '" + Entry + "' has a window-typed argument"};
  if (Args.size() != E->Args.size())
    return {ExecKind::Error, 0,
            "entry '" + Entry + "' takes " + std::to_string(E->Args.size()) +
                " arguments, got " + std::to_string(Args.size())};

  auto &S = *static_cast<CsModule *>(M.state().get());
  ExecStatus Built = ensureBuilt(M, S);
  if (!Built.ok())
    return Built;

  uint64_t Call = S.NextCall++;
  std::string Base = S.Dir.file("call_" + std::to_string(Call));
  std::string In = Base + ".in", Out = Base + ".out", Err = Base + ".err";
  {
    std::ofstream F(In, std::ios::binary);
    for (size_t I = 0; I < Args.size(); ++I) {
      const RunArg &A = Args[I];
      if (A.IsControl) {
        int64_t V = A.Control;
        F.write(reinterpret_cast<const char *>(&V), 8);
      } else {
        uint64_t N = A.Bytes;
        F.write(reinterpret_cast<const char *>(&N), 8);
        F.write(static_cast<const char *>(A.Data),
                static_cast<std::streamsize>(N));
      }
    }
    if (!F) {
      ExecStatus R{ExecKind::Error, 0, "cannot write argument file " + In};
      return R;
    }
  }

  std::string Cmd = "'" + S.Exe + "' '" + Entry + "' '" + In + "' '" + Out +
                    "' 2> '" + Err + "'";
  int Raw = std::system(Cmd.c_str());
  int Rc = WIFEXITED(Raw) ? WEXITSTATUS(Raw) : -1;

  auto cleanup = [&] {
    if (!S.Dir.kept()) {
      std::remove(In.c_str());
      std::remove(Out.c_str());
      std::remove(Err.c_str());
    }
  };

  if (Rc == HarnessTrapExit) {
    std::string Msg = readFile(Err);
    int Code = 0;
    if (Msg.rfind("EXO_TRAP ", 0) == 0)
      Code = std::atoi(Msg.c_str() + 9);
    cleanup();
    return {ExecKind::Trap, Code, truncated(Msg, 300)};
  }
  if (Rc != 0) {
    std::string Msg = truncated(readFile(Err), 300);
    cleanup();
    if (Rc == HarnessUnknownExit)
      return {ExecKind::Error, 0, "harness has no entry '" + Entry + "'"};
    return {ExecKind::Error, 0,
            "harness exited with status " + std::to_string(Rc) +
                (Msg.empty() ? "" : ": " + Msg)};
  }

  // Read the output buffers back, in argument order.
  std::ifstream F(Out, std::ios::binary);
  for (size_t I = 0; I < Args.size(); ++I) {
    RunArg &A = Args[I];
    if (A.IsControl)
      continue;
    uint64_t N = 0;
    F.read(reinterpret_cast<char *>(&N), 8);
    if (!F || N != A.Bytes) {
      cleanup();
      return {ExecKind::Error, 0,
              "harness output truncated or missized at argument " +
                  std::to_string(I)};
    }
    F.read(static_cast<char *>(A.Data), static_cast<std::streamsize>(N));
    if (!F) {
      cleanup();
      return {ExecKind::Error, 0, "harness output truncated at argument " +
                                      std::to_string(I)};
    }
  }
  cleanup();
  return {};
}
