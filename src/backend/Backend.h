//===- backend/Backend.h - Pluggable execution backends --------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable execution surface of the compiler (DESIGN.md, "Execution
/// backends"). A Backend turns procedures into a LoweredModule and can —
/// when it advertises the capability — execute an entry of that module on
/// caller-supplied buffers:
///
///   lower(procs)              -> LoweredModule   (always available)
///   execute(module, entry, bufs) -> ExecStatus   (CanExecute backends)
///
/// Two implementations ship in-tree:
///
///  * CSourceBackend wraps CodeGen: LoweredModule::source() is exactly
///    the generateC output (golden snapshots and exocc-batch output stay
///    byte-identical), and execution compiles a standalone harness binary
///    and runs each call in a child process — slow, but every crash and
///    accelerator trap is contained by process isolation.
///
///  * JitBackend compiles the same C to a temp .so (one `cc -shared
///    -fPIC` per distinct source, content-hashed module cache, dlclose on
///    eviction) and calls entries in-process through generated
///    trampolines. Accelerator traps are contained per module: each .so
///    carries its own copy of the simulator runtimes, and the backend
///    routes that copy's trap handler through a recording callback for
///    the duration of a call, so a trapping case fails with
///    ExecKind::Trap instead of killing the process.
///
/// The registry (findBackend/allBackends/registerBackend) is how the
/// oracle, the kernel suite, and future autotuner drivers pick their
/// execution strategy by name — they hold no backend-specific code.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_BACKEND_BACKEND_H
#define EXO_BACKEND_BACKEND_H

#include "backend/CodeGen.h"
#include "ir/Proc.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace exo {
namespace backend {

//===----------------------------------------------------------------------===//
// Execution values
//===----------------------------------------------------------------------===//

/// One runtime argument. Control arguments carry their value; data
/// arguments point at a caller-owned buffer of the argument's C element
/// type (row-major for tensors, a single element for data scalars). The
/// backend never interprets element types — it marshals Bytes opaquely —
/// so the caller is responsible for sizing Data as elemSize * numElems.
struct RunArg {
  bool IsControl = false;
  int64_t Control = 0;
  void *Data = nullptr;
  size_t Bytes = 0;

  static RunArg control(int64_t V) { return {true, V, nullptr, 0}; }
  static RunArg buffer(void *D, size_t B) { return {false, 0, D, B}; }
};

/// The full argument list of one call, in procedure argument order.
using BufferSet = std::vector<RunArg>;

enum class ExecKind {
  Ok,           ///< the call ran; output buffers hold the results
  Trap,         ///< an accelerator sim raised a structured trap
  Unsupported,  ///< this entry (or backend) cannot execute
  CompileError, ///< the module's host compilation failed
  Error,        ///< the call crashed or the harness misbehaved
};

struct ExecStatus {
  ExecKind Kind = ExecKind::Ok;
  int TrapCode = 0;   ///< simulator trap code, when Kind == Trap
  std::string Detail; ///< human-readable diagnosis

  bool ok() const { return Kind == ExecKind::Ok; }
};

const char *execKindName(ExecKind K);

namespace detail {
struct ModuleAccess; // backend-internal construction helper
}

//===----------------------------------------------------------------------===//
// Lowered modules
//===----------------------------------------------------------------------===//

/// What lower() knows about one callable entry of a module.
struct EntryInfo {
  std::string Name;             ///< C symbol, == the proc name
  std::vector<ir::FnArg> Args;  ///< the proc's formal arguments
  /// False when the signature cannot be marshalled generically (a
  /// window-typed top-level argument); execute() reports Unsupported.
  bool Executable = true;
};

/// The result of lowering: the generated C source (byte-identical across
/// backends — the JIT appends its trampolines only into the compiled
/// artifact, never into source()), per-entry metadata, and the owning
/// backend's compiled state. Modules are handed out as shared_ptrs; the
/// compiled artifact (child-process binary or dlopened .so) lives exactly
/// as long as the last reference to it — a cache eviction while a module
/// is still in use defers the dlclose until that module is destroyed.
class LoweredModule {
public:
  const std::string &source() const { return Source; }
  /// FNV-1a of source(), hex — the JIT cache key.
  const std::string &hash() const { return Hash; }
  const std::string &backendName() const { return BackendName; }
  const std::vector<EntryInfo> &entries() const { return Entries; }
  const EntryInfo *findEntry(const std::string &Name) const;

  /// Backend-private compiled state (lazily populated on first execute);
  /// opaque to everyone but the owning backend.
  const std::shared_ptr<void> &state() const { return State; }
  /// Artifact policy captured from LowerOptions at lower() time.
  const std::string &workDirHint() const { return WorkDir; }
  bool keepArtifactsHint() const { return KeepArtifacts; }
  const std::string &compilerHint() const { return Compiler; }

private:
  friend class CSourceBackend;
  friend class JitBackend;
  friend struct detail::ModuleAccess;
  std::string Source;
  std::string Hash;
  std::string BackendName;
  std::vector<EntryInfo> Entries;
  std::shared_ptr<void> State;
  std::string WorkDir;
  bool KeepArtifacts = false;
  std::string Compiler;
};

using LoweredModuleRef = std::shared_ptr<LoweredModule>;

//===----------------------------------------------------------------------===//
// The Backend interface
//===----------------------------------------------------------------------===//

/// Capability flags, advertised by caps().
enum BackendCaps : unsigned {
  CapCanExecute = 1u << 0,      ///< execute() is implemented
  CapInProcess = 1u << 1,       ///< calls run in this process (no spawn)
  CapTrapContainment = 1u << 2, ///< a sim trap fails the case, not the run
};

struct LowerOptions {
  CodeGenOptions CG;
  /// Scratch directory for compiled artifacts; empty means a fresh
  /// support::TempDir per module, removed with the module (kept on
  /// compile failure so the evidence survives).
  std::string WorkDir;
  bool KeepArtifacts = false;
  /// Host C compiler; empty means "cc".
  std::string Compiler;
  /// Extra bytes folded into the module content hash ahead of the source
  /// (tenant id, option fingerprint, ...). The hash keys the JIT's
  /// process-wide module cache, so two tenants lowering byte-identical C
  /// under different salts get distinct cache entries — an unloaded or
  /// breaker-quarantined module can never be resurrected for a different
  /// tenant by content-hash collision. Empty (the default) preserves the
  /// plain source hash. The compiler choice is folded in alongside for
  /// the same reason: same C under a different host compiler is a
  /// different artifact.
  std::string CacheSalt;
};

class Backend {
public:
  virtual ~Backend();

  virtual std::string name() const = 0;
  virtual unsigned caps() const = 0;

  /// Lowers \p Procs (and their transitive callees) into one module.
  /// Entry names must be unique — callers replaying clones of one
  /// procedure rename them first (C allows one definition per name).
  virtual Expected<LoweredModuleRef>
  lower(const std::vector<ir::ProcRef> &Procs, const LowerOptions &LO = {}) = 0;

  /// Convenience single-proc form.
  Expected<LoweredModuleRef> lower(const ir::ProcRef &P,
                                   const LowerOptions &LO = {});

  /// Runs \p Entry of \p M on \p Args (outputs are written back into the
  /// caller's buffers). Never throws; all failure modes — including
  /// lazy compilation of the module — are reported in the status.
  virtual ExecStatus execute(LoweredModule &M, const std::string &Entry,
                             BufferSet &Args) = 0;
};

//===----------------------------------------------------------------------===//
// Implementations
//===----------------------------------------------------------------------===//

class CSourceBackend final : public Backend {
public:
  using Backend::lower; // keep the single-proc convenience visible

  std::string name() const override { return "csource"; }
  unsigned caps() const override {
    return CapCanExecute | CapTrapContainment;
  }
  Expected<LoweredModuleRef> lower(const std::vector<ir::ProcRef> &Procs,
                                   const LowerOptions &LO = {}) override;
  ExecStatus execute(LoweredModule &M, const std::string &Entry,
                     BufferSet &Args) override;
};

class JitBackend final : public Backend {
public:
  struct CacheStats {
    uint64_t Compiles = 0;  ///< modules actually compiled (cache misses)
    uint64_t Hits = 0;      ///< modules served from the content cache
    uint64_t Evictions = 0; ///< modules LRU-evicted (dlclosed when idle)
  };

  using Backend::lower; // keep the single-proc convenience visible

  std::string name() const override { return "jit"; }
  unsigned caps() const override {
    return CapCanExecute | CapInProcess | CapTrapContainment;
  }
  Expected<LoweredModuleRef> lower(const std::vector<ir::ProcRef> &Procs,
                                   const LowerOptions &LO = {}) override;
  ExecStatus execute(LoweredModule &M, const std::string &Entry,
                     BufferSet &Args) override;

  /// Global (process-wide) cache counters; resetCacheStats zeroes them
  /// for per-phase measurements.
  static CacheStats cacheStats();
  static void resetCacheStats();
  /// Maximum distinct compiled modules held by the cache (LRU beyond it).
  static void setCacheCapacity(size_t N);
  /// Drops every cached module (modules still referenced by a live
  /// LoweredModule survive until released). Used for cold-cache
  /// measurements; not counted as evictions.
  static void clearCache();

  /// dlsym into a module's .so, compiling it first if needed. Returns
  /// null when the symbol is absent or the module is not a JIT module.
  /// Used by tests and drivers that poke simulator state (cycle counters,
  /// fault-injection hooks) inside a specific module instance.
  void *moduleSymbol(LoweredModule &M, const std::string &Name);
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// The built-in backends (created on first use, never destroyed).
CSourceBackend &csourceBackend();
JitBackend &jitBackend();

/// Looks a backend up by name(); null when unknown.
Backend *findBackend(const std::string &Name);

/// Every registered backend, built-ins first, in registration order.
std::vector<Backend *> allBackends();

/// Registers an out-of-tree backend (not owned; must outlive the
/// process). Replaces any previous backend of the same name.
void registerBackend(Backend *B);

} // namespace backend
} // namespace exo

#endif // EXO_BACKEND_BACKEND_H
