//===- backend/Checks.h - Backend checks (§3.1.1) --------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two checks performed immediately prior to code generation:
///
///  * MemoryCheck — buffers in non-addressable memories (scratchpads) may
///    only be touched via @instr procedures, never by plain reads,
///    writes, or reductions (§3.2.1, "backend checks").
///
///  * PrecisionCheck — all data expressions combined by an operator must
///    have consistent precision; casts are only inserted at write/reduce
///    boundaries (§3.1.1). The abstract type R is resolved to f32.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_BACKEND_CHECKS_H
#define EXO_BACKEND_CHECKS_H

#include "ir/Proc.h"
#include "support/Error.h"

namespace exo {
namespace backend {

/// Verifies memory-annotation discipline for \p P (looking through calls
/// to non-instr procedures). Returns true on success.
Expected<bool> checkMemories(const ir::ProcRef &P);

/// Verifies precision consistency for \p P. Returns true on success.
Expected<bool> checkPrecisions(const ir::ProcRef &P);

} // namespace backend
} // namespace exo

#endif // EXO_BACKEND_CHECKS_H
