//===- backend/PrecisionCheck.cpp ------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "backend/Checks.h"

#include "ir/Printer.h"

#include <set>
#include <unordered_map>

using namespace exo;
using namespace exo::backend;
using namespace exo::ir;

namespace {

/// Computes the precision of a data expression, requiring operands of
/// data operators to agree (modulo the adaptable abstract type R and
/// literals, which take the precision of their context).
class PrecisionChecker {
public:
  std::optional<Error> Err;

  void checkProc(const Proc &P) {
    if (!Visited.insert(&P).second)
      return;
    std::unordered_map<Sym, ScalarKind> Prec;
    for (const FnArg &A : P.args())
      if (A.Ty.isData())
        Prec[A.Name] = A.Ty.elem();
    checkBlock(P.body(), Prec, P.name());
  }

private:
  void fail(const std::string &Msg) {
    if (!Err)
      Err = makeError(Error::Kind::Backend, Msg);
  }

  /// R and literals adapt; two concrete kinds must be equal.
  std::optional<ScalarKind> join(std::optional<ScalarKind> A,
                                 std::optional<ScalarKind> B) {
    if (!A || *A == ScalarKind::R)
      return B;
    if (!B || *B == ScalarKind::R)
      return A;
    if (*A != *B)
      return std::nullopt;
    return A;
  }

  /// Returns the inferred precision (nullopt on conflict — Err is set).
  std::optional<ScalarKind>
  exprPrec(const ExprRef &E, const std::unordered_map<Sym, ScalarKind> &Prec,
           const std::string &ProcName) {
    if (E->type().isControl())
      return ScalarKind::R; // adapts in data context (e.g. casts of ints)
    switch (E->kind()) {
    case ExprKind::Const:
      return ScalarKind::R; // literals adapt
    case ExprKind::Read:
    case ExprKind::WindowExpr: {
      auto It = Prec.find(E->name());
      return It == Prec.end() ? ScalarKind::R : It->second;
    }
    case ExprKind::USub:
      return exprPrec(E->args()[0], Prec, ProcName);
    case ExprKind::BinOp:
    case ExprKind::BuiltIn: {
      std::optional<ScalarKind> Out = ScalarKind::R;
      for (const ExprRef &A : E->args()) {
        auto P = exprPrec(A, Prec, ProcName);
        if (Err)
          return std::nullopt;
        Out = join(Out, P);
        if (!Out) {
          fail("mixed-precision data expression '" + printExpr(E) +
               "' in " + ProcName +
               " (insert a staging buffer or set_precision)");
          return std::nullopt;
        }
      }
      return Out;
    }
    default:
      return ScalarKind::R;
    }
  }

  void checkBlock(const Block &B, std::unordered_map<Sym, ScalarKind> Prec,
                  const std::string &ProcName) {
    for (const StmtRef &S : B) {
      if (Err)
        return;
      switch (S->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce:
        // The rhs must be internally consistent; a cast to the
        // destination precision is inserted at the write (§3.1.1), so
        // rhs/dst disagreement is fine.
        (void)exprPrec(S->rhs(), Prec, ProcName);
        break;
      case StmtKind::Alloc:
        if (S->allocType().isData())
          Prec[S->name()] = S->allocType().elem();
        break;
      case StmtKind::WindowStmt:
        if (auto It = Prec.find(S->rhs()->name()); It != Prec.end())
          Prec[S->name()] = It->second;
        break;
      case StmtKind::If:
        checkBlock(S->body(), Prec, ProcName);
        checkBlock(S->orelse(), Prec, ProcName);
        break;
      case StmtKind::For:
        checkBlock(S->body(), Prec, ProcName);
        break;
      case StmtKind::Call:
        if (!S->proc()->isInstr())
          checkProc(*S->proc());
        break;
      default:
        break;
      }
    }
  }

  std::set<const Proc *> Visited;
};

} // namespace

Expected<bool> exo::backend::checkPrecisions(const ProcRef &P) {
  PrecisionChecker C;
  C.checkProc(*P);
  if (C.Err)
    return *C.Err;
  return true;
}
