//===- backend/Backend.cpp - Pluggable execution backends ------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "backend/Backend.h"

#include "backend/BackendImpl.h"

#include <fstream>
#include <mutex>
#include <sstream>

using namespace exo;
using namespace exo::backend;
using namespace exo::ir;

#ifndef EXO_SOURCE_DIR
#define EXO_SOURCE_DIR "."
#endif

const char *exo::backend::execKindName(ExecKind K) {
  switch (K) {
  case ExecKind::Ok:
    return "ok";
  case ExecKind::Trap:
    return "trap";
  case ExecKind::Unsupported:
    return "unsupported";
  case ExecKind::CompileError:
    return "compile-error";
  case ExecKind::Error:
    return "error";
  }
  return "unknown";
}

const EntryInfo *LoweredModule::findEntry(const std::string &Name) const {
  for (const EntryInfo &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

Backend::~Backend() = default;

Expected<LoweredModuleRef> Backend::lower(const ProcRef &P,
                                          const LowerOptions &LO) {
  return lower(std::vector<ProcRef>{P}, LO);
}

//===----------------------------------------------------------------------===//
// Shared internals
//===----------------------------------------------------------------------===//

std::string detail::fnv1aHex(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)H);
  return Buf;
}

bool detail::usesGemminiSim(const std::string &Source) {
  return Source.find("gemmini_sim.h") != std::string::npos;
}

bool detail::usesAmxSim(const std::string &Source) {
  return Source.find("amx_sim.h") != std::string::npos;
}

std::string detail::compileCommand(const std::string &Compiler,
                                   const std::string &Flags,
                                   const std::string &Src,
                                   const std::string &Out,
                                   const std::string &SourceText,
                                   const std::string &ErrPath) {
  std::string Cmd = (Compiler.empty() ? "cc" : Compiler) + " " + Flags +
                    " -o " + Out + " " + Src +
                    " -I " EXO_SOURCE_DIR "/src/hwlibs/avx512/runtime"
                    " -I " EXO_SOURCE_DIR "/src/hwlibs/gemmini/runtime"
                    " -I " EXO_SOURCE_DIR "/src/hwlibs/amx/runtime";
  if (usesGemminiSim(SourceText))
    Cmd += " " EXO_SOURCE_DIR "/src/hwlibs/gemmini/runtime/gemmini_sim.c";
  if (usesAmxSim(SourceText))
    Cmd += " " EXO_SOURCE_DIR "/src/hwlibs/amx/runtime/amx_sim.c";
  Cmd += " -lm 2> " + ErrPath;
  return Cmd;
}

std::string detail::readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string detail::truncated(std::string S, size_t N) {
  if (S.size() > N)
    S = S.substr(0, N) + "...";
  return S;
}

Expected<LoweredModuleRef>
detail::lowerCommon(const std::vector<ProcRef> &Procs, const LowerOptions &LO,
                    const std::string &BackendName) {
  auto C = generateC(Procs, LO.CG);
  if (!C)
    return C.error();

  auto M = std::make_shared<LoweredModule>();
  ModuleAccess::source(*M) = std::move(*C);
  // Tenant/compiler salts partition the content-addressed module caches;
  // the unsalted form is kept bit-stable so existing hashes (and the
  // csource-vs-jit equal-hash property under equal options) don't move.
  if (LO.CacheSalt.empty() && LO.Compiler.empty())
    ModuleAccess::hash(*M) = fnv1aHex(M->source());
  else
    ModuleAccess::hash(*M) = fnv1aHex(LO.CacheSalt + '\x1f' + LO.Compiler +
                                      '\x1f' + M->source());
  ModuleAccess::backendName(*M) = BackendName;
  ModuleAccess::workDir(*M) = LO.WorkDir;
  ModuleAccess::keepArtifacts(*M) = LO.KeepArtifacts;
  ModuleAccess::compiler(*M) = LO.Compiler;
  for (const ProcRef &P : Procs) {
    if (M->findEntry(P->name()))
      return makeError(Error::Kind::Internal,
                       "backend: duplicate entry name '" + P->name() +
                           "' in one module (rename clones before lowering)");
    EntryInfo E;
    E.Name = P->name();
    E.Args = P->args();
    for (const FnArg &A : P->args())
      if (A.Ty.isWindow())
        E.Executable = false; // no generic ABI for struct-by-value windows
    ModuleAccess::entries(*M).push_back(std::move(E));
  }
  return M;
}

std::string detail::emitTrampolines(const std::vector<EntryInfo> &Entries) {
  std::ostringstream OS;
  OS << "\n/* --- generic execution trampolines (backend-internal; not part"
        " of the\n   module's source()) --- */\n";
  for (const EntryInfo &E : Entries) {
    if (!E.Executable)
      continue;
    OS << "void exo_rt_" << E.Name << "(void **a);\n";
    OS << "void exo_rt_" << E.Name << "(void **a) {\n  " << E.Name << "(";
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        OS << ", ";
      const FnArg &A = E.Args[I];
      if (A.Ty.isControl())
        OS << "(int_fast32_t)*(const int64_t *)a[" << I << "]";
      else
        OS << "(" << cTypeOf(A.Ty.elem()) << " *)a[" << I << "]";
    }
    OS << ");\n}\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

struct Registry {
  std::mutex Mu;
  std::vector<Backend *> Backends;

  static Registry &instance() {
    static Registry *R = new Registry(); // leaked: backends live forever
    return *R;
  }
};

} // namespace

CSourceBackend &exo::backend::csourceBackend() {
  static CSourceBackend *B = [] {
    auto *P = new CSourceBackend();
    registerBackend(P);
    return P;
  }();
  return *B;
}

JitBackend &exo::backend::jitBackend() {
  static JitBackend *B = [] {
    auto *P = new JitBackend();
    registerBackend(P);
    return P;
  }();
  return *B;
}

static void ensureBuiltins() {
  csourceBackend();
  jitBackend();
}

void exo::backend::registerBackend(Backend *B) {
  Registry &R = Registry::instance();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (Backend *&Existing : R.Backends)
    if (Existing->name() == B->name()) {
      Existing = B;
      return;
    }
  R.Backends.push_back(B);
}

Backend *exo::backend::findBackend(const std::string &Name) {
  ensureBuiltins();
  Registry &R = Registry::instance();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (Backend *B : R.Backends)
    if (B->name() == Name)
      return B;
  return nullptr;
}

std::vector<Backend *> exo::backend::allBackends() {
  ensureBuiltins();
  Registry &R = Registry::instance();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Backends;
}
