//===- frontend/Parser.h - Exo surface-syntax parser -----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the Exo surface syntax into LoopIR. A module is a sequence of
/// @config class declarations and @proc / @instr("...") procedure
/// definitions. The ParseEnv provides name resolution for procedures and
/// configuration structs defined elsewhere (e.g. a hardware library), and
/// accumulates the definitions of parsed modules.
///
/// Example accepted input (the paper's §2 kernel):
///
///   @proc
///   def gemm(n: size, A: R[n, n], B: R[n, n], C: R[n, n]):
///       assert n > 0
///       for i in seq(0, n):
///           for j in seq(0, n):
///               for k in seq(0, n):
///                   C[i, j] += A[i, k] * B[k, j]
///
//===----------------------------------------------------------------------===//

#ifndef EXO_FRONTEND_PARSER_H
#define EXO_FRONTEND_PARSER_H

#include "ir/Config.h"
#include "ir/Proc.h"
#include "support/Error.h"

#include <map>

namespace exo {
namespace frontend {

/// Name-resolution context shared across parses. Procedures and configs
/// registered here are visible to subsequently parsed modules.
class ParseEnv {
public:
  void addProc(ir::ProcRef P) { Procs[P->name()] = std::move(P); }
  void addConfig(ir::ConfigRef C) { Configs[C->name().name()] = std::move(C); }

  ir::ProcRef findProc(const std::string &Name) const {
    auto It = Procs.find(Name);
    return It == Procs.end() ? nullptr : It->second;
  }
  ir::ConfigRef findConfig(const std::string &Name) const {
    auto It = Configs.find(Name);
    return It == Configs.end() ? nullptr : It->second;
  }

  const std::map<std::string, ir::ProcRef> &procs() const { return Procs; }
  const std::map<std::string, ir::ConfigRef> &configs() const {
    return Configs;
  }

private:
  std::map<std::string, ir::ProcRef> Procs;
  std::map<std::string, ir::ConfigRef> Configs;
};

/// All definitions of one parsed module, in order.
struct ParsedModule {
  std::vector<ir::ProcRef> Procs;
  std::vector<ir::ConfigRef> Configs;
};

/// Parses a module; definitions are also registered into \p Env.
Expected<ParsedModule> parseModule(const std::string &Source, ParseEnv &Env);

/// Parses a module expected to contain exactly one procedure and returns
/// it. Convenience for tests and examples.
Expected<ir::ProcRef> parseProc(const std::string &Source, ParseEnv &Env);

/// Like parseProc with a throwaway environment.
Expected<ir::ProcRef> parseProc(const std::string &Source);

/// A name visible at some program point (used by scheduling operators
/// that parse user-supplied index/window expressions, e.g. stage_mem).
struct ScopedName {
  ir::Sym S;
  ir::Type Ty;
};

/// Parses a single expression with the given name scope.
Expected<ir::ExprRef>
parseExprInScope(const std::string &Source,
                 const std::map<std::string, ScopedName> &Scope,
                 const ParseEnv &Env);

} // namespace frontend
} // namespace exo

#endif // EXO_FRONTEND_PARSER_H
