//===- frontend/Lexer.cpp --------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <optional>
#include <unordered_map>

using namespace exo;
using namespace exo::frontend;

const char *exo::frontend::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Name: return "identifier";
  case TokKind::IntLit: return "integer literal";
  case TokKind::FloatLit: return "float literal";
  case TokKind::StringLit: return "string literal";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Colon: return "':'";
  case TokKind::Comma: return "','";
  case TokKind::Dot: return "'.'";
  case TokKind::At: return "'@'";
  case TokKind::Assign: return "'='";
  case TokKind::PlusAssign: return "'+='";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Star: return "'*'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::EqEq: return "'=='";
  case TokKind::NotEq: return "'!='";
  case TokKind::Lt: return "'<'";
  case TokKind::Gt: return "'>'";
  case TokKind::Le: return "'<='";
  case TokKind::Ge: return "'>='";
  case TokKind::KwDef: return "'def'";
  case TokKind::KwFor: return "'for'";
  case TokKind::KwIn: return "'in'";
  case TokKind::KwSeq: return "'seq'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwAssert: return "'assert'";
  case TokKind::KwPass: return "'pass'";
  case TokKind::KwAnd: return "'and'";
  case TokKind::KwOr: return "'or'";
  case TokKind::KwNot: return "'not'";
  case TokKind::KwTrue: return "'True'";
  case TokKind::KwFalse: return "'False'";
  case TokKind::KwClass: return "'class'";
  case TokKind::KwStride: return "'stride'";
  case TokKind::Newline: return "newline";
  case TokKind::Indent: return "indent";
  case TokKind::Dedent: return "dedent";
  case TokKind::EndOfFile: return "end of file";
  }
  return "?";
}

static const std::unordered_map<std::string, TokKind> &keywords() {
  static const std::unordered_map<std::string, TokKind> KW = {
      {"def", TokKind::KwDef},       {"for", TokKind::KwFor},
      {"in", TokKind::KwIn},         {"seq", TokKind::KwSeq},
      {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
      {"assert", TokKind::KwAssert}, {"pass", TokKind::KwPass},
      {"and", TokKind::KwAnd},       {"or", TokKind::KwOr},
      {"not", TokKind::KwNot},       {"True", TokKind::KwTrue},
      {"False", TokKind::KwFalse},   {"class", TokKind::KwClass},
      {"stride", TokKind::KwStride},
  };
  return KW;
}

namespace {

class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  Expected<std::vector<Token>> run() {
    IndentStack.push_back(0);
    while (Pos < Src.size()) {
      if (AtLineStart) {
        if (!handleIndentation())
          return *Pending;
        continue;
      }
      char C = Src[Pos];
      if (C == '\n') {
        // Suppress Newline inside brackets (implicit line joining).
        if (BracketDepth == 0) {
          emit(TokKind::Newline);
          AtLineStart = true;
        }
        advance();
        continue;
      }
      if (C == ' ' || C == '\t' || C == '\r') {
        advance();
        continue;
      }
      if (C == '#') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          advance();
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        lexName();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C))) {
        lexNumber();
        continue;
      }
      if (C == '"') {
        if (!lexString())
          return *Pending;
        continue;
      }
      if (!lexOperator())
        return *Pending;
    }
    if (!Tokens.empty() && Tokens.back().Kind != TokKind::Newline)
      emit(TokKind::Newline);
    while (IndentStack.size() > 1) {
      IndentStack.pop_back();
      emit(TokKind::Dedent);
    }
    emit(TokKind::EndOfFile);
    return std::move(Tokens);
  }

private:
  void advance() {
    if (Src[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void emit(TokKind K, std::string Text = "") {
    Tokens.push_back({K, std::move(Text), 0, 0.0, Line, Col});
  }

  bool fail(const std::string &Msg) {
    Pending = makeError(Error::Kind::Parse,
                        "line " + std::to_string(Line) + ": " + Msg);
    return false;
  }

  /// Processes leading whitespace of a logical line; emits Indent/Dedent.
  /// Returns false on error.
  bool handleIndentation() {
    unsigned Width = 0;
    size_t Scan = Pos;
    while (Scan < Src.size()) {
      char C = Src[Scan];
      if (C == ' ') {
        ++Width;
        ++Scan;
      } else if (C == '\t') {
        return fail("tab in indentation");
      } else {
        break;
      }
    }
    // Blank or comment-only line: swallow it entirely.
    if (Scan >= Src.size() || Src[Scan] == '\n' || Src[Scan] == '#' ||
        Src[Scan] == '\r') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        advance();
      if (Pos < Src.size())
        advance(); // the newline itself
      return true;
    }
    while (Pos < Scan)
      advance();
    AtLineStart = false;
    if (Width > IndentStack.back()) {
      IndentStack.push_back(Width);
      emit(TokKind::Indent);
      return true;
    }
    while (Width < IndentStack.back()) {
      IndentStack.pop_back();
      emit(TokKind::Dedent);
    }
    if (Width != IndentStack.back())
      return fail("inconsistent dedent");
    return true;
  }

  void lexName() {
    unsigned StartCol = Col;
    std::string Text;
    while (Pos < Src.size() &&
           (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
            Src[Pos] == '_')) {
      Text += Src[Pos];
      advance();
    }
    auto It = keywords().find(Text);
    TokKind K = It == keywords().end() ? TokKind::Name : It->second;
    Tokens.push_back({K, Text, 0, 0.0, Line, StartCol});
  }

  void lexNumber() {
    unsigned StartCol = Col;
    std::string Text;
    bool IsFloat = false;
    while (Pos < Src.size()) {
      char C = Src[Pos];
      bool ExpSign = (C == '+' || C == '-') && !Text.empty() &&
                     (Text.back() == 'e' || Text.back() == 'E');
      if (!(std::isdigit(static_cast<unsigned char>(C)) || C == '.' ||
            C == 'e' || C == 'E' || ExpSign))
        break;
      if (C == '.' || C == 'e' || C == 'E')
        IsFloat = true;
      Text += C;
      advance();
    }
    Token T{IsFloat ? TokKind::FloatLit : TokKind::IntLit, Text, 0, 0.0, Line,
            StartCol};
    if (IsFloat)
      T.FloatValue = std::stod(Text);
    else
      T.IntValue = std::stoll(Text);
    Tokens.push_back(std::move(T));
  }

  bool lexString() {
    unsigned StartCol = Col;
    advance(); // opening quote
    std::string Text;
    while (Pos < Src.size() && Src[Pos] != '"') {
      if (Src[Pos] == '\n')
        return fail("unterminated string literal");
      if (Src[Pos] == '\\' && Pos + 1 < Src.size()) {
        advance();
        switch (Src[Pos]) {
        case 'n':
          Text += '\n';
          break;
        case 't':
          Text += '\t';
          break;
        case '"':
          Text += '"';
          break;
        case '\\':
          Text += '\\';
          break;
        default:
          Text += Src[Pos];
        }
        advance();
        continue;
      }
      Text += Src[Pos];
      advance();
    }
    if (Pos >= Src.size())
      return fail("unterminated string literal");
    advance(); // closing quote
    Tokens.push_back({TokKind::StringLit, Text, 0, 0.0, Line, StartCol});
    return true;
  }

  bool lexOperator() {
    char C = Src[Pos];
    char Next = Pos + 1 < Src.size() ? Src[Pos + 1] : '\0';
    auto two = [&](TokKind K) {
      advance();
      advance();
      emit(K);
      return true;
    };
    auto one = [&](TokKind K) {
      advance();
      emit(K);
      return true;
    };
    switch (C) {
    case '(':
      ++BracketDepth;
      return one(TokKind::LParen);
    case ')':
      if (BracketDepth)
        --BracketDepth;
      return one(TokKind::RParen);
    case '[':
      ++BracketDepth;
      return one(TokKind::LBracket);
    case ']':
      if (BracketDepth)
        --BracketDepth;
      return one(TokKind::RBracket);
    case ':':
      return one(TokKind::Colon);
    case ',':
      return one(TokKind::Comma);
    case '.':
      return one(TokKind::Dot);
    case '@':
      return one(TokKind::At);
    case '+':
      return Next == '=' ? two(TokKind::PlusAssign) : one(TokKind::Plus);
    case '-':
      return one(TokKind::Minus);
    case '*':
      return one(TokKind::Star);
    case '/':
      return one(TokKind::Slash);
    case '%':
      return one(TokKind::Percent);
    case '=':
      return Next == '=' ? two(TokKind::EqEq) : one(TokKind::Assign);
    case '!':
      if (Next == '=')
        return two(TokKind::NotEq);
      return fail("unexpected '!'");
    case '<':
      return Next == '=' ? two(TokKind::Le) : one(TokKind::Lt);
    case '>':
      return Next == '=' ? two(TokKind::Ge) : one(TokKind::Gt);
    default:
      return fail(std::string("unexpected character '") + C + "'");
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
  bool AtLineStart = true;
  unsigned BracketDepth = 0;
  std::vector<unsigned> IndentStack;
  std::vector<Token> Tokens;
  std::optional<Error> Pending;
};

} // namespace

Expected<std::vector<Token>> exo::frontend::tokenize(const std::string &Src) {
  return Lexer(Src).run();
}
