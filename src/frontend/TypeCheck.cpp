//===- frontend/TypeCheck.cpp ----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/TypeCheck.h"

#include "ir/Printer.h"

#include <set>
#include <unordered_map>

using namespace exo;
using namespace exo::frontend;
using namespace exo::ir;

namespace {

class TypeChecker {
public:
  std::optional<Error> Err;

  void checkProc(const Proc &P) {
    if (!Visited.insert(&P).second)
      return;
    std::unordered_map<Sym, Type> Env;
    for (const FnArg &A : P.args()) {
      if (A.Ty.isTensor() && !A.Ty.isData())
        fail(P, "tensor argument of control type");
      Env[A.Name] = A.Ty;
    }
    for (const ExprRef &Pred : P.preds()) {
      checkExpr(Pred, Env, P);
      if (!isBool(Pred))
        fail(P, "assertion is not a boolean: " + printExpr(Pred));
    }
    checkBlock(P.body(), Env, P);
  }

private:
  void fail(const Proc &P, const std::string &Msg) {
    if (!Err)
      Err = makeError(Error::Kind::Type, P.name() + ": " + Msg);
  }

  static bool isBool(const ExprRef &E) {
    return E->type().isScalar() && E->type().elem() == ScalarKind::Bool;
  }
  static bool isControlInt(const ExprRef &E) {
    return E->type().isControl() && E->type().elem() != ScalarKind::Bool;
  }

  /// Quasi-affine restriction: *, /, % on control values need a literal
  /// on the required side (§3.1 item 1).
  void checkQuasiAffine(const ExprRef &E, const Proc &P) {
    BinOpKind Op = E->binOp();
    const ExprRef &L = E->args()[0], &R = E->args()[1];
    bool LConst = L->kind() == ExprKind::Const;
    bool RConst = R->kind() == ExprKind::Const;
    if (Op == BinOpKind::Mul && !LConst && !RConst)
      fail(P, "non-quasi-affine control multiplication: " + printExpr(E));
    if ((Op == BinOpKind::Div || Op == BinOpKind::Mod)) {
      if (!RConst)
        fail(P, "control division/modulo needs a literal divisor: " +
                    printExpr(E));
      else if (R->intValue() <= 0)
        fail(P, "control division/modulo needs a positive divisor: " +
                    printExpr(E));
    }
  }

  void checkExpr(const ExprRef &E, std::unordered_map<Sym, Type> &Env,
                 const Proc &P) {
    switch (E->kind()) {
    case ExprKind::Const:
      return;
    case ExprKind::Read: {
      auto It = Env.find(E->name());
      if (It == Env.end()) {
        fail(P, "use of unbound variable '" + E->name().name() + "'");
        return;
      }
      const Type &T = It->second;
      if (!E->args().empty()) {
        if (!T.isTensor())
          fail(P, "indexing non-tensor '" + E->name().name() + "'");
        else if (E->args().size() != T.rank())
          fail(P, "rank mismatch indexing '" + E->name().name() + "'");
        for (const ExprRef &I : E->args()) {
          checkExpr(I, Env, P);
          if (!isControlInt(I))
            fail(P, "non-control index expression: " + printExpr(I));
        }
      }
      return;
    }
    case ExprKind::USub:
      checkExpr(E->args()[0], Env, P);
      return;
    case ExprKind::BinOp: {
      checkExpr(E->args()[0], Env, P);
      checkExpr(E->args()[1], Env, P);
      const ExprRef &L = E->args()[0], &R = E->args()[1];
      BinOpKind Op = E->binOp();
      if (Op == BinOpKind::And || Op == BinOpKind::Or) {
        if (!isBool(L) || !isBool(R))
          fail(P, "boolean operator on non-booleans: " + printExpr(E));
        return;
      }
      // Control values never mix with data values in one operator.
      if (L->type().isData() != R->type().isData())
        fail(P, "mixing control and data values: " + printExpr(E));
      if (!L->type().isData() && !isCompareOp(Op))
        checkQuasiAffine(E, P);
      return;
    }
    case ExprKind::BuiltIn:
      for (const ExprRef &A : E->args())
        checkExpr(A, Env, P);
      return;
    case ExprKind::WindowExpr: {
      auto It = Env.find(E->name());
      if (It == Env.end() || !It->second.isTensor()) {
        fail(P, "windowing a non-tensor");
        return;
      }
      if (E->winCoords().size() != It->second.rank())
        fail(P, "window rank mismatch on '" + E->name().name() + "'");
      for (const WinCoord &C : E->winCoords()) {
        checkExpr(C.Lo, Env, P);
        if (!isControlInt(C.Lo))
          fail(P, "non-control window bound");
        if (C.IsInterval) {
          checkExpr(C.Hi, Env, P);
          if (!isControlInt(C.Hi))
            fail(P, "non-control window bound");
        }
      }
      return;
    }
    case ExprKind::StrideExpr: {
      auto It = Env.find(E->name());
      if (It == Env.end() || !It->second.isTensor())
        fail(P, "stride() of a non-tensor");
      else if (E->strideDim() >= It->second.rank())
        fail(P, "stride() dimension out of range");
      return;
    }
    case ExprKind::ReadConfig:
      if (!E->type().isControl())
        fail(P, "config field with data type");
      return;
    }
  }

  void checkBlock(const Block &B, std::unordered_map<Sym, Type> Env,
                  const Proc &P) {
    for (const StmtRef &S : B) {
      if (Err)
        return;
      switch (S->kind()) {
      case StmtKind::Pass:
        break;
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        auto It = Env.find(S->name());
        if (It == Env.end()) {
          fail(P, "write to unbound variable '" + S->name().name() + "'");
          break;
        }
        if (!It->second.isData())
          fail(P, "write to control variable '" + S->name().name() + "'");
        if (It->second.isTensor() &&
            S->indices().size() != It->second.rank())
          fail(P, "rank mismatch writing '" + S->name().name() + "'");
        if (!It->second.isTensor() && !S->indices().empty())
          fail(P, "indices on scalar write");
        for (const ExprRef &I : S->indices()) {
          checkExpr(I, Env, P);
          if (!isControlInt(I))
            fail(P, "non-control index: " + printExpr(I));
        }
        checkExpr(S->rhs(), Env, P);
        if (!S->rhs()->type().isData())
          fail(P, "control value assigned to data location: " +
                      printStmt(S));
        break;
      }
      case StmtKind::WriteConfig:
        checkExpr(S->rhs(), Env, P);
        if (S->rhs()->type().isData())
          fail(P, "data value written to configuration state");
        break;
      case StmtKind::If:
        checkExpr(S->rhs(), Env, P);
        if (!isBool(S->rhs()))
          fail(P, "non-boolean branch condition: " + printExpr(S->rhs()));
        checkBlock(S->body(), Env, P);
        checkBlock(S->orelse(), Env, P);
        break;
      case StmtKind::For: {
        checkExpr(S->lo(), Env, P);
        checkExpr(S->hi(), Env, P);
        if (!isControlInt(S->lo()) || !isControlInt(S->hi()))
          fail(P, "loop bounds must be control integers");
        auto Inner = Env;
        Inner[S->name()] = Type(ScalarKind::Index);
        checkBlock(S->body(), std::move(Inner), P);
        break;
      }
      case StmtKind::Alloc: {
        const Type &T = S->allocType();
        if (!T.isData())
          fail(P, "allocation of control type");
        if (T.isWindow())
          fail(P, "allocation of a window type");
        for (const ExprRef &D : T.dims()) {
          checkExpr(const_cast<ExprRef &>(D), Env, P);
          if (!isControlInt(D))
            fail(P, "non-control tensor dimension");
        }
        Env[S->name()] = T;
        break;
      }
      case StmtKind::Call: {
        const ProcRef &Callee = S->proc();
        if (S->args().size() != Callee->args().size()) {
          fail(P, "arity mismatch calling " + Callee->name());
          break;
        }
        for (size_t I = 0; I < S->args().size(); ++I) {
          const ExprRef &A = S->args()[I];
          const FnArg &F = Callee->args()[I];
          checkExpr(A, Env, P);
          if (F.Ty.isControl()) {
            if (A->type().isData())
              fail(P, "data value passed to control parameter of " +
                          Callee->name());
          } else if (F.Ty.isTensor()) {
            if (!A->type().isTensor())
              fail(P, "non-tensor passed to tensor parameter of " +
                          Callee->name());
            else if (A->type().rank() != F.Ty.rank())
              fail(P, "rank mismatch passing tensor to " + Callee->name());
          }
        }
        checkProc(*Callee);
        break;
      }
      case StmtKind::WindowStmt:
        checkExpr(S->rhs(), Env, P);
        Env[S->name()] = S->rhs()->type();
        break;
      }
    }
  }

  std::set<const Proc *> Visited;
};

} // namespace

Expected<bool> exo::frontend::typeCheck(const ProcRef &P) {
  TypeChecker C;
  C.checkProc(*P);
  if (C.Err)
    return *C.Err;
  return true;
}
