//===- frontend/Lexer.h - Indentation-sensitive tokenizer ------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizes the Exo surface syntax. Like the Python host language the
/// paper embeds Exo in, blocks are indentation-delimited: the lexer emits
/// synthetic Indent / Dedent tokens from leading whitespace, skipping blank
/// and comment-only lines.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_FRONTEND_LEXER_H
#define EXO_FRONTEND_LEXER_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace exo {
namespace frontend {

enum class TokKind {
  Name,
  IntLit,
  FloatLit,
  StringLit,
  // Punctuation & operators.
  LParen, RParen, LBracket, RBracket,
  Colon, Comma, Dot, At,
  Assign,      // =
  PlusAssign,  // +=
  Plus, Minus, Star, Slash, Percent,
  EqEq, NotEq, Lt, Gt, Le, Ge,
  // Keywords.
  KwDef, KwFor, KwIn, KwSeq, KwIf, KwElse, KwAssert, KwPass, KwAnd, KwOr,
  KwNot, KwTrue, KwFalse, KwClass, KwStride,
  // Layout.
  Newline, Indent, Dedent,
  EndOfFile,
};

const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind;
  std::string Text;   ///< names, literals, string contents
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Tokenizes \p Source. Fails on tabs in indentation, bad characters, and
/// inconsistent dedents.
Expected<std::vector<Token>> tokenize(const std::string &Source);

} // namespace frontend
} // namespace exo

#endif // EXO_FRONTEND_LEXER_H
