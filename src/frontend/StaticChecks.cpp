//===- frontend/StaticChecks.cpp -------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/StaticChecks.h"

#include "analysis/Checks.h"
#include "ir/Printer.h"
#include "ir/Subst.h"

#include <set>
#include <unordered_map>

using namespace exo;
using namespace exo::frontend;
using namespace exo::ir;
using namespace exo::analysis;

namespace {

/// Walks a procedure accumulating path conditions and symbolic dimension
/// information, discharging in-bounds and precondition obligations.
class StaticChecker {
public:
  StaticChecker(bool Bounds, bool Asserts)
      : DoBounds(Bounds), DoAsserts(Asserts) {}

  std::optional<Error> Err;

  void checkProc(const Proc &P) {
    if (!Visited.insert(&P).second)
      return;
    FlowState State;
    TriBool Premise = TriBool::yes();
    std::unordered_map<Sym, std::vector<EffInt>> Shapes;
    for (const FnArg &A : P.args()) {
      if (A.Ty.isControl()) {
        // size arguments are strictly positive by construction (§3.1.3).
        if (A.Ty.elem() == ScalarKind::Size) {
          EffInt V = EffInt::known(smt::mkVar(Ctx.varFor(A.Name)));
          Premise = triAnd(Premise,
                           triCmp(BinOpKind::Ge, V,
                                  EffInt::known(smt::intConst(1))));
        }
        continue;
      }
      if (A.Ty.isTensor()) {
        std::vector<EffInt> Dims;
        for (const ExprRef &D : A.Ty.dims())
          Dims.push_back(Ctx.liftControl(D, State.Env));
        Shapes[A.Name] = std::move(Dims);
      } else {
        Shapes[A.Name] = {};
      }
    }
    for (const ExprRef &Pred : P.preds())
      Premise = triAnd(Premise, Ctx.liftBool(Pred, State.Env));
    checkBlock(P.body(), State, Premise, Shapes, P);
  }

private:
  void fail(Error::Kind K, const Proc &P, const std::string &Msg) {
    if (!Err)
      Err = makeError(K, P.name() + ": " + Msg);
  }

  bool prove(const TriBool &Premise, const TriBool &Goal) {
    return provedUnderPremise(Ctx, Premise, Goal.Must);
  }

  void checkIndex(const ExprRef &Idx, const EffInt &Dim,
                  const FlowState &State, const TriBool &Premise,
                  const Proc &P, const std::string &What) {
    if (!DoBounds)
      return;
    EffInt V = Ctx.liftControl(Idx, State.Env);
    TriBool In = triAnd(
        triCmp(BinOpKind::Le, EffInt::known(smt::intConst(0)), V),
        triCmp(BinOpKind::Lt, V, Dim));
    if (!prove(Premise, In))
      fail(Error::Kind::Bounds, P,
           "cannot prove " + What + " index '" + printExpr(Idx) +
               "' in bounds");
  }

  void checkAccess(Sym Buf, const std::vector<ExprRef> &Idx,
                   const FlowState &State, const TriBool &Premise,
                   const std::unordered_map<Sym, std::vector<EffInt>> &Shapes,
                   const Proc &P) {
    auto It = Shapes.find(Buf);
    if (It == Shapes.end())
      return; // not a tracked buffer (e.g. control var)
    if (Idx.size() != It->second.size())
      return; // rank errors are typeCheck's business
    for (size_t D = 0; D < Idx.size(); ++D)
      checkIndex(Idx[D], It->second[D], State, Premise, P,
                 "'" + Buf.name() + "' dim " + std::to_string(D));
  }

  void checkExpr(const ExprRef &E, const FlowState &State,
                 const TriBool &Premise,
                 const std::unordered_map<Sym, std::vector<EffInt>> &Shapes,
                 const Proc &P) {
    switch (E->kind()) {
    case ExprKind::Read:
      if (!E->args().empty())
        checkAccess(E->name(), E->args(), State, Premise, Shapes, P);
      break;
    case ExprKind::WindowExpr: {
      if (!DoBounds)
        break;
      auto It = Shapes.find(E->name());
      if (It == Shapes.end() ||
          It->second.size() != E->winCoords().size())
        break;
      for (size_t D = 0; D < E->winCoords().size(); ++D) {
        const WinCoord &C = E->winCoords()[D];
        EffInt Lo = Ctx.liftControl(C.Lo, State.Env);
        EffInt Zero = EffInt::known(smt::intConst(0));
        if (C.IsInterval) {
          EffInt Hi = Ctx.liftControl(C.Hi, State.Env);
          TriBool Ok = triAnd(
              triAnd(triCmp(BinOpKind::Le, Zero, Lo),
                     triCmp(BinOpKind::Le, Lo, Hi)),
              triCmp(BinOpKind::Le, Hi, It->second[D]));
          if (!prove(Premise, Ok))
            fail(Error::Kind::Bounds, P,
                 "cannot prove window '" + printExpr(E) +
                     "' in bounds (dim " + std::to_string(D) + ")");
        } else {
          checkIndex(C.Lo, It->second[D], State, Premise, P,
                     "window point on '" + E->name().name() + "'");
        }
      }
      break;
    }
    default:
      break;
    }
    for (const ExprRef &K : childExprs(E))
      if (K)
        checkExpr(K, State, Premise, Shapes, P);
  }

  void checkBlock(const Block &B, FlowState State, TriBool Premise,
                  std::unordered_map<Sym, std::vector<EffInt>> Shapes,
                  const Proc &P) {
    for (const StmtRef &S : B) {
      if (Err)
        return;
      switch (S->kind()) {
      case StmtKind::Pass:
        break;
      case StmtKind::Assign:
      case StmtKind::Reduce:
        checkAccess(S->name(), S->indices(), State, Premise, Shapes, P);
        for (const ExprRef &I : S->indices())
          checkExpr(I, State, Premise, Shapes, P);
        checkExpr(S->rhs(), State, Premise, Shapes, P);
        break;
      case StmtKind::WriteConfig:
        checkExpr(S->rhs(), State, Premise, Shapes, P);
        flowStmt(Ctx, State, S);
        break;
      case StmtKind::If: {
        checkExpr(S->rhs(), State, Premise, Shapes, P);
        TriBool Cond = Ctx.liftBool(S->rhs(), State.Env);
        checkBlock(S->body(), State, triAnd(Premise, Cond), Shapes, P);
        checkBlock(S->orelse(), State, triAnd(Premise, triNot(Cond)),
                   Shapes, P);
        flowStmt(Ctx, State, S);
        break;
      }
      case StmtKind::For: {
        checkExpr(S->lo(), State, Premise, Shapes, P);
        checkExpr(S->hi(), State, Premise, Shapes, P);
        EffInt Lo = Ctx.liftControl(S->lo(), State.Env);
        EffInt Hi = Ctx.liftControl(S->hi(), State.Env);
        // Stabilize globals for the body (as ValG does).
        FlowState Probe = State;
        Probe.Env[S->name()] = Ctx.unknownInt();
        flowBlock(Ctx, Probe, S->body());
        Probe.Env.erase(S->name());
        FlowState BodyState = State;
        havocKeys(Ctx, BodyState.Env, changedKeys(State.Env, Probe.Env));
        smt::TermVar X = Ctx.varFor(S->name());
        EffInt XV = EffInt::known(smt::mkVar(X));
        BodyState.Env[S->name()] = XV;
        TriBool InBounds = triAnd(triCmp(BinOpKind::Le, Lo, XV),
                                  triCmp(BinOpKind::Lt, XV, Hi));
        checkBlock(S->body(), BodyState, triAnd(Premise, InBounds), Shapes,
                   P);
        havocKeys(Ctx, State.Env, changedKeys(State.Env, Probe.Env));
        break;
      }
      case StmtKind::Alloc: {
        const Type &T = S->allocType();
        std::vector<EffInt> Dims;
        for (const ExprRef &D : T.dims()) {
          EffInt V = Ctx.liftControl(D, State.Env);
          if (DoBounds &&
              !prove(Premise, triCmp(BinOpKind::Ge, V,
                                     EffInt::known(smt::intConst(1)))))
            fail(Error::Kind::Bounds, P,
                 "cannot prove allocation dimension '" + printExpr(D) +
                     "' strictly positive");
          Dims.push_back(std::move(V));
        }
        Shapes[S->name()] = std::move(Dims);
        break;
      }
      case StmtKind::Call: {
        const ProcRef &Callee = S->proc();
        for (const ExprRef &A : S->args())
          checkExpr(A, State, Premise, Shapes, P);
        if (DoAsserts && S->args().size() == Callee->args().size()) {
          SymSubst Map;
          for (size_t I = 0; I < S->args().size(); ++I)
            Map[Callee->args()[I].Name] = S->args()[I];
          for (const ExprRef &Pred : Callee->preds()) {
            ExprRef Inst = substExpr(Pred, Map);
            TriBool Goal = Ctx.liftBool(Inst, State.Env);
            if (!prove(Premise, Goal))
              fail(Error::Kind::Precondition, P,
                   "cannot prove precondition '" + printExpr(Pred) +
                       "' of " + Callee->name() + " at call site (" +
                       printExpr(Inst) + ")");
          }
        }
        // Modular: the callee is checked once under its own assertions.
        checkProc(*Callee);
        flowStmt(Ctx, State, S);
        break;
      }
      case StmtKind::WindowStmt: {
        checkExpr(S->rhs(), State, Premise, Shapes, P);
        const ExprRef &W = S->rhs();
        std::vector<EffInt> Dims;
        for (const WinCoord &C : W->winCoords())
          if (C.IsInterval) {
            EffInt Lo = Ctx.liftControl(C.Lo, State.Env);
            EffInt Hi = Ctx.liftControl(C.Hi, State.Env);
            Dims.push_back({smt::sub(Hi.Val, Lo.Val),
                            smt::mkAnd(Lo.Def, Hi.Def)});
          }
        Shapes[S->name()] = std::move(Dims);
        flowStmt(Ctx, State, S);
        break;
      }
      }
    }
  }

  AnalysisCtx Ctx;
  bool DoBounds, DoAsserts;
  std::set<const Proc *> Visited;
};

} // namespace

Expected<bool> exo::frontend::boundsCheck(const ProcRef &P) {
  StaticChecker C(/*Bounds=*/true, /*Asserts=*/false);
  C.checkProc(*P);
  if (C.Err)
    return *C.Err;
  return true;
}

Expected<bool> exo::frontend::assertCheck(const ProcRef &P) {
  StaticChecker C(/*Bounds=*/false, /*Asserts=*/true);
  C.checkProc(*P);
  if (C.Err)
    return *C.Err;
  return true;
}
