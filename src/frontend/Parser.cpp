//===- frontend/Parser.cpp -------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <optional>

using namespace exo;
using namespace exo::frontend;
using namespace exo::ir;

namespace {

/// Recursive-descent parser over the token stream. Performs enough typing
/// to annotate expressions (full checking is TypeCheck's job).
class Parser {
public:
  Parser(std::vector<Token> Toks, ParseEnv &Env)
      : Toks(std::move(Toks)), Env(Env) {}

  /// Entry point for parseExprInScope: parses one expression with a
  /// pre-seeded scope.
  Expected<ExprRef> runExpr(const std::map<std::string, ScopedName> &Scope) {
    Scopes.emplace_back();
    for (auto &[Name, SN] : Scope)
      bind(Name, SN.S, SN.Ty);
    auto E = parseExpr();
    if (!E)
      return *Err;
    if (!at(TokKind::Newline) && !at(TokKind::EndOfFile))
      return fail("trailing tokens after expression"), *Err;
    return E;
  }

  Expected<ParsedModule> run() {
    ParsedModule Module;
    while (!at(TokKind::EndOfFile)) {
      if (!expect(TokKind::At, "a '@proc', '@instr' or '@config' decorator"))
        return *Err;
      if (at(TokKind::Name) && cur().Text == "proc") {
        ++Pos;
        if (!eatNewline())
          return *Err;
        auto P = parseProcDef(std::nullopt);
        if (!P)
          return *Err;
        Env.addProc(*P);
        Module.Procs.push_back(*P);
        continue;
      }
      if (at(TokKind::Name) && cur().Text == "instr") {
        ++Pos;
        if (!expect(TokKind::LParen, "'(' after @instr"))
          return *Err;
        if (!at(TokKind::StringLit))
          return fail("string template expected in @instr"), *Err;
        InstrInfo Info;
        Info.CTemplate = cur().Text;
        ++Pos;
        if (at(TokKind::Comma)) {
          ++Pos;
          if (!at(TokKind::StringLit))
            return fail("global string expected after ','"), *Err;
          Info.CGlobal = cur().Text;
          ++Pos;
        }
        if (!expect(TokKind::RParen, "')'"))
          return *Err;
        if (!eatNewline())
          return *Err;
        auto P = parseProcDef(Info);
        if (!P)
          return *Err;
        Env.addProc(*P);
        Module.Procs.push_back(*P);
        continue;
      }
      if (at(TokKind::Name) && cur().Text == "config") {
        ++Pos;
        if (!eatNewline())
          return *Err;
        auto C = parseConfigDecl();
        if (!C)
          return *Err;
        Env.addConfig(*C);
        Module.Configs.push_back(*C);
        continue;
      }
      return fail("unknown decorator"), *Err;
    }
    return Module;
  }

private:
  //===--------------------------------------------------------------------
  // Token plumbing
  //===--------------------------------------------------------------------

  const Token &cur() const { return Toks[Pos]; }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atName(const char *Text) const {
    return at(TokKind::Name) && cur().Text == Text;
  }

  void fail(const std::string &Msg) {
    if (!Err)
      Err = makeError(Error::Kind::Parse,
                      "line " + std::to_string(cur().Line) + ": " + Msg +
                          " (found " + tokKindName(cur().Kind) + ")");
  }

  //===--------------------------------------------------------------------
  // Recursion-depth guard
  //===--------------------------------------------------------------------
  //
  // The parser is recursive-descent, so adversarial input (thousands of
  // nested parens, unary minuses, or indented blocks) translates directly
  // into C++ stack depth. Every self-recursive entry point takes a
  // DepthScope and bails out with a parse error — not a stack overflow —
  // past MaxDepth. The limit is far above anything a legitimate Exo
  // program nests (deepest in-tree procedure is < 20).

  static constexpr unsigned MaxDepth = 256;

  struct DepthScope {
    Parser &P;
    explicit DepthScope(Parser &P) : P(P) { ++P.Depth; }
    ~DepthScope() { --P.Depth; }
  };

  /// True (and records the error) when the nesting budget is exhausted.
  bool tooDeep() {
    if (Depth <= MaxDepth)
      return false;
    fail("nesting too deep (recursion limit " + std::to_string(MaxDepth) +
         ")");
    return true;
  }

  bool expect(TokKind K, const std::string &What) {
    if (!at(K)) {
      fail("expected " + What);
      return false;
    }
    ++Pos;
    return true;
  }

  bool eatNewline() { return expect(TokKind::Newline, "end of line"); }

  //===--------------------------------------------------------------------
  // Scopes
  //===--------------------------------------------------------------------

  struct Binding {
    Sym S;
    Type Ty;
  };

  std::optional<Binding> lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return std::nullopt;
  }

  void bind(const std::string &Name, Sym S, Type Ty) {
    Scopes.back()[Name] = {S, std::move(Ty)};
  }

  //===--------------------------------------------------------------------
  // Declarations
  //===--------------------------------------------------------------------

  Expected<ConfigRef> parseConfigDecl() {
    if (!expect(TokKind::KwClass, "'class' after @config"))
      return *Err;
    if (!at(TokKind::Name))
      return fail("config name expected"), *Err;
    std::string Name = cur().Text;
    ++Pos;
    if (!expect(TokKind::Colon, "':'") || !eatNewline() ||
        !expect(TokKind::Indent, "an indented field list"))
      return *Err;
    std::vector<ConfigDecl::Field> Fields;
    while (!at(TokKind::Dedent)) {
      if (!at(TokKind::Name))
        return fail("field name expected"), *Err;
      std::string FieldName = cur().Text;
      ++Pos;
      if (!expect(TokKind::Colon, "':' after field name"))
        return *Err;
      auto Ty = parseType();
      if (!Ty)
        return *Err;
      if (!Ty->isControl())
        return fail("config fields must have control types"), *Err;
      if (!eatNewline())
        return *Err;
      Fields.push_back({Sym::fresh(FieldName), *Ty});
    }
    ++Pos; // Dedent
    return ConfigRef(
        std::make_shared<ConfigDecl>(Sym::fresh(Name), std::move(Fields)));
  }

  Expected<ProcRef> parseProcDef(std::optional<InstrInfo> Instr) {
    if (!expect(TokKind::KwDef, "'def'"))
      return *Err;
    if (!at(TokKind::Name))
      return fail("procedure name expected"), *Err;
    std::string Name = cur().Text;
    ++Pos;
    if (!expect(TokKind::LParen, "'('"))
      return *Err;

    Scopes.clear();
    Scopes.emplace_back();

    std::vector<FnArg> Args;
    while (!at(TokKind::RParen)) {
      if (!Args.empty() && !expect(TokKind::Comma, "','"))
        return *Err;
      if (!at(TokKind::Name))
        return fail("argument name expected"), *Err;
      std::string ArgName = cur().Text;
      ++Pos;
      if (!expect(TokKind::Colon, "':' after argument name"))
        return *Err;
      auto Ty = parseType();
      if (!Ty)
        return *Err;
      std::string Mem = "DRAM";
      if (at(TokKind::At)) {
        ++Pos;
        if (!at(TokKind::Name))
          return fail("memory name expected after '@'"), *Err;
        Mem = cur().Text;
        ++Pos;
      }
      Sym S = Sym::fresh(ArgName);
      bind(ArgName, S, *Ty);
      Args.push_back({S, std::move(*Ty), std::move(Mem)});
    }
    ++Pos; // RParen
    if (!expect(TokKind::Colon, "':'") || !eatNewline())
      return *Err;

    if (!expect(TokKind::Indent, "an indented body"))
      return *Err;

    // Leading assertions become preconditions.
    std::vector<ExprRef> Preds;
    while (at(TokKind::KwAssert)) {
      ++Pos;
      auto E = parseExpr();
      if (!E)
        return *Err;
      if (!eatNewline())
        return *Err;
      Preds.push_back(*E);
    }

    auto Body = parseBlockBody();
    if (!Body)
      return *Err;

    auto P = std::make_shared<Proc>(Name, std::move(Args), std::move(Preds),
                                    std::move(*Body));
    if (Instr)
      P->setInstr(std::move(*Instr));
    return ProcRef(P);
  }

  //===--------------------------------------------------------------------
  // Types
  //===--------------------------------------------------------------------

  std::optional<ScalarKind> scalarKindByName(const std::string &N) {
    if (N == "R")
      return ScalarKind::R;
    if (N == "f32")
      return ScalarKind::F32;
    if (N == "f64")
      return ScalarKind::F64;
    if (N == "i8")
      return ScalarKind::I8;
    if (N == "i16")
      return ScalarKind::I16;
    if (N == "i32")
      return ScalarKind::I32;
    if (N == "int")
      return ScalarKind::Int;
    if (N == "bool")
      return ScalarKind::Bool;
    if (N == "size")
      return ScalarKind::Size;
    if (N == "index")
      return ScalarKind::Index;
    return std::nullopt;
  }

  Expected<Type> parseType() {
    // Window types are written [R][n, m].
    bool IsWindow = false;
    if (at(TokKind::LBracket)) {
      IsWindow = true;
      ++Pos;
    }
    ScalarKind Elem;
    if (at(TokKind::KwStride)) {
      Elem = ScalarKind::Stride;
      ++Pos;
    } else {
      if (!at(TokKind::Name))
        return fail("type name expected"), *Err;
      auto K = scalarKindByName(cur().Text);
      if (!K)
        return fail("unknown type '" + cur().Text + "'"), *Err;
      Elem = *K;
      ++Pos;
    }
    if (IsWindow && !expect(TokKind::RBracket, "']' closing window type"))
      return *Err;
    if (!at(TokKind::LBracket)) {
      if (IsWindow)
        return fail("window type needs dimensions"), *Err;
      return Type(Elem);
    }
    ++Pos;
    std::vector<ExprRef> Dims;
    while (!at(TokKind::RBracket)) {
      if (!Dims.empty() && !expect(TokKind::Comma, "','"))
        return *Err;
      auto D = parseExpr();
      if (!D)
        return *Err;
      Dims.push_back(*D);
    }
    ++Pos;
    if (!isDataScalar(Elem))
      return fail("tensor of control type"), *Err;
    return Type::tensor(Elem, std::move(Dims), IsWindow);
  }

  //===--------------------------------------------------------------------
  // Statements
  //===--------------------------------------------------------------------

  Expected<Block> parseBlockBody() {
    Block B;
    Scopes.emplace_back();
    while (!at(TokKind::Dedent) && !at(TokKind::EndOfFile)) {
      auto S = parseStmt();
      if (!S)
        return *Err;
      if (*S) // null means 'pass' swallowed into an empty marker
        B.push_back(*S);
    }
    if (at(TokKind::Dedent))
      ++Pos;
    Scopes.pop_back();
    return B;
  }

  Expected<Block> parseIndentedBlock() {
    if (!eatNewline() || !expect(TokKind::Indent, "an indented block"))
      return *Err;
    return parseBlockBody();
  }

  Expected<StmtRef> parseStmt() {
    DepthScope Guard(*this);
    if (tooDeep())
      return *Err;
    if (at(TokKind::KwPass)) {
      ++Pos;
      if (!eatNewline())
        return *Err;
      return StmtRef(Stmt::pass());
    }
    if (at(TokKind::KwFor))
      return parseFor();
    if (at(TokKind::KwIf))
      return parseIf();
    if (at(TokKind::KwAssert))
      return fail("assertions are only allowed at the top of a procedure"),
             *Err;
    if (!at(TokKind::Name))
      return fail("statement expected"), *Err;

    std::string Name = cur().Text;
    TokKind Next = Toks[Pos + 1].Kind;

    // Allocation: NAME : type [@ mem]
    if (Next == TokKind::Colon)
      return parseAlloc();
    // Config write: NAME . NAME = expr
    if (Next == TokKind::Dot)
      return parseConfigWrite();
    // Call: NAME ( ... )
    if (Next == TokKind::LParen)
      return parseCall();
    // Assignment / reduction / window binding.
    return parseAssignLike();
  }

  Expected<StmtRef> parseFor() {
    ++Pos; // for
    if (!at(TokKind::Name))
      return fail("loop variable expected"), *Err;
    std::string IterName = cur().Text;
    ++Pos;
    if (!expect(TokKind::KwIn, "'in'") ||
        !expect(TokKind::KwSeq, "'seq'") || !expect(TokKind::LParen, "'('"))
      return *Err;
    auto Lo = parseExpr();
    if (!Lo)
      return *Err;
    if (!expect(TokKind::Comma, "','"))
      return *Err;
    auto Hi = parseExpr();
    if (!Hi)
      return *Err;
    if (!expect(TokKind::RParen, "')'") || !expect(TokKind::Colon, "':'"))
      return *Err;
    Sym Iter = Sym::fresh(IterName);
    Scopes.emplace_back();
    bind(IterName, Iter, Type(ScalarKind::Index));
    auto Body = parseIndentedBlock();
    Scopes.pop_back();
    if (!Body)
      return *Err;
    return StmtRef(Stmt::forStmt(Iter, *Lo, *Hi, std::move(*Body)));
  }

  Expected<StmtRef> parseIf() {
    ++Pos; // if
    auto Cond = parseExpr();
    if (!Cond)
      return *Err;
    if (!expect(TokKind::Colon, "':'"))
      return *Err;
    auto Body = parseIndentedBlock();
    if (!Body)
      return *Err;
    Block Orelse;
    if (at(TokKind::KwElse)) {
      ++Pos;
      if (!expect(TokKind::Colon, "':'"))
        return *Err;
      auto E = parseIndentedBlock();
      if (!E)
        return *Err;
      Orelse = std::move(*E);
    }
    return StmtRef(Stmt::ifStmt(*Cond, std::move(*Body), std::move(Orelse)));
  }

  Expected<StmtRef> parseAlloc() {
    std::string Name = cur().Text;
    ++Pos; // name
    ++Pos; // colon
    auto Ty = parseType();
    if (!Ty)
      return *Err;
    std::string Mem = "DRAM";
    if (at(TokKind::At)) {
      ++Pos;
      if (!at(TokKind::Name))
        return fail("memory name expected after '@'"), *Err;
      Mem = cur().Text;
      ++Pos;
    }
    if (!eatNewline())
      return *Err;
    if (!Ty->isData())
      return fail("allocations must have data type"), *Err;
    Sym S = Sym::fresh(Name);
    bind(Name, S, *Ty);
    return StmtRef(Stmt::alloc(S, std::move(*Ty), std::move(Mem)));
  }

  Expected<StmtRef> parseConfigWrite() {
    std::string CfgName = cur().Text;
    ConfigRef Cfg = Env.findConfig(CfgName);
    if (!Cfg)
      return fail("unknown config '" + CfgName + "'"), *Err;
    ++Pos; // config name
    ++Pos; // dot
    if (!at(TokKind::Name))
      return fail("config field expected"), *Err;
    const ConfigDecl::Field *F = Cfg->findField(cur().Text);
    if (!F)
      return fail("config '" + CfgName + "' has no field '" + cur().Text +
                  "'"),
             *Err;
    ++Pos;
    if (!expect(TokKind::Assign, "'='"))
      return *Err;
    auto Rhs = parseExpr();
    if (!Rhs)
      return *Err;
    if (!eatNewline())
      return *Err;
    return StmtRef(Stmt::writeConfig(Cfg->name(), F->Name, *Rhs));
  }

  Expected<StmtRef> parseCall() {
    std::string Name = cur().Text;
    ProcRef Callee = Env.findProc(Name);
    if (!Callee)
      return fail("unknown procedure '" + Name + "'"), *Err;
    ++Pos; // name
    ++Pos; // lparen
    std::vector<ExprRef> Args;
    while (!at(TokKind::RParen)) {
      if (!Args.empty() && !expect(TokKind::Comma, "','"))
        return *Err;
      auto A = parseExpr();
      if (!A)
        return *Err;
      Args.push_back(*A);
    }
    ++Pos;
    if (!eatNewline())
      return *Err;
    return StmtRef(Stmt::call(std::move(Callee), std::move(Args)));
  }

  Expected<StmtRef> parseAssignLike() {
    std::string Name = cur().Text;
    auto B = lookup(Name);
    if (!B) {
      // `y = x[lo:hi]` introduces a window alias; an unknown name is only
      // legal in that form.
      if (Toks[Pos + 1].Kind != TokKind::Assign)
        return fail("unknown variable '" + Name + "'"), *Err;
      ++Pos; // name
      ++Pos; // '='
      auto Rhs = parseExpr();
      if (!Rhs)
        return *Err;
      if (!eatNewline())
        return *Err;
      if ((*Rhs)->kind() != ExprKind::WindowExpr)
        return fail("unknown variable '" + Name + "'"), *Err;
      Sym S = Sym::fresh(Name);
      bind(Name, S, (*Rhs)->type());
      return StmtRef(Stmt::windowStmt(S, *Rhs));
    }
    ++Pos;
    std::vector<ExprRef> Indices;
    bool SawInterval = false;
    if (at(TokKind::LBracket)) {
      auto Coords = parseWindowCoords();
      if (!Coords)
        return *Err;
      for (auto &C : *Coords) {
        if (C.IsInterval)
          SawInterval = true;
        else
          Indices.push_back(C.Lo);
      }
      if (SawInterval)
        return fail("cannot assign into a window expression"), *Err;
    }
    bool IsReduce = at(TokKind::PlusAssign);
    if (!IsReduce && !at(TokKind::Assign))
      return fail("'=' or '+=' expected"), *Err;
    ++Pos;
    auto Rhs = parseExpr();
    if (!Rhs)
      return *Err;
    if (!eatNewline())
      return *Err;

    // `y = x[lo:hi, ...]` with no indices binds a window alias.
    if (!IsReduce && Indices.empty() &&
        (*Rhs)->kind() == ExprKind::WindowExpr) {
      Sym S = Sym::fresh(Name);
      bind(Name, S, (*Rhs)->type());
      return StmtRef(Stmt::windowStmt(S, *Rhs));
    }

    ExprRef Value = coerceToData(*Rhs, B->Ty.elem());
    return IsReduce
               ? StmtRef(Stmt::reduce(B->S, std::move(Indices), Value))
               : StmtRef(Stmt::assign(B->S, std::move(Indices), Value));
  }

  //===--------------------------------------------------------------------
  // Expressions
  //===--------------------------------------------------------------------

  /// Converts control-int literals to data literals where a data value is
  /// required ("a[i] = 0" meaning 0.0).
  ExprRef coerceToData(ExprRef E, ScalarKind Want) {
    if (isDataScalar(Want) && E->kind() == ExprKind::Const &&
        E->type().isControl() && E->type().elem() != ScalarKind::Bool)
      return Expr::constData(static_cast<double>(E->intValue()), Want);
    return E;
  }

  Expected<ExprRef> parseExpr() {
    DepthScope Guard(*this);
    if (tooDeep())
      return *Err;
    return parseOr();
  }

  Expected<ExprRef> parseOr() {
    auto L = parseAnd();
    if (!L)
      return *Err;
    while (at(TokKind::KwOr)) {
      ++Pos;
      auto R = parseAnd();
      if (!R)
        return *Err;
      L = Expr::binOp(BinOpKind::Or, *L, *R);
    }
    return L;
  }

  Expected<ExprRef> parseAnd() {
    auto L = parseCmp();
    if (!L)
      return *Err;
    while (at(TokKind::KwAnd)) {
      ++Pos;
      auto R = parseCmp();
      if (!R)
        return *Err;
      L = Expr::binOp(BinOpKind::And, *L, *R);
    }
    return L;
  }

  Expected<ExprRef> parseCmp() {
    auto L = parseAddSub();
    if (!L)
      return *Err;
    BinOpKind Op;
    switch (cur().Kind) {
    case TokKind::EqEq:
      Op = BinOpKind::Eq;
      break;
    case TokKind::NotEq:
      Op = BinOpKind::Ne;
      break;
    case TokKind::Lt:
      Op = BinOpKind::Lt;
      break;
    case TokKind::Gt:
      Op = BinOpKind::Gt;
      break;
    case TokKind::Le:
      Op = BinOpKind::Le;
      break;
    case TokKind::Ge:
      Op = BinOpKind::Ge;
      break;
    default:
      return L;
    }
    ++Pos;
    auto R = parseAddSub();
    if (!R)
      return *Err;
    return ExprRef(Expr::binOp(Op, *L, *R));
  }

  Expected<ExprRef> parseAddSub() {
    auto L = parseMulDiv();
    if (!L)
      return *Err;
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      BinOpKind Op = at(TokKind::Plus) ? BinOpKind::Add : BinOpKind::Sub;
      ++Pos;
      auto R = parseMulDiv();
      if (!R)
        return *Err;
      L = mixedBinOp(Op, *L, *R);
    }
    return L;
  }

  Expected<ExprRef> parseMulDiv() {
    auto L = parseUnary();
    if (!L)
      return *Err;
    while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
      BinOpKind Op = at(TokKind::Star)    ? BinOpKind::Mul
                     : at(TokKind::Slash) ? BinOpKind::Div
                                          : BinOpKind::Mod;
      ++Pos;
      auto R = parseUnary();
      if (!R)
        return *Err;
      L = mixedBinOp(Op, *L, *R);
    }
    return L;
  }

  /// Builds a binop, coercing int literals when the other side is data.
  ExprRef mixedBinOp(BinOpKind Op, ExprRef L, ExprRef R) {
    if (L->type().isData())
      R = coerceToData(R, L->type().elem());
    else if (R->type().isData())
      L = coerceToData(L, R->type().elem());
    return Expr::binOp(Op, std::move(L), std::move(R));
  }

  Expected<ExprRef> parseUnary() {
    DepthScope Guard(*this);
    if (tooDeep())
      return *Err;
    if (at(TokKind::Minus)) {
      ++Pos;
      auto E = parseUnary();
      if (!E)
        return *Err;
      return ExprRef(Expr::usub(*E));
    }
    return parseAtom();
  }

  Expected<std::vector<WinCoord>> parseWindowCoords() {
    // cur() is '['.
    ++Pos;
    std::vector<WinCoord> Coords;
    while (!at(TokKind::RBracket)) {
      if (!Coords.empty() && !expect(TokKind::Comma, "','"))
        return *Err;
      auto Lo = parseExpr();
      if (!Lo)
        return *Err;
      if (at(TokKind::Colon)) {
        ++Pos;
        auto Hi = parseExpr();
        if (!Hi)
          return *Err;
        Coords.push_back({true, *Lo, *Hi});
      } else {
        Coords.push_back({false, *Lo, nullptr});
      }
    }
    ++Pos;
    return Coords;
  }

  Expected<ExprRef> parseAtom() {
    switch (cur().Kind) {
    case TokKind::IntLit: {
      ExprRef E = Expr::constInt(cur().IntValue);
      ++Pos;
      return E;
    }
    case TokKind::FloatLit: {
      ExprRef E = Expr::constData(cur().FloatValue, ScalarKind::R);
      ++Pos;
      return E;
    }
    case TokKind::KwTrue:
      ++Pos;
      return ExprRef(Expr::constBool(true));
    case TokKind::KwFalse:
      ++Pos;
      return ExprRef(Expr::constBool(false));
    case TokKind::LParen: {
      ++Pos;
      auto E = parseExpr();
      if (!E)
        return *Err;
      if (!expect(TokKind::RParen, "')'"))
        return *Err;
      return E;
    }
    case TokKind::KwStride: {
      ++Pos;
      if (!expect(TokKind::LParen, "'('"))
        return *Err;
      if (!at(TokKind::Name))
        return fail("buffer name expected in stride()"), *Err;
      auto B = lookup(cur().Text);
      if (!B)
        return fail("unknown variable '" + cur().Text + "'"), *Err;
      ++Pos;
      if (!expect(TokKind::Comma, "','"))
        return *Err;
      if (!at(TokKind::IntLit))
        return fail("literal dimension expected in stride()"), *Err;
      unsigned Dim = static_cast<unsigned>(cur().IntValue);
      ++Pos;
      if (!expect(TokKind::RParen, "')'"))
        return *Err;
      return ExprRef(Expr::stride(B->S, Dim));
    }
    case TokKind::Name:
      return parseNameAtom();
    default:
      return fail("expression expected"), *Err;
    }
  }

  Expected<ExprRef> parseNameAtom() {
    std::string Name = cur().Text;
    TokKind Next = Toks[Pos + 1].Kind;

    // Config read: Cfg.field
    if (Next == TokKind::Dot) {
      ConfigRef Cfg = Env.findConfig(Name);
      if (!Cfg)
        return fail("unknown config '" + Name + "'"), *Err;
      ++Pos;
      ++Pos;
      if (!at(TokKind::Name))
        return fail("config field expected"), *Err;
      const ConfigDecl::Field *F = Cfg->findField(cur().Text);
      if (!F)
        return fail("config '" + Name + "' has no field '" + cur().Text +
                    "'"),
               *Err;
      ++Pos;
      return ExprRef(Expr::readConfig(Cfg->name(), F->Name, F->Ty));
    }

    // Built-in data function call: max(a, b), relu(x), ...
    if (Next == TokKind::LParen) {
      ++Pos;
      ++Pos;
      std::vector<ExprRef> Args;
      while (!at(TokKind::RParen)) {
        if (!Args.empty() && !expect(TokKind::Comma, "','"))
          return *Err;
        auto A = parseExpr();
        if (!A)
          return *Err;
        Args.push_back(*A);
      }
      ++Pos;
      Type Ty = Args.empty() ? Type(ScalarKind::R) : Args[0]->type();
      // Coerce int-literal args when siblings are data.
      if (Ty.isData())
        for (auto &A : Args)
          A = coerceToData(A, Ty.elem());
      return ExprRef(Expr::builtIn(Name, std::move(Args), Ty));
    }

    auto B = lookup(Name);
    if (!B)
      return fail("unknown variable '" + Name + "'"), *Err;
    ++Pos;

    if (!at(TokKind::LBracket))
      return ExprRef(Expr::read(B->S, {}, B->Ty));

    auto Coords = parseWindowCoords();
    if (!Coords)
      return *Err;
    bool AnyInterval = false;
    for (auto &C : *Coords)
      AnyInterval |= C.IsInterval;
    if (!B->Ty.isTensor())
      return fail("indexing a non-tensor"), *Err;
    if (Coords->size() != B->Ty.rank())
      return fail("rank mismatch indexing '" + Name + "'"), *Err;

    if (!AnyInterval) {
      std::vector<ExprRef> Idx;
      for (auto &C : *Coords)
        Idx.push_back(C.Lo);
      return ExprRef(Expr::read(B->S, std::move(Idx), Type(B->Ty.elem())));
    }
    std::vector<ExprRef> Dims;
    for (auto &C : *Coords)
      if (C.IsInterval)
        Dims.push_back(Expr::binOp(BinOpKind::Sub, C.Hi, C.Lo));
    return ExprRef(Expr::window(
        B->S, std::move(*Coords),
        Type::tensor(B->Ty.elem(), std::move(Dims), /*IsWindow=*/true)));
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  unsigned Depth = 0; ///< live recursion depth; see DepthScope
  ParseEnv &Env;
  std::vector<std::map<std::string, Binding>> Scopes;
  std::optional<Error> Err;
};

} // namespace

Expected<ParsedModule> exo::frontend::parseModule(const std::string &Source,
                                                  ParseEnv &Env) {
  auto Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return Parser(std::move(*Toks), Env).run();
}

Expected<ProcRef> exo::frontend::parseProc(const std::string &Source,
                                           ParseEnv &Env) {
  auto M = parseModule(Source, Env);
  if (!M)
    return M.error();
  if (M->Procs.size() != 1)
    return makeError(Error::Kind::Parse,
                     "expected exactly one procedure, found " +
                         std::to_string(M->Procs.size()));
  return M->Procs[0];
}

Expected<ProcRef> exo::frontend::parseProc(const std::string &Source) {
  ParseEnv Env;
  return parseProc(Source, Env);
}

Expected<ExprRef> exo::frontend::parseExprInScope(
    const std::string &Source, const std::map<std::string, ScopedName> &Scope,
    const ParseEnv &Env) {
  auto Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  // The parser only reads the environment here, so the cast is benign.
  return Parser(std::move(*Toks), const_cast<ParseEnv &>(Env)).runExpr(Scope);
}
