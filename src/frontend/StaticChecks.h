//===- frontend/StaticChecks.h - Bounds & assertion checks -----*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT-backed front-end checks of §3.1:
///
///  * boundsCheck — every buffer access and window is statically proven
///    in-bounds (item 3: "guaranteeing memory safety without incurring
///    any of the costs of dynamic bounds checks");
///
///  * assertCheck — every call site is proven to establish the callee's
///    asserted preconditions (item 6), using the symbolic global
///    dataflow so configuration-state assertions discharge through
///    earlier configuration writes.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_FRONTEND_STATICCHECKS_H
#define EXO_FRONTEND_STATICCHECKS_H

#include "ir/Proc.h"
#include "support/Error.h"

namespace exo {
namespace frontend {

/// Statically proves all accesses in-bounds under the procedure's
/// preconditions and path conditions. Unknown ⇒ failure (fail-safe).
Expected<bool> boundsCheck(const ir::ProcRef &P);

/// Statically proves callee preconditions at every call site.
Expected<bool> assertCheck(const ir::ProcRef &P);

} // namespace frontend
} // namespace exo

#endif // EXO_FRONTEND_STATICCHECKS_H
