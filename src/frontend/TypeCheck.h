//===- frontend/TypeCheck.h - Front-end type checking ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end type checks of §3.1: control/data separation, the
/// quasi-affine restriction on control arithmetic, control-typed loop
/// bounds and branch conditions, dependent tensor shapes, and call-site
/// arity/kind agreement. The parser establishes most of this for surface
/// programs; typeCheck() re-validates programmatically-built or rewritten
/// IR.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_FRONTEND_TYPECHECK_H
#define EXO_FRONTEND_TYPECHECK_H

#include "ir/Proc.h"
#include "support/Error.h"

namespace exo {
namespace frontend {

/// Validates \p P (and transitively called procedures). Returns true on
/// success.
Expected<bool> typeCheck(const ir::ProcRef &P);

} // namespace frontend
} // namespace exo

#endif // EXO_FRONTEND_TYPECHECK_H
