//===- interp/Interp.h - LoopIR reference interpreter ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for LoopIR: the executable counterpart of the
/// denotational semantics of §4. It is the ground truth for the
/// schedule-equivalence property tests (a scheduling operator must
/// preserve observable behaviour — program equivalence, Def 4.1 — modulo
/// its declared configuration delta, Def 4.2) and for validating the C
/// code generator.
///
/// Data values are computed in double precision regardless of the
/// declared precision type, matching the analysis' type-blind model of R.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_INTERP_INTERP_H
#define EXO_INTERP_INTERP_H

#include "ir/Config.h"
#include "ir/Proc.h"
#include "support/Error.h"

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>

namespace exo {
namespace interp {

/// A strided view over caller- or interpreter-owned storage.
struct BufferView {
  double *Data = nullptr;
  std::vector<int64_t> Dims;
  std::vector<int64_t> Strides; ///< in elements

  unsigned rank() const { return static_cast<unsigned>(Dims.size()); }

  double &at(const std::vector<int64_t> &Idx) {
    assert(Idx.size() == Dims.size() && "rank mismatch");
    int64_t Off = 0;
    for (size_t D = 0; D < Idx.size(); ++D) {
      assert(Idx[D] >= 0 && Idx[D] < Dims[D] && "index out of bounds");
      Off += Idx[D] * Strides[D];
    }
    return Data[Off];
  }

  /// Dense row-major view over existing storage.
  static BufferView dense(double *Data, std::vector<int64_t> Dims);
};

/// An actual argument: a control value or a buffer view.
struct ArgValue {
  enum class Kind { Control, Buffer } K;
  int64_t Control = 0;
  BufferView Buffer;

  static ArgValue control(int64_t V) { return {Kind::Control, V, {}}; }
  static ArgValue buffer(BufferView B) {
    return {Kind::Buffer, 0, std::move(B)};
  }
};

/// The interpreter. Configuration state persists across run() calls (it
/// models hardware registers), which the equivalence-modulo-globals tests
/// exploit.
class Interp {
public:
  /// Executes \p P with the given arguments. Returns an error on runtime
  /// precondition violations (when checkAsserts is on), out-of-bounds
  /// accesses, or arity mismatches.
  Expected<bool> run(const ir::ProcRef &P, std::vector<ArgValue> Args);

  /// Enables checking of procedure preconditions at call time (default on).
  void setCheckAsserts(bool On) { CheckAsserts = On; }

  /// Configuration field access (values are control ints).
  int64_t readConfig(ir::Sym Field) const {
    auto It = Config.find(Field);
    return It == Config.end() ? 0 : It->second;
  }
  void writeConfig(ir::Sym Field, int64_t V) { Config[Field] = V; }
  const std::map<ir::Sym, int64_t> &configState() const { return Config; }
  void resetConfig() { Config.clear(); }

  /// Total statements executed (a cheap behavioural fingerprint used by
  /// benchmarks and tests).
  uint64_t statementsExecuted() const { return StmtCount; }

  // Internal state, public for the file-local executor.
  bool CheckAsserts = true;
  std::map<ir::Sym, int64_t> Config;
  std::deque<std::vector<double>> OwnedStorage;
  uint64_t StmtCount = 0;
};

} // namespace interp
} // namespace exo

#endif // EXO_INTERP_INTERP_H
