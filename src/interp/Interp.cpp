//===- interp/Interp.cpp ---------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "ir/Printer.h"
#include "support/MathExtras.h"

#include <cmath>
#include <variant>

using namespace exo;
using namespace exo::interp;
using namespace exo::ir;

BufferView BufferView::dense(double *Data, std::vector<int64_t> Dims) {
  BufferView B;
  B.Data = Data;
  B.Dims = Dims;
  B.Strides.assign(Dims.size(), 1);
  for (size_t D = Dims.size(); D-- > 1;)
    B.Strides[D - 1] = B.Strides[D] * Dims[D];
  return B;
}

namespace {

using ControlValue = int64_t;

/// A local environment entry.
using EnvValue = std::variant<ControlValue, BufferView>;

class Executor {
public:
  Executor(Interp &I) : I(I) {}

  Expected<bool> callProc(const ProcRef &P, std::vector<ArgValue> Args) {
    if (Args.size() != P->args().size())
      return makeError(Error::Kind::Internal,
                       "interp: arity mismatch calling " + P->name());
    std::unordered_map<Sym, EnvValue> Env;
    for (size_t A = 0; A < Args.size(); ++A) {
      const FnArg &Formal = P->args()[A];
      if (Formal.Ty.isControl()) {
        if (Args[A].K != ArgValue::Kind::Control)
          return makeError(Error::Kind::Internal,
                           "interp: control argument expected for " +
                               Formal.Name.name());
        Env[Formal.Name] = Args[A].Control;
      } else if (Formal.Ty.isTensor()) {
        if (Args[A].K != ArgValue::Kind::Buffer)
          return makeError(Error::Kind::Internal,
                           "interp: buffer argument expected for " +
                               Formal.Name.name());
        Env[Formal.Name] = Args[A].Buffer;
      } else {
        // Data scalar: rank-0 view.
        if (Args[A].K != ArgValue::Kind::Buffer)
          return makeError(Error::Kind::Internal,
                           "interp: scalar buffer expected for " +
                               Formal.Name.name());
        Env[Formal.Name] = Args[A].Buffer;
      }
    }
    if (I.CheckAsserts) {
      for (const ExprRef &Pred : P->preds()) {
        auto V = evalControl(Pred, Env);
        if (!V)
          return V.error();
        if (!*V)
          return makeError(Error::Kind::Precondition,
                           "interp: precondition of " + P->name() +
                               " violated: " + printExpr(Pred));
      }
    }
    return execBlock(P->body(), Env);
  }

private:
  Expected<bool> execBlock(const Block &B,
                           std::unordered_map<Sym, EnvValue> &Env) {
    for (const StmtRef &S : B) {
      auto R = execStmt(S, Env);
      if (!R)
        return R;
    }
    return true;
  }

  Expected<bool> execStmt(const StmtRef &S,
                          std::unordered_map<Sym, EnvValue> &Env) {
    ++I.StmtCount;
    switch (S->kind()) {
    case StmtKind::Pass:
      return true;
    case StmtKind::Assign:
    case StmtKind::Reduce: {
      auto Dst = locate(S->name(), S->indices(), Env);
      if (!Dst)
        return Dst.error();
      auto V = evalData(S->rhs(), Env);
      if (!V)
        return V.error();
      if (S->kind() == StmtKind::Assign)
        **Dst = *V;
      else
        **Dst += *V;
      return true;
    }
    case StmtKind::WriteConfig: {
      auto V = evalControl(S->rhs(), Env);
      if (!V)
        return V.error();
      I.writeConfig(S->field(), *V);
      return true;
    }
    case StmtKind::If: {
      auto C = evalControl(S->rhs(), Env);
      if (!C)
        return C.error();
      return execBlock(*C ? S->body() : S->orelse(), Env);
    }
    case StmtKind::For: {
      auto Lo = evalControl(S->lo(), Env);
      auto Hi = evalControl(S->hi(), Env);
      if (!Lo)
        return Lo.error();
      if (!Hi)
        return Hi.error();
      for (int64_t It = *Lo; It < *Hi; ++It) {
        Env[S->name()] = It;
        auto R = execBlock(S->body(), Env);
        if (!R)
          return R;
      }
      Env.erase(S->name());
      return true;
    }
    case StmtKind::Alloc: {
      const Type &T = S->allocType();
      std::vector<int64_t> Dims;
      int64_t Total = 1;
      for (const ExprRef &D : T.dims()) {
        auto V = evalControl(D, Env);
        if (!V)
          return V.error();
        if (*V <= 0)
          return makeError(Error::Kind::Internal,
                           "interp: non-positive dimension in alloc of " +
                               S->name().name());
        Dims.push_back(*V);
        Total *= *V;
      }
      I.OwnedStorage.emplace_back(static_cast<size_t>(Total),
                                  0.0); // zero-filled ("uninitialized")
      Env[S->name()] =
          BufferView::dense(I.OwnedStorage.back().data(), std::move(Dims));
      return true;
    }
    case StmtKind::Call: {
      std::vector<ArgValue> Args;
      for (const ExprRef &A : S->args()) {
        auto V = evalArg(A, Env);
        if (!V)
          return V.error();
        Args.push_back(std::move(*V));
      }
      return callProc(S->proc(), std::move(Args));
    }
    case StmtKind::WindowStmt: {
      auto W = evalWindow(S->rhs(), Env);
      if (!W)
        return W.error();
      Env[S->name()] = std::move(*W);
      return true;
    }
    }
    return makeError(Error::Kind::Internal, "interp: unhandled statement");
  }

  Expected<ArgValue> evalArg(const ExprRef &E,
                             std::unordered_map<Sym, EnvValue> &Env) {
    if (E->type().isControl()) {
      auto V = evalControl(E, Env);
      if (!V)
        return V.error();
      return ArgValue::control(*V);
    }
    if (E->kind() == ExprKind::WindowExpr) {
      auto W = evalWindow(E, Env);
      if (!W)
        return W.error();
      return ArgValue::buffer(std::move(*W));
    }
    if (E->kind() == ExprKind::Read && E->args().empty()) {
      auto It = Env.find(E->name());
      if (It == Env.end())
        return makeError(Error::Kind::Internal,
                         "interp: unbound buffer " + E->name().name());
      return ArgValue::buffer(std::get<BufferView>(It->second));
    }
    if (E->kind() == ExprKind::Read && E->type().isData()) {
      // Element passed to a data-scalar parameter: a rank-0 view.
      auto P = locate(E->name(), E->args(), Env);
      if (!P)
        return P.error();
      BufferView Scalar;
      Scalar.Data = *P;
      return ArgValue::buffer(std::move(Scalar));
    }
    return makeError(Error::Kind::Internal,
                     "interp: unsupported argument " + printExpr(E));
  }

  Expected<BufferView> evalWindow(const ExprRef &E,
                                  std::unordered_map<Sym, EnvValue> &Env) {
    auto It = Env.find(E->name());
    if (It == Env.end())
      return makeError(Error::Kind::Internal,
                       "interp: unbound buffer " + E->name().name());
    const BufferView &Base = std::get<BufferView>(It->second);
    const auto &Coords = E->winCoords();
    if (Coords.size() != Base.rank())
      return makeError(Error::Kind::Internal, "interp: window rank mismatch");
    BufferView Out;
    int64_t Offset = 0;
    for (size_t D = 0; D < Coords.size(); ++D) {
      auto Lo = evalControl(Coords[D].Lo, Env);
      if (!Lo)
        return Lo.error();
      // An interval may be empty at the very end of the dimension
      // (Lo == Dims[D]); a point coordinate selects element Lo and so
      // must be strictly inside, matching StaticChecks and the generated
      // C, which would otherwise index one past the buffer.
      if (*Lo < 0 || *Lo > Base.Dims[D] ||
          (!Coords[D].IsInterval && *Lo == Base.Dims[D]))
        return makeError(Error::Kind::Bounds,
                         "interp: window lower bound out of range");
      Offset += *Lo * Base.Strides[D];
      if (Coords[D].IsInterval) {
        auto Hi = evalControl(Coords[D].Hi, Env);
        if (!Hi)
          return Hi.error();
        if (*Hi < *Lo || *Hi > Base.Dims[D])
          return makeError(Error::Kind::Bounds,
                           "interp: window upper bound out of range");
        Out.Dims.push_back(*Hi - *Lo);
        Out.Strides.push_back(Base.Strides[D]);
      }
    }
    Out.Data = Base.Data + Offset;
    return Out;
  }

  Expected<double *> locate(Sym Name, const std::vector<ExprRef> &Indices,
                            std::unordered_map<Sym, EnvValue> &Env) {
    auto It = Env.find(Name);
    if (It == Env.end())
      return makeError(Error::Kind::Internal,
                       "interp: unbound buffer " + Name.name());
    BufferView &B = std::get<BufferView>(It->second);
    if (Indices.size() != B.rank())
      return makeError(Error::Kind::Internal,
                       "interp: access rank mismatch on " + Name.name());
    std::vector<int64_t> Idx;
    for (const ExprRef &E : Indices) {
      auto V = evalControl(E, Env);
      if (!V)
        return V.error();
      Idx.push_back(*V);
    }
    for (size_t D = 0; D < Idx.size(); ++D)
      if (Idx[D] < 0 || Idx[D] >= B.Dims[D])
        return makeError(Error::Kind::Bounds,
                         "interp: index " + std::to_string(Idx[D]) +
                             " out of bounds [0, " +
                             std::to_string(B.Dims[D]) + ") on " +
                             Name.name());
    return &B.at(Idx);
  }

  Expected<int64_t> evalControl(const ExprRef &E,
                                std::unordered_map<Sym, EnvValue> &Env) {
    switch (E->kind()) {
    case ExprKind::Const:
      if (E->type().elem() == ScalarKind::Bool)
        return static_cast<int64_t>(E->boolValue());
      return E->intValue();
    case ExprKind::Read: {
      auto It = Env.find(E->name());
      if (It == Env.end())
        return makeError(Error::Kind::Internal,
                         "interp: unbound control var " + E->name().name());
      return std::get<ControlValue>(It->second);
    }
    case ExprKind::ReadConfig:
      return I.readConfig(E->field());
    case ExprKind::StrideExpr: {
      auto It = Env.find(E->name());
      if (It == Env.end())
        return makeError(Error::Kind::Internal,
                         "interp: unbound buffer " + E->name().name());
      const BufferView &B = std::get<BufferView>(It->second);
      if (E->strideDim() >= B.rank())
        return makeError(Error::Kind::Internal,
                         "interp: stride dim out of range");
      return B.Strides[E->strideDim()];
    }
    case ExprKind::USub: {
      auto V = evalControl(E->args()[0], Env);
      if (!V)
        return V;
      return -*V;
    }
    case ExprKind::BinOp: {
      auto L = evalControl(E->args()[0], Env);
      if (!L)
        return L;
      auto R = evalControl(E->args()[1], Env);
      if (!R)
        return R;
      switch (E->binOp()) {
      case BinOpKind::Add:
        return *L + *R;
      case BinOpKind::Sub:
        return *L - *R;
      case BinOpKind::Mul:
        return *L * *R;
      case BinOpKind::Div:
        if (*R <= 0)
          return makeError(Error::Kind::Internal,
                           "interp: division by non-positive value");
        return floorDiv(*L, *R);
      case BinOpKind::Mod:
        if (*R <= 0)
          return makeError(Error::Kind::Internal,
                           "interp: modulo by non-positive value");
        return floorMod(*L, *R);
      case BinOpKind::And:
        return (*L != 0 && *R != 0) ? 1 : 0;
      case BinOpKind::Or:
        return (*L != 0 || *R != 0) ? 1 : 0;
      case BinOpKind::Eq:
        return *L == *R ? 1 : 0;
      case BinOpKind::Ne:
        return *L != *R ? 1 : 0;
      case BinOpKind::Lt:
        return *L < *R ? 1 : 0;
      case BinOpKind::Gt:
        return *L > *R ? 1 : 0;
      case BinOpKind::Le:
        return *L <= *R ? 1 : 0;
      case BinOpKind::Ge:
        return *L >= *R ? 1 : 0;
      }
      return makeError(Error::Kind::Internal, "interp: bad binop");
    }
    default:
      return makeError(Error::Kind::Internal,
                       "interp: not a control expression: " + printExpr(E));
    }
  }

  Expected<double> evalData(const ExprRef &E,
                            std::unordered_map<Sym, EnvValue> &Env) {
    switch (E->kind()) {
    case ExprKind::Const:
      if (E->type().isControl())
        return static_cast<double>(E->intValue());
      return E->dataValue();
    case ExprKind::Read: {
      if (E->type().isControl()) {
        auto V = evalControl(E, Env);
        if (!V)
          return V.error();
        return static_cast<double>(*V);
      }
      auto P = locate(E->name(), E->args(), Env);
      if (!P)
        return P.error();
      return **P;
    }
    case ExprKind::USub: {
      auto V = evalData(E->args()[0], Env);
      if (!V)
        return V;
      return -*V;
    }
    case ExprKind::BinOp: {
      if (E->type().isControl()) {
        auto V = evalControl(E, Env);
        if (!V)
          return V.error();
        return static_cast<double>(*V);
      }
      auto L = evalData(E->args()[0], Env);
      if (!L)
        return L;
      auto R = evalData(E->args()[1], Env);
      if (!R)
        return R;
      switch (E->binOp()) {
      case BinOpKind::Add:
        return *L + *R;
      case BinOpKind::Sub:
        return *L - *R;
      case BinOpKind::Mul:
        return *L * *R;
      case BinOpKind::Div:
        return *L / *R; // total per §4.1 (0/0 is not an error)
      default:
        return makeError(Error::Kind::Internal,
                         "interp: bad data binop " +
                             std::string(binOpName(E->binOp())));
      }
    }
    case ExprKind::BuiltIn: {
      std::vector<double> Args;
      for (const ExprRef &A : E->args()) {
        auto V = evalData(A, Env);
        if (!V)
          return V;
        Args.push_back(*V);
      }
      const std::string &F = E->builtin();
      if (F == "max" && Args.size() == 2)
        return std::max(Args[0], Args[1]);
      if (F == "min" && Args.size() == 2)
        return std::min(Args[0], Args[1]);
      if (F == "relu" && Args.size() == 1)
        return std::max(Args[0], 0.0);
      if (F == "abs" && Args.size() == 1)
        return std::fabs(Args[0]);
      if (F == "sqrt" && Args.size() == 1)
        return std::sqrt(Args[0]);
      if (F == "select" && Args.size() == 3)
        return Args[0] > 0.0 ? Args[1] : Args[2];
      return makeError(Error::Kind::Internal,
                       "interp: unknown builtin '" + F + "'");
    }
    default:
      return makeError(Error::Kind::Internal,
                       "interp: not a data expression: " + printExpr(E));
    }
  }

  Interp &I;
};

} // namespace

Expected<bool> Interp::run(const ProcRef &P, std::vector<ArgValue> Args) {
  Executor E(*this);
  return E.callProc(P, std::move(Args));
}
