//===- ir/Expr.cpp ---------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/Error.h"

using namespace exo;
using namespace exo::ir;

const char *exo::ir::binOpName(BinOpKind K) {
  switch (K) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Mod:
    return "%";
  case BinOpKind::And:
    return "and";
  case BinOpKind::Or:
    return "or";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Ne:
    return "!=";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Ge:
    return ">=";
  }
  return "?";
}

bool exo::ir::isBoolBinOp(BinOpKind K) {
  switch (K) {
  case BinOpKind::And:
  case BinOpKind::Or:
  case BinOpKind::Eq:
  case BinOpKind::Ne:
  case BinOpKind::Lt:
  case BinOpKind::Gt:
  case BinOpKind::Le:
  case BinOpKind::Ge:
    return true;
  default:
    return false;
  }
}

bool exo::ir::isCompareOp(BinOpKind K) {
  switch (K) {
  case BinOpKind::Eq:
  case BinOpKind::Ne:
  case BinOpKind::Lt:
  case BinOpKind::Gt:
  case BinOpKind::Le:
  case BinOpKind::Ge:
    return true;
  default:
    return false;
  }
}

ExprRef Expr::read(Sym Name, std::vector<ExprRef> Indices, Type Ty) {
  auto E = std::make_shared<Expr>(ExprKind::Read, std::move(Ty));
  E->Name = Name;
  E->Args = std::move(Indices);
  return E;
}

ExprRef Expr::constInt(int64_t V, ScalarKind K) {
  assert(isControlScalar(K) && K != ScalarKind::Bool && "bad int const kind");
  auto E = std::make_shared<Expr>(ExprKind::Const, Type(K));
  E->IntVal = V;
  return E;
}

ExprRef Expr::constBool(bool V) {
  auto E = std::make_shared<Expr>(ExprKind::Const, Type(ScalarKind::Bool));
  E->IntVal = V ? 1 : 0;
  return E;
}

ExprRef Expr::constData(double V, ScalarKind K) {
  assert(isDataScalar(K) && "bad data const kind");
  auto E = std::make_shared<Expr>(ExprKind::Const, Type(K));
  E->DataVal = V;
  return E;
}

ExprRef Expr::usub(ExprRef Operand) {
  auto E = std::make_shared<Expr>(ExprKind::USub, Operand->type());
  E->Args = {std::move(Operand)};
  return E;
}

ExprRef Expr::binOp(BinOpKind Op, ExprRef L, ExprRef R) {
  Type Ty = isBoolBinOp(Op) ? Type(ScalarKind::Bool) : L->type();
  auto E = std::make_shared<Expr>(ExprKind::BinOp, std::move(Ty));
  E->Op = Op;
  E->Args = {std::move(L), std::move(R)};
  return E;
}

ExprRef Expr::builtIn(const std::string &Name, std::vector<ExprRef> Args,
                      Type Ty) {
  auto E = std::make_shared<Expr>(ExprKind::BuiltIn, std::move(Ty));
  E->Builtin = Name;
  E->Args = std::move(Args);
  return E;
}

ExprRef Expr::window(Sym Base, std::vector<WinCoord> Coords, Type WinTy) {
  assert(WinTy.isTensor() && WinTy.isWindow() && "window type required");
  auto E = std::make_shared<Expr>(ExprKind::WindowExpr, std::move(WinTy));
  E->Name = Base;
  E->Coords = std::move(Coords);
  return E;
}

ExprRef Expr::stride(Sym Buffer, unsigned Dim) {
  auto E = std::make_shared<Expr>(ExprKind::StrideExpr,
                                  Type(ScalarKind::Stride));
  E->Name = Buffer;
  E->IntVal = Dim;
  return E;
}

ExprRef Expr::readConfig(Sym Config, Sym Field, Type Ty) {
  auto E = std::make_shared<Expr>(ExprKind::ReadConfig, std::move(Ty));
  E->Name = Config;
  E->Field = Field;
  return E;
}

std::vector<ExprRef> exo::ir::childExprs(const ExprRef &E) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::StrideExpr:
  case ExprKind::ReadConfig:
    return {};
  case ExprKind::Read:
  case ExprKind::USub:
  case ExprKind::BinOp:
  case ExprKind::BuiltIn:
    return E->args();
  case ExprKind::WindowExpr: {
    std::vector<ExprRef> Out;
    for (auto &C : E->winCoords()) {
      Out.push_back(C.Lo);
      Out.push_back(C.Hi); // null for point coordinates
    }
    return Out;
  }
  }
  return {};
}

ExprRef exo::ir::withNewArgs(const ExprRef &E, std::vector<ExprRef> NewArgs) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::StrideExpr:
  case ExprKind::ReadConfig:
    assert(NewArgs.empty() && "leaf expression has no children");
    return E;
  case ExprKind::Read:
    return Expr::read(E->name(), std::move(NewArgs), E->type());
  case ExprKind::USub:
    assert(NewArgs.size() == 1 && "usub has one operand");
    return Expr::usub(NewArgs[0]);
  case ExprKind::BinOp:
    assert(NewArgs.size() == 2 && "binop has two operands");
    return Expr::binOp(E->binOp(), NewArgs[0], NewArgs[1]);
  case ExprKind::BuiltIn:
    return Expr::builtIn(E->builtin(), std::move(NewArgs), E->type());
  case ExprKind::WindowExpr: {
    const auto &Coords = E->winCoords();
    assert(NewArgs.size() == 2 * Coords.size() && "coord list mismatch");
    std::vector<WinCoord> NewCoords;
    NewCoords.reserve(Coords.size());
    for (size_t I = 0; I < Coords.size(); ++I)
      NewCoords.push_back(
          {Coords[I].IsInterval, NewArgs[2 * I], NewArgs[2 * I + 1]});
    return Expr::window(E->name(), std::move(NewCoords), E->type());
  }
  }
  fatalError("withNewArgs: unhandled expression kind");
}
