//===- ir/StructuralEq.h - Structural AST equality -------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural equality on expressions, statements, and blocks. Symbols are
/// compared by identity, except for bound variables when an explicit
/// correspondence map is supplied (alpha-equivalence, used by tests and by
/// the unification engine's exact-match phase).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_STRUCTURALEQ_H
#define EXO_IR_STRUCTURALEQ_H

#include "ir/Stmt.h"

#include <unordered_map>

namespace exo {
namespace ir {

bool structurallyEqual(const ExprRef &A, const ExprRef &B);
bool structurallyEqual(const StmtRef &A, const StmtRef &B);
bool structurallyEqual(const Block &A, const Block &B);

/// Alpha-equivalence: \p Map carries the required correspondence from
/// symbols of A to symbols of B and is extended at binders (loops,
/// allocations, window statements).
bool alphaEquivalent(const Block &A, const Block &B,
                     std::unordered_map<Sym, Sym> Map);

} // namespace ir
} // namespace exo

#endif // EXO_IR_STRUCTURALEQ_H
