//===- ir/Proc.cpp ---------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Proc.h"

using namespace exo;
using namespace exo::ir;

const FnArg *Proc::findArg(Sym ArgName) const {
  for (const FnArg &A : Args)
    if (A.Name == ArgName)
      return &A;
  return nullptr;
}

std::shared_ptr<Proc> Proc::clone() const {
  auto P = std::make_shared<Proc>(Name, Args, Preds, Body);
  P->Instr = Instr;
  P->Parent = Parent;
  P->ConfigDelta = ConfigDelta;
  return P;
}
