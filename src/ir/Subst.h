//===- ir/Subst.h - Capture-avoiding substitution --------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Substitution of symbols by expressions, including the buffer/window
/// composition needed by inline(): when a tensor parameter is bound to a
/// window argument, accesses through the parameter are re-indexed into the
/// underlying buffer. The paper highlights this automatic re-indexing as a
/// key productivity win of scheduling over manual rewriting (§1).
///
/// Callers are responsible for freshness: replacement expressions must not
/// mention symbols bound inside the target fragment (scheduling ops mint
/// fresh names, so this holds by construction; it is asserted where cheap).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_SUBST_H
#define EXO_IR_SUBST_H

#include "ir/Stmt.h"

#include <unordered_map>

namespace exo {
namespace ir {

/// Mapping from symbols to replacement expressions. Replacements for
/// symbols used as buffers (indexed reads, assignment destinations,
/// window bases) must be Read (whole-buffer, i.e. a rename) or WindowExpr
/// nodes; replacements for scalar/control uses may be arbitrary
/// expressions.
using SymSubst = std::unordered_map<Sym, ExprRef>;

ExprRef substExpr(const ExprRef &E, const SymSubst &Map);
StmtRef substStmt(const StmtRef &S, const SymSubst &Map);
Block substBlock(const Block &B, const SymSubst &Map);

/// Composes indexing through a window: given the window's coordinates and
/// the indices applied to the window, yields the indices into the base
/// buffer. Point coordinates pass through; interval coordinates add their
/// lower bound to the next applied index.
std::vector<ExprRef> composeWindowIndices(const std::vector<WinCoord> &Coords,
                                          const std::vector<ExprRef> &Applied);

/// Composes a window-of-a-window into a single window on the base buffer.
std::vector<WinCoord> composeWindowCoords(const std::vector<WinCoord> &Inner,
                                          const std::vector<WinCoord> &Outer);

/// Renames every binder (loop iterators, allocations, window statements)
/// in \p B to fresh symbols, substituting uses. Used when duplicating a
/// block (unroll, inline) to maintain global symbol uniqueness.
Block refreshBinders(const Block &B);

} // namespace ir
} // namespace exo

#endif // EXO_IR_SUBST_H
