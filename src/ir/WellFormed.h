//===- ir/WellFormed.h - Lightweight IR well-formedness checks -*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cheap structural well-formedness pass over a procedure, in the shape
/// of rego-cpp's wf.h: a single O(n) walk asserting the invariants every
/// other pass is allowed to assume. It is asserted between scheduling
/// rewrites in debug builds (see deriveProc) so that a rewrite which
/// corrupts the tree — or records a dirty region that does not resolve in
/// the tree it claims to describe — fails at the rewrite, not three
/// analyses later via a stale effect-snapshot entry.
///
/// Checked invariants:
///   - every statement node is non-null and payload-complete for its kind
///     (For has bounds, Assign/Reduce/If/WriteConfig/WindowStmt have an
///     rhs, Call arity matches the callee signature);
///   - If and For bodies are non-empty (an empty block is spelled `pass`);
///   - only If carries an orelse;
///   - binders (loop iterators, allocations, window names) do not shadow
///     an enclosing binding or argument on the same path — the analysis
///     keys effect environments and canonical solver variables by Sym, so
///     shadowing would silently conflate two bindings;
///   - the recorded DirtyRegion, if any, resolves: its spine path indices
///     are in range, For steps descend into the body, and the replaced
///     range fits the block it names.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_WELLFORMED_H
#define EXO_IR_WELLFORMED_H

#include "ir/Proc.h"

#include <string>
#include <vector>

namespace exo {
namespace ir {

/// Returns every violated invariant as a human-readable message; empty
/// means the procedure is well-formed.
std::vector<std::string> wellFormednessErrors(const Proc &P);

/// Convenience predicate over wellFormednessErrors.
bool isWellFormed(const Proc &P);

/// Aborts via fatalError with the first violation; used from deriveProc
/// in debug builds.
void assertWellFormed(const Proc &P);

} // namespace ir
} // namespace exo

#endif // EXO_IR_WELLFORMED_H
