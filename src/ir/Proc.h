//===- ir/Proc.h - LoopIR procedures ---------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedures: the compilation unit of the language. A procedure carries
/// its arguments (with memory annotations), its asserted preconditions,
/// its body, an optional instruction annotation (the @instr C template of
/// §3.2.2), and a provenance link recording which procedure it was derived
/// from by scheduling — the backbone of the equivalence lattice (§6).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_PROC_H
#define EXO_IR_PROC_H

#include "ir/Stmt.h"

#include <set>

namespace exo {
namespace ir {

/// One formal argument.
struct FnArg {
  Sym Name;
  Type Ty;
  std::string Mem = "DRAM"; ///< memory annotation for tensor args
};

/// The @instr annotation: a C template with {arg} placeholders, plus an
/// optional global snippet (e.g. an #include) emitted once per file.
struct InstrInfo {
  std::string CTemplate;
  std::string CGlobal;
};

/// The region a scheduling rewrite replaced, recorded on the derived
/// procedure so incremental re-analysis knows which subtrees are new.
/// Everything outside the region — and outside the rebuilt spine leading
/// to it — is shared with the parent procedure by node identity.
struct DirtyRegion {
  /// One step of the spine path, mirroring analysis::PathStep (which the
  /// ir layer cannot name).
  struct Step {
    unsigned Index;           ///< statement index in the current block
    bool IntoOrelse = false;  ///< descend into orelse instead of body
  };

  /// True for rewrites with no cursor (whole-body walkers such as
  /// simplify, delete_pass, set_precision): nothing can be assumed shared.
  bool Whole = true;
  std::vector<Step> Path;     ///< spine from the proc body to the edit
  unsigned Begin = 0;         ///< first replaced statement in that block
  unsigned OldCount = 0;      ///< statements removed from the parent
  unsigned NewCount = 0;      ///< statements inserted in the derived proc
  /// The scheduling operator that made the edit ("split", "stage_mem",
  /// ...). Diagnostic only — cursor forwarding reports it when a rewrite
  /// invalidates a handle; analysis never branches on it.
  std::string Op;
};

/// A procedure. Immutable; scheduling produces new procedures linked by
/// provenance.
class Proc {
public:
  Proc(std::string Name, std::vector<FnArg> Args, std::vector<ExprRef> Preds,
       Block Body)
      : Name(std::move(Name)), Args(std::move(Args)), Preds(std::move(Preds)),
        Body(std::move(Body)) {}

  const std::string &name() const { return Name; }
  const std::vector<FnArg> &args() const { return Args; }
  /// Asserted preconditions (§3.1 item 6): control-typed boolean exprs.
  const std::vector<ExprRef> &preds() const { return Preds; }
  const Block &body() const { return Body; }

  bool isInstr() const { return Instr.has_value(); }
  const InstrInfo &instr() const {
    assert(Instr && "not an instruction");
    return *Instr;
  }

  /// The procedure this one was derived from (null for originals).
  const ProcRef &parent() const { return Parent; }
  /// Config fields (Config.field syms) this proc's derivation polluted:
  /// it is equivalent to its parent only modulo these globals (§4.3).
  const std::set<Sym> &configDelta() const { return ConfigDelta; }
  /// Which region of this proc the deriving rewrite replaced, when known.
  /// Meaningful only together with parent(); absent for originals.
  const std::optional<DirtyRegion> &dirtyRegion() const { return Dirty; }

  /// Finds an argument by name; returns nullptr if absent.
  const FnArg *findArg(Sym Name) const;

  std::string str() const;

  // Mutating-clone helpers (used by Builder and the scheduling ops).
  std::shared_ptr<Proc> clone() const;
  void setInstr(InstrInfo I) { Instr = std::move(I); }
  void setBody(Block B) { Body = std::move(B); }
  void setName(std::string N) { Name = std::move(N); }
  void setArgs(std::vector<FnArg> A) { Args = std::move(A); }
  void setPreds(std::vector<ExprRef> P) { Preds = std::move(P); }
  void setProvenance(ProcRef P, std::set<Sym> Delta) {
    Parent = std::move(P);
    ConfigDelta = std::move(Delta);
  }
  void setDirtyRegion(DirtyRegion R) { Dirty = std::move(R); }

private:
  std::string Name;
  std::vector<FnArg> Args;
  std::vector<ExprRef> Preds;
  Block Body;
  std::optional<InstrInfo> Instr;
  ProcRef Parent;
  std::set<Sym> ConfigDelta;
  std::optional<DirtyRegion> Dirty; ///< not copied by clone()
};

} // namespace ir
} // namespace exo

#endif // EXO_IR_PROC_H
