//===- ir/Sym.cpp ----------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Sym.h"

#include <mutex>
#include <vector>

using namespace exo;
using namespace exo::ir;

namespace {

/// The global name table. Index 0 is the invalid Sym.
struct SymTable {
  std::mutex Lock;
  std::vector<std::string> Names{""};
};

SymTable &table() {
  static SymTable T;
  return T;
}

} // namespace

Sym Sym::fresh(const std::string &Name) {
  SymTable &T = table();
  std::lock_guard<std::mutex> Guard(T.Lock);
  unsigned Id = static_cast<unsigned>(T.Names.size());
  T.Names.push_back(Name);
  return Sym(Id);
}

const std::string &Sym::name() const {
  SymTable &T = table();
  std::lock_guard<std::mutex> Guard(T.Lock);
  return T.Names[Id];
}

std::string Sym::uniqueName() const {
  return name() + "_" + std::to_string(Id);
}
