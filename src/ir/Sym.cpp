//===- ir/Sym.cpp ----------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Sym.h"

#include <deque>
#include <mutex>

using namespace exo;
using namespace exo::ir;

namespace {

/// The global name table. Index 0 is the invalid Sym.
///
/// A deque, not a vector: name() hands out references that outlive the
/// lock, and deque growth never relocates existing elements — with a
/// vector, a concurrent fresh() could reallocate the table and leave every
/// outstanding reference dangling. Entries are never erased, so a
/// reference, once returned, is valid for the life of the process.
struct SymTable {
  std::mutex Lock;
  std::deque<std::string> Names{""};
};

SymTable &table() {
  static SymTable T;
  return T;
}

} // namespace

Sym Sym::fresh(const std::string &Name) {
  SymTable &T = table();
  std::lock_guard<std::mutex> Guard(T.Lock);
  unsigned Id = static_cast<unsigned>(T.Names.size());
  T.Names.push_back(Name);
  return Sym(Id);
}

const std::string &Sym::name() const {
  SymTable &T = table();
  std::lock_guard<std::mutex> Guard(T.Lock);
  return T.Names[Id];
}

std::string Sym::uniqueName() const {
  return name() + "_" + std::to_string(Id);
}
