//===- ir/Subst.cpp --------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Subst.h"

#include "ir/Proc.h"
#include "support/Error.h"

using namespace exo;
using namespace exo::ir;

std::vector<ExprRef>
exo::ir::composeWindowIndices(const std::vector<WinCoord> &Coords,
                              const std::vector<ExprRef> &Applied) {
  std::vector<ExprRef> Out;
  Out.reserve(Coords.size());
  size_t Next = 0;
  for (const WinCoord &C : Coords) {
    if (!C.IsInterval) {
      Out.push_back(C.Lo);
      continue;
    }
    assert(Next < Applied.size() && "not enough indices for window rank");
    ExprRef Idx = Applied[Next++];
    // base index = lo + idx; fold the common lo == 0 case.
    if (C.Lo->kind() == ExprKind::Const && C.Lo->intValue() == 0)
      Out.push_back(Idx);
    else
      Out.push_back(Expr::binOp(BinOpKind::Add, C.Lo, Idx));
  }
  assert(Next == Applied.size() && "too many indices for window rank");
  return Out;
}

std::vector<WinCoord>
exo::ir::composeWindowCoords(const std::vector<WinCoord> &Inner,
                             const std::vector<WinCoord> &Outer) {
  // Inner: coords of the existing window w over base b.
  // Outer: coords applied to w. Result: coords over b.
  std::vector<WinCoord> Out;
  Out.reserve(Inner.size());
  size_t Next = 0;
  auto Offset = [](const ExprRef &Lo, const ExprRef &E) -> ExprRef {
    if (Lo->kind() == ExprKind::Const && Lo->intValue() == 0)
      return E;
    return Expr::binOp(BinOpKind::Add, Lo, E);
  };
  for (const WinCoord &C : Inner) {
    if (!C.IsInterval) {
      Out.push_back(C);
      continue;
    }
    assert(Next < Outer.size() && "outer coords do not cover window rank");
    const WinCoord &O = Outer[Next++];
    if (O.IsInterval)
      Out.push_back({true, Offset(C.Lo, O.Lo), Offset(C.Lo, O.Hi)});
    else
      Out.push_back({false, Offset(C.Lo, O.Lo), nullptr});
  }
  assert(Next == Outer.size() && "too many outer coords");
  return Out;
}

namespace {

class Substituter {
public:
  explicit Substituter(const SymSubst &Map) : Map(Map) {}

  const ExprRef *lookup(Sym S) const {
    auto It = Map.find(S);
    return It == Map.end() ? nullptr : &It->second;
  }

  ExprRef expr(const ExprRef &E) {
    if (!E)
      return E;
    switch (E->kind()) {
    case ExprKind::Const:
      return E;
    case ExprKind::Read: {
      std::vector<ExprRef> Idx;
      Idx.reserve(E->args().size());
      for (auto &I : E->args())
        Idx.push_back(expr(I));
      const ExprRef *R = lookup(E->name());
      if (!R)
        return Expr::read(E->name(), std::move(Idx), E->type());
      if (Idx.empty() && !(*R)->type().isTensor())
        return *R; // scalar / control use: drop in the replacement
      // Buffer use: the replacement must be a rename or a window.
      if ((*R)->kind() == ExprKind::Read && (*R)->args().empty())
        return Expr::read((*R)->name(), std::move(Idx), E->type());
      if ((*R)->kind() == ExprKind::WindowExpr) {
        if (Idx.empty()) // whole-buffer use: pass the window itself
          return *R;
        return Expr::read((*R)->name(),
                          composeWindowIndices((*R)->winCoords(), Idx),
                          E->type());
      }
      fatalError("substExpr: buffer replaced by non-buffer expression");
    }
    case ExprKind::USub:
      return Expr::usub(expr(E->args()[0]));
    case ExprKind::BinOp:
      return Expr::binOp(E->binOp(), expr(E->args()[0]), expr(E->args()[1]));
    case ExprKind::BuiltIn: {
      std::vector<ExprRef> Args;
      Args.reserve(E->args().size());
      for (auto &A : E->args())
        Args.push_back(expr(A));
      return Expr::builtIn(E->builtin(), std::move(Args), E->type());
    }
    case ExprKind::WindowExpr: {
      std::vector<WinCoord> Coords;
      Coords.reserve(E->winCoords().size());
      for (auto &C : E->winCoords())
        Coords.push_back({C.IsInterval, expr(C.Lo),
                          C.Hi ? expr(C.Hi) : nullptr});
      const ExprRef *R = lookup(E->name());
      if (!R)
        return Expr::window(E->name(), std::move(Coords), E->type());
      if ((*R)->kind() == ExprKind::Read && (*R)->args().empty())
        return Expr::window((*R)->name(), std::move(Coords), E->type());
      if ((*R)->kind() == ExprKind::WindowExpr)
        return Expr::window((*R)->name(),
                            composeWindowCoords((*R)->winCoords(), Coords),
                            E->type());
      fatalError("substExpr: window base replaced by non-buffer");
    }
    case ExprKind::StrideExpr: {
      const ExprRef *R = lookup(E->name());
      if (!R)
        return E;
      if ((*R)->kind() == ExprKind::Read && (*R)->args().empty())
        return Expr::stride((*R)->name(), E->strideDim());
      if ((*R)->kind() == ExprKind::WindowExpr) {
        // The stride of window dim k is the stride of the base dimension
        // the k-th interval coordinate maps to (windows never change
        // strides, only offsets and rank).
        unsigned K = E->strideDim(), Seen = 0;
        const auto &Coords = (*R)->winCoords();
        for (unsigned D = 0; D < Coords.size(); ++D) {
          if (!Coords[D].IsInterval)
            continue;
          if (Seen == K)
            return Expr::stride((*R)->name(), D);
          ++Seen;
        }
        fatalError("substExpr: stride dim out of window rank");
      }
      fatalError("substExpr: stride base replaced by non-buffer");
    }
    case ExprKind::ReadConfig:
      return E;
    }
    fatalError("substExpr: unhandled kind");
  }

  StmtRef stmt(const StmtRef &S) {
    switch (S->kind()) {
    case StmtKind::Assign:
    case StmtKind::Reduce: {
      std::vector<ExprRef> Idx;
      Idx.reserve(S->indices().size());
      for (auto &I : S->indices())
        Idx.push_back(expr(I));
      ExprRef Rhs = expr(S->rhs());
      Sym Dst = S->name();
      if (const ExprRef *R = lookup(Dst)) {
        if ((*R)->kind() == ExprKind::Read && (*R)->args().empty()) {
          Dst = (*R)->name();
        } else if ((*R)->kind() == ExprKind::WindowExpr) {
          Dst = (*R)->name();
          Idx = composeWindowIndices((*R)->winCoords(), Idx);
        } else {
          fatalError("substStmt: write destination replaced by non-buffer");
        }
      }
      return S->kind() == StmtKind::Assign
                 ? Stmt::assign(Dst, std::move(Idx), std::move(Rhs))
                 : Stmt::reduce(Dst, std::move(Idx), std::move(Rhs));
    }
    case StmtKind::WriteConfig:
      return Stmt::writeConfig(S->name(), S->field(), expr(S->rhs()));
    case StmtKind::Pass:
      return S;
    case StmtKind::If:
      return Stmt::ifStmt(expr(S->rhs()), block(S->body()),
                          block(S->orelse()));
    case StmtKind::For:
      assert(!Map.count(S->name()) && "substituting a bound iterator");
      return Stmt::forStmt(S->name(), expr(S->lo()), expr(S->hi()),
                           block(S->body()));
    case StmtKind::Alloc: {
      assert(!Map.count(S->name()) && "substituting a bound allocation");
      const Type &T = S->allocType();
      if (!T.isTensor())
        return S;
      std::vector<ExprRef> Dims;
      Dims.reserve(T.dims().size());
      for (auto &D : T.dims())
        Dims.push_back(expr(D));
      return Stmt::alloc(S->name(),
                         Type::tensor(T.elem(), std::move(Dims), T.isWindow()),
                         S->memName());
    }
    case StmtKind::Call: {
      std::vector<ExprRef> Args;
      Args.reserve(S->args().size());
      for (auto &A : S->args())
        Args.push_back(expr(A));
      return Stmt::call(S->proc(), std::move(Args));
    }
    case StmtKind::WindowStmt:
      assert(!Map.count(S->name()) && "substituting a bound window");
      return Stmt::windowStmt(S->name(), expr(S->rhs()));
    }
    fatalError("substStmt: unhandled kind");
  }

  Block block(const Block &B) {
    Block Out;
    Out.reserve(B.size());
    for (auto &S : B)
      Out.push_back(stmt(S));
    return Out;
  }

private:
  const SymSubst &Map;
};

} // namespace

ExprRef exo::ir::substExpr(const ExprRef &E, const SymSubst &Map) {
  return Substituter(Map).expr(E);
}

StmtRef exo::ir::substStmt(const StmtRef &S, const SymSubst &Map) {
  return Substituter(Map).stmt(S);
}

Block exo::ir::substBlock(const Block &B, const SymSubst &Map) {
  return Substituter(Map).block(B);
}

namespace {

StmtRef refreshStmt(const StmtRef &S, SymSubst &Map);

Block refreshBlock(const Block &B, SymSubst Map) {
  Block Out;
  Out.reserve(B.size());
  for (auto &S : B)
    Out.push_back(refreshStmt(S, Map));
  return Out;
}

StmtRef refreshStmt(const StmtRef &S, SymSubst &Map) {
  switch (S->kind()) {
  case StmtKind::For: {
    StmtRef Renamed = substStmt(S, Map);
    Sym Fresh = S->name().copy();
    SymSubst Inner = Map;
    Inner[S->name()] = Expr::read(Fresh, {}, Type(ScalarKind::Index));
    Block Body = refreshBlock(S->body(), Inner);
    return Stmt::forStmt(Fresh, Renamed->lo(), Renamed->hi(),
                         std::move(Body));
  }
  case StmtKind::Alloc: {
    StmtRef Renamed = substStmt(S, Map);
    Sym Fresh = S->name().copy();
    Map[S->name()] = Expr::read(Fresh, {}, Renamed->allocType());
    return Stmt::alloc(Fresh, Renamed->allocType(), Renamed->memName());
  }
  case StmtKind::WindowStmt: {
    StmtRef Renamed = substStmt(S, Map);
    Sym Fresh = S->name().copy();
    Map[S->name()] = Expr::read(Fresh, {}, Renamed->rhs()->type());
    return Stmt::windowStmt(Fresh, Renamed->rhs());
  }
  case StmtKind::If: {
    ExprRef Cond = substExpr(S->rhs(), Map);
    return Stmt::ifStmt(Cond, refreshBlock(S->body(), Map),
                        refreshBlock(S->orelse(), Map));
  }
  default:
    return substStmt(S, Map);
  }
}

} // namespace

Block exo::ir::refreshBinders(const Block &B) {
  return refreshBlock(B, SymSubst{});
}
