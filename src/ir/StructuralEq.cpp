//===- ir/StructuralEq.cpp -------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/StructuralEq.h"

#include "ir/Proc.h"

using namespace exo;
using namespace exo::ir;

namespace {

/// Equality walker; with a symbol correspondence it implements
/// alpha-equivalence, without one plain structural equality.
class EqWalker {
public:
  explicit EqWalker(std::unordered_map<Sym, Sym> *Map) : Map(Map) {}

  bool symEq(Sym A, Sym B) const {
    if (Map) {
      auto It = Map->find(A);
      if (It != Map->end())
        return It->second == B;
    }
    return A == B;
  }

  void bind(Sym A, Sym B) {
    if (Map)
      (*Map)[A] = B;
    // Without a map, binders must literally coincide; symEq handles it.
  }

  bool exprEq(const ExprRef &A, const ExprRef &B) {
    if (A == B)
      return true;
    if (!A || !B)
      return false;
    if (A->kind() != B->kind())
      return false;
    switch (A->kind()) {
    case ExprKind::Read: {
      if (!symEq(A->name(), B->name()) || A->args().size() != B->args().size())
        return false;
      return allExprEq(A->args(), B->args());
    }
    case ExprKind::Const:
      if (A->type().elem() != B->type().elem())
        return false;
      if (A->type().isControl())
        return A->IntVal == B->IntVal;
      return A->dataValue() == B->dataValue();
    case ExprKind::USub:
      return exprEq(A->args()[0], B->args()[0]);
    case ExprKind::BinOp:
      return A->binOp() == B->binOp() && allExprEq(A->args(), B->args());
    case ExprKind::BuiltIn:
      return A->builtin() == B->builtin() && allExprEq(A->args(), B->args());
    case ExprKind::WindowExpr: {
      if (!symEq(A->name(), B->name()) ||
          A->winCoords().size() != B->winCoords().size())
        return false;
      for (size_t I = 0; I < A->winCoords().size(); ++I) {
        const WinCoord &CA = A->winCoords()[I], &CB = B->winCoords()[I];
        if (CA.IsInterval != CB.IsInterval || !exprEq(CA.Lo, CB.Lo))
          return false;
        if (CA.IsInterval && !exprEq(CA.Hi, CB.Hi))
          return false;
      }
      return true;
    }
    case ExprKind::StrideExpr:
      return symEq(A->name(), B->name()) && A->strideDim() == B->strideDim();
    case ExprKind::ReadConfig:
      return A->name() == B->name() && A->field() == B->field();
    }
    return false;
  }

  bool allExprEq(const std::vector<ExprRef> &A, const std::vector<ExprRef> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!exprEq(A[I], B[I]))
        return false;
    return true;
  }

  bool stmtEq(const StmtRef &A, const StmtRef &B) {
    if (A == B)
      return true;
    if (!A || !B || A->kind() != B->kind())
      return false;
    switch (A->kind()) {
    case StmtKind::Assign:
    case StmtKind::Reduce:
      return symEq(A->name(), B->name()) &&
             allExprEq(A->indices(), B->indices()) &&
             exprEq(A->rhs(), B->rhs());
    case StmtKind::WriteConfig:
      return A->name() == B->name() && A->field() == B->field() &&
             exprEq(A->rhs(), B->rhs());
    case StmtKind::Pass:
      return true;
    case StmtKind::If:
      return exprEq(A->rhs(), B->rhs()) && blockEq(A->body(), B->body()) &&
             blockEq(A->orelse(), B->orelse());
    case StmtKind::For: {
      if (!exprEq(A->lo(), B->lo()) || !exprEq(A->hi(), B->hi()))
        return false;
      bind(A->name(), B->name());
      return blockEq(A->body(), B->body());
    }
    case StmtKind::Alloc: {
      if (!A->allocType().equals(B->allocType()) ||
          A->memName() != B->memName())
        return false;
      bind(A->name(), B->name());
      return Map != nullptr || A->name() == B->name();
    }
    case StmtKind::Call:
      return A->proc() == B->proc() && allExprEq(A->args(), B->args());
    case StmtKind::WindowStmt: {
      if (!exprEq(A->rhs(), B->rhs()))
        return false;
      bind(A->name(), B->name());
      return Map != nullptr || A->name() == B->name();
    }
    }
    return false;
  }

  bool blockEq(const Block &A, const Block &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!stmtEq(A[I], B[I]))
        return false;
    return true;
  }

private:
  std::unordered_map<Sym, Sym> *Map;
};

} // namespace

bool exo::ir::structurallyEqual(const ExprRef &A, const ExprRef &B) {
  return EqWalker(nullptr).exprEq(A, B);
}

bool exo::ir::structurallyEqual(const StmtRef &A, const StmtRef &B) {
  return EqWalker(nullptr).stmtEq(A, B);
}

bool exo::ir::structurallyEqual(const Block &A, const Block &B) {
  return EqWalker(nullptr).blockEq(A, B);
}

bool exo::ir::alphaEquivalent(const Block &A, const Block &B,
                              std::unordered_map<Sym, Sym> Map) {
  EqWalker W(&Map);
  return W.blockEq(A, B);
}
