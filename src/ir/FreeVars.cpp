//===- ir/FreeVars.cpp -----------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/FreeVars.h"

#include "ir/Proc.h"

using namespace exo;
using namespace exo::ir;

namespace {

struct Collector {
  std::set<Sym> Free;
  std::set<Sym> Bound;
  std::set<Sym> Config;

  void use(Sym S) {
    if (!Bound.count(S))
      Free.insert(S);
  }

  void visitExpr(const ExprRef &E) {
    if (!E)
      return;
    switch (E->kind()) {
    case ExprKind::Read:
    case ExprKind::WindowExpr:
    case ExprKind::StrideExpr:
      use(E->name());
      break;
    case ExprKind::ReadConfig:
      Config.insert(E->field());
      break;
    default:
      break;
    }
    for (auto &C : childExprs(E))
      visitExpr(C);
  }

  void visitStmt(const StmtRef &S) {
    switch (S->kind()) {
    case StmtKind::Assign:
    case StmtKind::Reduce:
      use(S->name());
      for (auto &I : S->indices())
        visitExpr(I);
      visitExpr(S->rhs());
      return;
    case StmtKind::WriteConfig:
      Config.insert(S->field());
      visitExpr(S->rhs());
      return;
    case StmtKind::Pass:
      return;
    case StmtKind::If:
      visitExpr(S->rhs());
      visitBlock(S->body());
      visitBlock(S->orelse());
      return;
    case StmtKind::For: {
      visitExpr(S->lo());
      visitExpr(S->hi());
      bool Inserted = Bound.insert(S->name()).second;
      visitBlock(S->body());
      if (Inserted)
        Bound.erase(S->name());
      return;
    }
    case StmtKind::Alloc:
      for (auto &D : S->allocType().dims())
        visitExpr(D);
      Bound.insert(S->name());
      return;
    case StmtKind::Call:
      for (auto &A : S->args())
        visitExpr(A);
      return;
    case StmtKind::WindowStmt:
      visitExpr(S->rhs());
      Bound.insert(S->name());
      return;
    }
  }

  void visitBlock(const Block &B) {
    // Alloc/WindowStmt bindings scope to the rest of the block; save and
    // restore the bound set around the block.
    std::set<Sym> Saved = Bound;
    for (auto &S : B)
      visitStmt(S);
    Bound = std::move(Saved);
  }
};

} // namespace

std::set<Sym> exo::ir::freeVars(const ExprRef &E) {
  Collector C;
  C.visitExpr(E);
  return std::move(C.Free);
}

std::set<Sym> exo::ir::freeVars(const StmtRef &S) {
  Collector C;
  C.visitStmt(S);
  return std::move(C.Free);
}

std::set<Sym> exo::ir::freeVars(const Block &B) {
  Collector C;
  C.visitBlock(B);
  return std::move(C.Free);
}

std::set<Sym> exo::ir::configFields(const StmtRef &S) {
  Collector C;
  C.visitStmt(S);
  return std::move(C.Config);
}

std::set<Sym> exo::ir::configFields(const Block &B) {
  Collector C;
  C.visitBlock(B);
  return std::move(C.Config);
}

namespace {

void collectBound(const Block &B, std::set<Sym> &Out) {
  for (auto &S : B) {
    switch (S->kind()) {
    case StmtKind::For:
      Out.insert(S->name());
      collectBound(S->body(), Out);
      break;
    case StmtKind::If:
      collectBound(S->body(), Out);
      collectBound(S->orelse(), Out);
      break;
    case StmtKind::Alloc:
    case StmtKind::WindowStmt:
      Out.insert(S->name());
      break;
    default:
      break;
    }
  }
}

} // namespace

std::set<Sym> exo::ir::boundVars(const Block &B) {
  std::set<Sym> Out;
  collectBound(B, Out);
  return Out;
}

bool exo::ir::occursFree(Sym S, const Block &B) {
  return freeVars(B).count(S) != 0;
}
