//===- ir/Sym.h - Interned identifiers -------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sym: a globally unique identifier with a human-readable base name.
/// Distinct Syms with the same base name never collide; the printer
/// disambiguates with the numeric id when needed. Scheduling rewrites mint
/// fresh Syms liberally (split loop halves, staged buffers, ...).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_SYM_H
#define EXO_IR_SYM_H

#include <cstdint>
#include <functional>
#include <string>

namespace exo {
namespace ir {

/// A unique program identifier. Copyable, cheap, hashable.
class Sym {
public:
  Sym() : Id(0) {}

  /// Mints a new identifier with the given base name.
  static Sym fresh(const std::string &Name);

  /// Mints a new identifier reusing this one's base name.
  Sym copy() const { return fresh(name()); }

  bool valid() const { return Id != 0; }
  unsigned id() const { return Id; }

  /// The base name (without uniquifying suffix).
  const std::string &name() const;

  /// Base name plus "_<id>" — always unambiguous.
  std::string uniqueName() const;

  bool operator==(const Sym &O) const { return Id == O.Id; }
  bool operator!=(const Sym &O) const { return Id != O.Id; }
  bool operator<(const Sym &O) const { return Id < O.Id; }

private:
  explicit Sym(unsigned Id) : Id(Id) {}
  unsigned Id;
};

} // namespace ir
} // namespace exo

template <> struct std::hash<exo::ir::Sym> {
  size_t operator()(const exo::ir::Sym &S) const {
    return std::hash<unsigned>()(S.id());
  }
};

#endif // EXO_IR_SYM_H
