//===- ir/Builder.h - Programmatic proc construction -----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProcBuilder: a typed fluent API for constructing procedures from C++.
/// The surface-syntax parser (frontend/Parser.h) is the usual authoring
/// path; the builder serves unit tests and generated code. It tracks
/// declared variable types so element reads and windows are typed
/// automatically.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_BUILDER_H
#define EXO_IR_BUILDER_H

#include "ir/Proc.h"

#include <unordered_map>

namespace exo {
namespace ir {

class ProcBuilder {
public:
  explicit ProcBuilder(std::string Name) : Name(std::move(Name)) {
    Blocks.emplace_back();
  }

  // Arguments -------------------------------------------------------------

  /// Adds a control-typed argument (size, index, int, bool, stride).
  Sym controlArg(const std::string &ArgName, ScalarKind K);
  /// Adds a size argument (the common case).
  Sym sizeArg(const std::string &ArgName) {
    return controlArg(ArgName, ScalarKind::Size);
  }
  /// Adds a data tensor argument.
  Sym tensorArg(const std::string &ArgName, ScalarKind Elem,
                std::vector<ExprRef> Dims, const std::string &Mem = "DRAM",
                bool IsWindow = false);
  /// Adds a data scalar argument.
  Sym scalarArg(const std::string &ArgName, ScalarKind Elem,
                const std::string &Mem = "DRAM");

  /// Adds an asserted precondition.
  void pred(ExprRef E) { Preds.push_back(std::move(E)); }

  // Expressions -----------------------------------------------------------

  /// Reads a declared variable (element read when indices are given).
  ExprRef rd(Sym Var, std::vector<ExprRef> Indices = {}) const;
  /// Builds a window expression over a declared buffer.
  ExprRef win(Sym Var, std::vector<WinCoord> Coords) const;
  /// Declared type lookup.
  const Type &typeOf(Sym Var) const;

  // Statements ------------------------------------------------------------

  void assign(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs);
  void reduce(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs);
  void writeConfig(Sym Config, Sym Field, ExprRef Rhs);
  void pass();
  void call(ProcRef Callee, std::vector<ExprRef> Args);

  /// Declares a local buffer / scalar.
  Sym allocScalar(const std::string &VarName, ScalarKind Elem,
                  const std::string &Mem = "DRAM");
  Sym allocTensor(const std::string &VarName, ScalarKind Elem,
                  std::vector<ExprRef> Dims, const std::string &Mem = "DRAM");
  /// Binds a window of a declared buffer to a new name.
  Sym windowAlias(const std::string &VarName, Sym Base,
                  std::vector<WinCoord> Coords);

  /// Opens `for <name> in seq(lo, hi):`; returns the iterator symbol.
  Sym beginFor(const std::string &IterName, ExprRef Lo, ExprRef Hi);
  void endFor();

  void beginIf(ExprRef Cond);
  void beginElse();
  void endIf();

  /// Finishes construction. The builder is dead afterwards.
  ProcRef result();

private:
  void append(StmtRef S) { Blocks.back().push_back(std::move(S)); }
  void declare(Sym S, Type T);

  std::string Name;
  std::vector<FnArg> Args;
  std::vector<ExprRef> Preds;
  std::vector<Block> Blocks;
  /// Control stack describing what each open block belongs to.
  struct Frame {
    enum class Kind { For, IfThen, IfElse } FrameKind;
    Sym Iter;
    ExprRef A, B; ///< For: lo/hi. If: condition in A, then-block in Saved.
    Block Saved;  ///< for IfElse: the completed then-block
  };
  std::vector<Frame> Frames;
  std::unordered_map<Sym, Type> Types;
};

/// Shorthand expression constructors used heavily by tests and apps.
inline ExprRef litInt(int64_t V, ScalarKind K = ScalarKind::Int) {
  return Expr::constInt(V, K);
}
inline ExprRef litData(double V, ScalarKind K = ScalarKind::R) {
  return Expr::constData(V, K);
}
inline ExprRef eAdd(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Add, std::move(A), std::move(B));
}
inline ExprRef eSub(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Sub, std::move(A), std::move(B));
}
inline ExprRef eMul(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Mul, std::move(A), std::move(B));
}
inline ExprRef eDiv(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Div, std::move(A), std::move(B));
}
inline ExprRef eMod(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Mod, std::move(A), std::move(B));
}
inline ExprRef eLt(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Lt, std::move(A), std::move(B));
}
inline ExprRef eLe(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Le, std::move(A), std::move(B));
}
inline ExprRef eEq(ExprRef A, ExprRef B) {
  return Expr::binOp(BinOpKind::Eq, std::move(A), std::move(B));
}
inline WinCoord pt(ExprRef E) { return {false, std::move(E), nullptr}; }
inline WinCoord iv(ExprRef Lo, ExprRef Hi) {
  return {true, std::move(Lo), std::move(Hi)};
}

} // namespace ir
} // namespace exo

#endif // EXO_IR_BUILDER_H
