//===- ir/Printer.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/Printer.h"

#include <map>
#include <set>
#include <sstream>

using namespace exo;
using namespace exo::ir;

namespace {

/// Chooses printable names: the base name when globally unambiguous within
/// the printed fragment, otherwise base_id.
class NameEnv {
public:
  void noteSym(Sym S) {
    if (!S.valid())
      return;
    auto [It, Inserted] = ByName.try_emplace(S.name());
    It->second.insert(S);
  }

  void noteExpr(const ExprRef &E) {
    if (!E)
      return;
    switch (E->kind()) {
    case ExprKind::Read:
    case ExprKind::WindowExpr:
    case ExprKind::StrideExpr:
      noteSym(E->name());
      break;
    default:
      break;
    }
    for (auto &C : childExprs(E))
      noteExpr(C);
  }

  void noteStmt(const StmtRef &S) {
    noteSym(S->name());
    for (auto &I : S->indices())
      noteExpr(I);
    if (S->Rhs)
      noteExpr(S->Rhs);
    if (S->kind() == StmtKind::For) {
      noteExpr(S->lo());
      noteExpr(S->hi());
    }
    if (S->kind() == StmtKind::Alloc)
      for (auto &D : S->allocType().dims())
        noteExpr(D);
    for (auto &Sub : S->body())
      noteStmt(Sub);
    for (auto &Sub : S->orelse())
      noteStmt(Sub);
  }

  std::string nameOf(Sym S) const {
    auto It = ByName.find(S.name());
    if (It != ByName.end() && It->second.size() > 1)
      return S.uniqueName();
    return S.name();
  }

private:
  std::map<std::string, std::set<Sym>> ByName;
};

/// Operator precedence for parenthesization (higher binds tighter).
int precOf(BinOpKind K) {
  switch (K) {
  case BinOpKind::Or:
    return 1;
  case BinOpKind::And:
    return 2;
  case BinOpKind::Eq:
  case BinOpKind::Ne:
  case BinOpKind::Lt:
  case BinOpKind::Gt:
  case BinOpKind::Le:
  case BinOpKind::Ge:
    return 3;
  case BinOpKind::Add:
  case BinOpKind::Sub:
    return 4;
  case BinOpKind::Mul:
  case BinOpKind::Div:
  case BinOpKind::Mod:
    return 5;
  }
  return 0;
}

std::string formatData(double V) {
  std::ostringstream OS;
  OS << V;
  std::string S = OS.str();
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

class IRPrinter {
public:
  explicit IRPrinter(const NameEnv &Names) : Names(Names) {}

  std::string expr(const ExprRef &E, int ParentPrec = 0) {
    switch (E->kind()) {
    case ExprKind::Read: {
      std::string Out = Names.nameOf(E->name());
      if (!E->args().empty()) {
        Out += '[';
        for (size_t I = 0; I < E->args().size(); ++I) {
          if (I != 0)
            Out += ", ";
          Out += expr(E->args()[I]);
        }
        Out += ']';
      }
      return Out;
    }
    case ExprKind::Const:
      if (E->type().elem() == ScalarKind::Bool)
        return E->boolValue() ? "True" : "False";
      if (E->type().isControl())
        return std::to_string(E->intValue());
      return formatData(E->dataValue());
    case ExprKind::USub: {
      std::string Out = "-" + expr(E->args()[0], 6);
      return ParentPrec > 5 ? "(" + Out + ")" : Out;
    }
    case ExprKind::BinOp: {
      int P = precOf(E->binOp());
      std::string Out = expr(E->args()[0], P) + " " +
                        binOpName(E->binOp()) + " " +
                        expr(E->args()[1], P + 1);
      return P < ParentPrec ? "(" + Out + ")" : Out;
    }
    case ExprKind::BuiltIn: {
      std::string Out = E->builtin() + "(";
      for (size_t I = 0; I < E->args().size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += expr(E->args()[I]);
      }
      return Out + ")";
    }
    case ExprKind::WindowExpr: {
      std::string Out = Names.nameOf(E->name()) + "[";
      const auto &Coords = E->winCoords();
      for (size_t I = 0; I < Coords.size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += expr(Coords[I].Lo);
        if (Coords[I].IsInterval)
          Out += ":" + expr(Coords[I].Hi);
      }
      return Out + "]";
    }
    case ExprKind::StrideExpr:
      return "stride(" + Names.nameOf(E->name()) + ", " +
             std::to_string(E->strideDim()) + ")";
    case ExprKind::ReadConfig:
      return E->name().name() + "." + E->field().name();
    }
    return "?";
  }

  std::string type(const Type &T) {
    std::string Out = scalarKindName(T.elem());
    if (T.isTensor()) {
      Out += '[';
      for (size_t I = 0; I < T.dims().size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += expr(T.dims()[I]);
      }
      Out += ']';
      if (T.isWindow())
        Out = "[" + Out + "]";
    }
    return Out;
  }

  void stmt(Printer &P, const StmtRef &S) {
    switch (S->kind()) {
    case StmtKind::Assign:
    case StmtKind::Reduce: {
      std::string Dst = Names.nameOf(S->name());
      if (!S->indices().empty()) {
        Dst += '[';
        for (size_t I = 0; I < S->indices().size(); ++I) {
          if (I != 0)
            Dst += ", ";
          Dst += expr(S->indices()[I]);
        }
        Dst += ']';
      }
      const char *Op = S->kind() == StmtKind::Assign ? " = " : " += ";
      P.line(Dst + Op + expr(S->rhs()));
      return;
    }
    case StmtKind::WriteConfig:
      P.line(S->name().name() + "." + S->field().name() + " = " +
             expr(S->rhs()));
      return;
    case StmtKind::Pass:
      P.line("pass");
      return;
    case StmtKind::If: {
      P.line("if " + expr(S->rhs()) + ":");
      {
        Printer::Scope In(P);
        block(P, S->body());
      }
      if (!S->orelse().empty()) {
        P.line("else:");
        Printer::Scope In(P);
        block(P, S->orelse());
      }
      return;
    }
    case StmtKind::For: {
      P.line("for " + Names.nameOf(S->name()) + " in seq(" + expr(S->lo()) +
             ", " + expr(S->hi()) + "):");
      Printer::Scope In(P);
      block(P, S->body());
      return;
    }
    case StmtKind::Alloc: {
      std::string Line =
          Names.nameOf(S->name()) + " : " + type(S->allocType());
      if (S->memName() != "DRAM")
        Line += " @ " + S->memName();
      P.line(Line);
      return;
    }
    case StmtKind::Call: {
      std::string Out = S->proc()->name() + "(";
      for (size_t I = 0; I < S->args().size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += expr(S->args()[I]);
      }
      P.line(Out + ")");
      return;
    }
    case StmtKind::WindowStmt:
      P.line(Names.nameOf(S->name()) + " = " + expr(S->rhs()));
      return;
    }
  }

  void block(Printer &P, const Block &B) {
    if (B.empty()) {
      P.line("pass");
      return;
    }
    for (auto &S : B)
      stmt(P, S);
  }

  void proc(Printer &P, const Proc &ProcDef) {
    if (ProcDef.isInstr())
      P.line("@instr(\"" + ProcDef.instr().CTemplate + "\")");
    else
      P.line("@proc");
    std::string Head = "def " + ProcDef.name() + "(";
    for (size_t I = 0; I < ProcDef.args().size(); ++I) {
      const FnArg &A = ProcDef.args()[I];
      if (I != 0)
        Head += ", ";
      Head += Names.nameOf(A.Name) + ": " + type(A.Ty);
      if (A.Mem != "DRAM" && A.Ty.isTensor())
        Head += " @ " + A.Mem;
    }
    P.line(Head + "):");
    Printer::Scope In(P);
    for (auto &Pred : ProcDef.preds())
      P.line("assert " + expr(Pred));
    block(P, ProcDef.body());
  }

private:
  const NameEnv &Names;
};

NameEnv collectNames(const Proc &P) {
  NameEnv Names;
  for (auto &A : P.args())
    Names.noteSym(A.Name);
  for (auto &Pred : P.preds())
    Names.noteExpr(Pred);
  for (auto &S : P.body())
    Names.noteStmt(S);
  return Names;
}

} // namespace

std::string exo::ir::printExpr(const ExprRef &E) {
  NameEnv Names;
  Names.noteExpr(E);
  return IRPrinter(Names).expr(E);
}

std::string exo::ir::printStmt(const StmtRef &S, unsigned Indent) {
  NameEnv Names;
  Names.noteStmt(S);
  Printer P;
  for (unsigned I = 0; I < Indent; ++I)
    P.indent();
  IRPrinter(Names).stmt(P, S);
  return P.str();
}

std::string exo::ir::printBlock(const Block &B, unsigned Indent) {
  NameEnv Names;
  for (auto &S : B)
    Names.noteStmt(S);
  Printer P;
  for (unsigned I = 0; I < Indent; ++I)
    P.indent();
  IRPrinter(Names).block(P, B);
  return P.str();
}

std::string exo::ir::printProc(const Proc &ProcDef) {
  NameEnv Names = collectNames(ProcDef);
  Printer P;
  IRPrinter(Names).proc(P, ProcDef);
  return P.str();
}

std::string exo::ir::printProc(const ProcRef &P) { return printProc(*P); }

// Out-of-line str() definitions (declared in Expr.h / Stmt.h / Proc.h).
std::string Expr::str() const {
  // Wrap in a temporary shared_ptr-less copy: cheapest is to re-print via
  // a non-owning alias. We construct a shared_ptr with a no-op deleter.
  ExprRef Alias(this, [](const Expr *) {});
  return printExpr(Alias);
}

std::string Stmt::str() const {
  StmtRef Alias(this, [](const Stmt *) {});
  return printStmt(Alias);
}

std::string Proc::str() const { return printProc(*this); }
