//===- ir/Stmt.cpp ---------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Stmt.h"

#include "ir/Proc.h"

using namespace exo;
using namespace exo::ir;

StmtRef Stmt::assign(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs) {
  auto S = std::make_shared<Stmt>(StmtKind::Assign);
  S->Name = Dst;
  S->Idx = std::move(Indices);
  S->Rhs = std::move(Rhs);
  return S;
}

StmtRef Stmt::reduce(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs) {
  auto S = std::make_shared<Stmt>(StmtKind::Reduce);
  S->Name = Dst;
  S->Idx = std::move(Indices);
  S->Rhs = std::move(Rhs);
  return S;
}

StmtRef Stmt::writeConfig(Sym Config, Sym Field, ExprRef Rhs) {
  auto S = std::make_shared<Stmt>(StmtKind::WriteConfig);
  S->Name = Config;
  S->Field = Field;
  S->Rhs = std::move(Rhs);
  return S;
}

StmtRef Stmt::pass() { return std::make_shared<Stmt>(StmtKind::Pass); }

StmtRef Stmt::ifStmt(ExprRef Cond, Block Body, Block Orelse) {
  auto S = std::make_shared<Stmt>(StmtKind::If);
  S->Rhs = std::move(Cond);
  S->Body = std::move(Body);
  S->Orelse = std::move(Orelse);
  return S;
}

StmtRef Stmt::forStmt(Sym Iter, ExprRef Lo, ExprRef Hi, Block Body) {
  auto S = std::make_shared<Stmt>(StmtKind::For);
  S->Name = Iter;
  S->LoE = std::move(Lo);
  S->HiE = std::move(Hi);
  S->Body = std::move(Body);
  return S;
}

StmtRef Stmt::alloc(Sym Name, Type T, std::string Mem) {
  auto S = std::make_shared<Stmt>(StmtKind::Alloc);
  S->Name = Name;
  S->AllocTy = std::move(T);
  S->Mem = std::move(Mem);
  return S;
}

StmtRef Stmt::call(ProcRef Callee, std::vector<ExprRef> Args) {
  auto S = std::make_shared<Stmt>(StmtKind::Call);
  S->Callee = std::move(Callee);
  S->Idx = std::move(Args);
  return S;
}

StmtRef Stmt::windowStmt(Sym Name, ExprRef WindowE) {
  assert(WindowE->kind() == ExprKind::WindowExpr && "window expr required");
  auto S = std::make_shared<Stmt>(StmtKind::WindowStmt);
  S->Name = Name;
  S->Rhs = std::move(WindowE);
  return S;
}

StmtRef exo::ir::withIfParts(const StmtRef &S, ExprRef Cond, Block Body,
                             Block Orelse) {
  assert(S->kind() == StmtKind::If && "not an if");
  return Stmt::ifStmt(std::move(Cond), std::move(Body), std::move(Orelse));
}

StmtRef exo::ir::withForParts(const StmtRef &S, ExprRef Lo, ExprRef Hi,
                              Block Body) {
  assert(S->kind() == StmtKind::For && "not a for");
  return Stmt::forStmt(S->name(), std::move(Lo), std::move(Hi),
                       std::move(Body));
}
