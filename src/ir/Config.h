//===- ir/Config.h - Configuration state declarations ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration state (§2.4, §3.2.3): global structs of mutable control
/// variables modeling hardware configuration registers. Declared with
/// @config in the surface syntax; read/written via ReadConfig /
/// WriteConfig nodes that reference the config and field symbols below.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_CONFIG_H
#define EXO_IR_CONFIG_H

#include "ir/Type.h"

#include <memory>
#include <vector>

namespace exo {
namespace ir {

/// A @config declaration: a named struct of control-typed fields.
class ConfigDecl {
public:
  struct Field {
    Sym Name;
    Type Ty;
  };

  ConfigDecl(Sym Name, std::vector<Field> Fields, bool Addressable = true)
      : Name(Name), Fields(std::move(Fields)), Addressable(Addressable) {}

  Sym name() const { return Name; }
  const std::vector<Field> &fields() const { return Fields; }

  /// When false, no C struct is generated and direct access from C is
  /// impossible (§3.2.3) — the state exists purely for the analysis.
  bool isAddressable() const { return Addressable; }

  const Field *findField(Sym FieldName) const {
    for (const Field &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }
  const Field *findField(const std::string &FieldName) const {
    for (const Field &F : Fields)
      if (F.Name.name() == FieldName)
        return &F;
    return nullptr;
  }

private:
  Sym Name;
  std::vector<Field> Fields;
  bool Addressable;
};

using ConfigRef = std::shared_ptr<const ConfigDecl>;

} // namespace ir
} // namespace exo

#endif // EXO_IR_CONFIG_H
