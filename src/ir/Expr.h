//===- ir/Expr.h - LoopIR expressions --------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression AST of the core language (Fig. 3 of the paper):
/// variable/array reads, literals, built-in operations, window expressions,
/// stride expressions, and configuration-field reads. Expressions are
/// immutable shared trees; rewrites construct new nodes.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_EXPR_H
#define EXO_IR_EXPR_H

#include "ir/Type.h"

#include <optional>

namespace exo {
namespace ir {

enum class ExprKind {
  Read,       ///< x or x[e*]
  Const,      ///< literal (control int/bool or data floating value)
  USub,       ///< -e
  BinOp,      ///< e op e
  BuiltIn,    ///< named pure data function, e.g. max(a, b)
  WindowExpr, ///< x[w*] producing a window (view)
  StrideExpr, ///< stride(x, dim) — control value
  ReadConfig, ///< Config.field
};

enum class BinOpKind {
  Add, Sub, Mul, Div, Mod,       // arithmetic (Div/Mod quasi-affine on ctrl)
  And, Or,                        // boolean
  Eq, Ne, Lt, Gt, Le, Ge,         // comparisons
};

const char *binOpName(BinOpKind K);
/// True for And/Or/Eq/Ne/Lt/Gt/Le/Ge (result is Bool).
bool isBoolBinOp(BinOpKind K);
/// True for Eq/Ne/Lt/Gt/Le/Ge.
bool isCompareOp(BinOpKind K);

/// One coordinate of a window expression: either a point access (Lo only)
/// or a half-open interval [Lo, Hi).
struct WinCoord {
  bool IsInterval;
  ExprRef Lo;
  ExprRef Hi; ///< null for point accesses
};

/// An expression node. Build via the factories below, which compute types.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  const Type &type() const { return Ty; }

  /// Read / WindowExpr / StrideExpr base buffer, or ReadConfig config name.
  Sym name() const {
    assert((Kind == ExprKind::Read || Kind == ExprKind::WindowExpr ||
            Kind == ExprKind::StrideExpr || Kind == ExprKind::ReadConfig) &&
           "no name payload");
    return Name;
  }

  /// ReadConfig field.
  Sym field() const {
    assert(Kind == ExprKind::ReadConfig && "no field payload");
    return Field;
  }

  /// Read indices / USub-BinOp-BuiltIn operands.
  const std::vector<ExprRef> &args() const { return Args; }

  /// Const payloads.
  int64_t intValue() const {
    assert(Kind == ExprKind::Const && Ty.isControl() && "not a control const");
    return IntVal;
  }
  double dataValue() const {
    assert(Kind == ExprKind::Const && Ty.isData() && "not a data const");
    return DataVal;
  }
  bool boolValue() const {
    assert(Kind == ExprKind::Const && Ty.elem() == ScalarKind::Bool &&
           "not a bool const");
    return IntVal != 0;
  }

  BinOpKind binOp() const {
    assert(Kind == ExprKind::BinOp && "not a binop");
    return Op;
  }

  /// BuiltIn function name ("max", "relu", "select", ...).
  const std::string &builtin() const {
    assert(Kind == ExprKind::BuiltIn && "not a builtin");
    return Builtin;
  }

  /// StrideExpr dimension.
  unsigned strideDim() const {
    assert(Kind == ExprKind::StrideExpr && "not a stride expr");
    return static_cast<unsigned>(IntVal);
  }

  /// Window coordinates.
  const std::vector<WinCoord> &winCoords() const {
    assert(Kind == ExprKind::WindowExpr && "not a window expr");
    return Coords;
  }

  std::string str() const;

  Expr(ExprKind K, Type Ty) : Kind(K), Ty(std::move(Ty)) {}

  // Factories ------------------------------------------------------------

  /// Scalar or whole-buffer read of a variable (indices empty), or an
  /// indexed element read.
  static ExprRef read(Sym Name, std::vector<ExprRef> Indices, Type Ty);
  static ExprRef constInt(int64_t V, ScalarKind K = ScalarKind::Int);
  static ExprRef constBool(bool V);
  static ExprRef constData(double V, ScalarKind K = ScalarKind::R);
  static ExprRef usub(ExprRef E);
  static ExprRef binOp(BinOpKind Op, ExprRef L, ExprRef R);
  static ExprRef builtIn(const std::string &Name, std::vector<ExprRef> Args,
                         Type Ty);
  static ExprRef window(Sym Base, std::vector<WinCoord> Coords, Type WinTy);
  static ExprRef stride(Sym Buffer, unsigned Dim);
  static ExprRef readConfig(Sym Config, Sym Field, Type Ty);

  // Internal state; public for the factories' emplace use.
  ExprKind Kind;
  Type Ty;
  Sym Name;
  Sym Field;
  std::vector<ExprRef> Args;
  std::vector<WinCoord> Coords;
  BinOpKind Op = BinOpKind::Add;
  std::string Builtin;
  int64_t IntVal = 0;
  double DataVal = 0.0;
};

/// Rebuilds \p E with new child expressions (same kind/payloads). The
/// vector layout matches args() for Read/USub/BinOp/BuiltIn, and the
/// flattened Lo/Hi list for windows (nulls preserved).
ExprRef withNewArgs(const ExprRef &E, std::vector<ExprRef> NewArgs);

/// Collects child expressions in the same layout withNewArgs expects.
std::vector<ExprRef> childExprs(const ExprRef &E);

} // namespace ir
} // namespace exo

#endif // EXO_IR_EXPR_H
