//===- ir/FreeVars.h - Free variable collection ----------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free-variable queries over expressions, statements, and blocks.
/// "Free" means not bound by an enclosing loop, allocation, or window
/// statement within the queried fragment. Configuration fields are
/// reported separately (they are globals, never free locals).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_FREEVARS_H
#define EXO_IR_FREEVARS_H

#include "ir/Stmt.h"

#include <set>

namespace exo {
namespace ir {

/// All symbols read or written free in the fragment.
std::set<Sym> freeVars(const ExprRef &E);
std::set<Sym> freeVars(const StmtRef &S);
std::set<Sym> freeVars(const Block &B);

/// Config fields mentioned (read or written), as field symbols.
std::set<Sym> configFields(const StmtRef &S);
std::set<Sym> configFields(const Block &B);

/// All symbols bound within the fragment (loop iterators, allocations,
/// window bindings).
std::set<Sym> boundVars(const Block &B);

/// True if \p S occurs free in the fragment.
bool occursFree(Sym S, const Block &B);

} // namespace ir
} // namespace exo

#endif // EXO_IR_FREEVARS_H
