//===- ir/WellFormed.cpp ---------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/WellFormed.h"

#include "support/Error.h"

#include <set>

using namespace exo;
using namespace exo::ir;

namespace {

struct WfChecker {
  std::vector<std::string> Errors;
  /// Bindings visible on the current path: arguments, enclosing loop
  /// iterators, and allocations/windows earlier in enclosing blocks.
  std::set<Sym> Scope;

  void fail(const StmtRef &S, const std::string &Msg) {
    Errors.push_back(Msg + " in `" + S->str() + "`");
  }

  void bind(const StmtRef &S, Sym Name) {
    if (!Scope.insert(Name).second)
      fail(S, "binder '" + Name.name() + "' shadows an enclosing binding");
  }

  void checkBlock(const Block &B) {
    // Bindings introduced at this level, popped when the block ends.
    std::vector<Sym> Local;
    for (const StmtRef &S : B) {
      if (!S) {
        Errors.push_back("null statement in block");
        continue;
      }
      checkStmt(S, Local);
    }
    for (Sym Name : Local)
      Scope.erase(Name);
  }

  void checkStmt(const StmtRef &S, std::vector<Sym> &Local) {
    switch (S->kind()) {
    case StmtKind::Assign:
    case StmtKind::Reduce:
      if (!S->Rhs)
        fail(S, "assignment without an rhs");
      for (const ExprRef &I : S->indices())
        if (!I)
          fail(S, "null index expression");
      break;
    case StmtKind::WriteConfig:
      if (!S->Rhs)
        fail(S, "config write without an rhs");
      break;
    case StmtKind::Pass:
      break;
    case StmtKind::If:
      if (!S->Rhs)
        fail(S, "if without a condition");
      if (S->body().empty())
        fail(S, "if with an empty body");
      checkBlock(S->body());
      checkBlock(S->orelse());
      break;
    case StmtKind::For:
      if (!S->LoE || !S->HiE)
        fail(S, "loop without bounds");
      if (S->body().empty())
        fail(S, "loop with an empty body");
      if (!S->orelse().empty())
        fail(S, "loop with an orelse");
      bind(S, S->name());
      checkBlock(S->body());
      Scope.erase(S->name());
      break;
    case StmtKind::Alloc:
      for (const ExprRef &D : S->allocType().dims())
        if (!D)
          fail(S, "null allocation dimension");
      bind(S, S->name());
      Local.push_back(S->name());
      break;
    case StmtKind::Call:
      if (!S->proc())
        fail(S, "call without a callee");
      else if (S->args().size() != S->proc()->args().size())
        fail(S, "call arity mismatch with callee '" + S->proc()->name() +
                    "'");
      for (const ExprRef &A : S->args())
        if (!A)
          fail(S, "null call argument");
      break;
    case StmtKind::WindowStmt:
      if (!S->Rhs)
        fail(S, "window binding without a window expression");
      bind(S, S->name());
      Local.push_back(S->name());
      break;
    }
    if (S->kind() != StmtKind::If && S->kind() != StmtKind::For) {
      if (!S->body().empty() || !S->orelse().empty())
        fail(S, "leaf statement with child blocks");
    }
  }

  void checkDirtyRegion(const Proc &P) {
    const auto &Dirty = P.dirtyRegion();
    if (!Dirty || Dirty->Whole)
      return;
    const Block *B = &P.body();
    for (const DirtyRegion::Step &Step : Dirty->Path) {
      if (Step.Index >= B->size()) {
        Errors.push_back("dirty region path index out of range");
        return;
      }
      const StmtRef &S = (*B)[Step.Index];
      if (Step.IntoOrelse) {
        if (S->kind() != StmtKind::If) {
          Errors.push_back("dirty region descends into the orelse of a "
                           "non-if statement");
          return;
        }
        B = &S->orelse();
      } else {
        if (S->kind() != StmtKind::If && S->kind() != StmtKind::For) {
          Errors.push_back("dirty region descends into a leaf statement");
          return;
        }
        B = &S->body();
      }
    }
    if (Dirty->Begin + Dirty->NewCount > B->size())
      Errors.push_back("dirty region range runs past the end of its block");
  }
};

} // namespace

std::vector<std::string> exo::ir::wellFormednessErrors(const Proc &P) {
  WfChecker C;
  for (const FnArg &A : P.args())
    if (!C.Scope.insert(A.Name).second)
      C.Errors.push_back("duplicate argument '" + A.Name.name() + "'");
  for (const ExprRef &Pred : P.preds())
    if (!Pred)
      C.Errors.push_back("null precondition");
  if (P.body().empty())
    C.Errors.push_back("empty procedure body");
  C.checkBlock(P.body());
  C.checkDirtyRegion(P);
  return C.Errors;
}

bool exo::ir::isWellFormed(const Proc &P) {
  return wellFormednessErrors(P).empty();
}

void exo::ir::assertWellFormed(const Proc &P) {
  std::vector<std::string> Errors = wellFormednessErrors(P);
  if (!Errors.empty())
    fatalError("ill-formed proc " + P.name() + ": " + Errors.front());
}
