//===- ir/Builder.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "support/Error.h"

using namespace exo;
using namespace exo::ir;

void ProcBuilder::declare(Sym S, Type T) { Types.emplace(S, std::move(T)); }

Sym ProcBuilder::controlArg(const std::string &ArgName, ScalarKind K) {
  assert(isControlScalar(K) && "control argument with data type");
  Sym S = Sym::fresh(ArgName);
  Args.push_back({S, Type(K), "DRAM"});
  declare(S, Type(K));
  return S;
}

Sym ProcBuilder::tensorArg(const std::string &ArgName, ScalarKind Elem,
                           std::vector<ExprRef> Dims, const std::string &Mem,
                           bool IsWindow) {
  Sym S = Sym::fresh(ArgName);
  Type T = Type::tensor(Elem, std::move(Dims), IsWindow);
  Args.push_back({S, T, Mem});
  declare(S, std::move(T));
  return S;
}

Sym ProcBuilder::scalarArg(const std::string &ArgName, ScalarKind Elem,
                           const std::string &Mem) {
  assert(isDataScalar(Elem) && "data argument with control type");
  Sym S = Sym::fresh(ArgName);
  Args.push_back({S, Type(Elem), Mem});
  declare(S, Type(Elem));
  return S;
}

const Type &ProcBuilder::typeOf(Sym Var) const {
  auto It = Types.find(Var);
  if (It == Types.end())
    fatalError("ProcBuilder: undeclared variable " + Var.uniqueName());
  return It->second;
}

ExprRef ProcBuilder::rd(Sym Var, std::vector<ExprRef> Indices) const {
  const Type &T = typeOf(Var);
  if (Indices.empty())
    return Expr::read(Var, {}, T);
  assert(T.isTensor() && Indices.size() == T.rank() &&
         "indexed read rank mismatch");
  return Expr::read(Var, std::move(Indices), Type(T.elem()));
}

ExprRef ProcBuilder::win(Sym Var, std::vector<WinCoord> Coords) const {
  const Type &T = typeOf(Var);
  assert(T.isTensor() && Coords.size() == T.rank() && "window rank mismatch");
  std::vector<ExprRef> Dims;
  for (const WinCoord &C : Coords)
    if (C.IsInterval)
      Dims.push_back(eSub(C.Hi, C.Lo));
  assert(!Dims.empty() && "window must keep at least one interval");
  return Expr::window(Var, std::move(Coords),
                      Type::tensor(T.elem(), std::move(Dims), true));
}

void ProcBuilder::assign(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs) {
  append(Stmt::assign(Dst, std::move(Indices), std::move(Rhs)));
}

void ProcBuilder::reduce(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs) {
  append(Stmt::reduce(Dst, std::move(Indices), std::move(Rhs)));
}

void ProcBuilder::writeConfig(Sym Config, Sym Field, ExprRef Rhs) {
  append(Stmt::writeConfig(Config, Field, std::move(Rhs)));
}

void ProcBuilder::pass() { append(Stmt::pass()); }

void ProcBuilder::call(ProcRef Callee, std::vector<ExprRef> CallArgs) {
  append(Stmt::call(std::move(Callee), std::move(CallArgs)));
}

Sym ProcBuilder::allocScalar(const std::string &VarName, ScalarKind Elem,
                             const std::string &Mem) {
  Sym S = Sym::fresh(VarName);
  declare(S, Type(Elem));
  append(Stmt::alloc(S, Type(Elem), Mem));
  return S;
}

Sym ProcBuilder::allocTensor(const std::string &VarName, ScalarKind Elem,
                             std::vector<ExprRef> Dims,
                             const std::string &Mem) {
  Sym S = Sym::fresh(VarName);
  Type T = Type::tensor(Elem, std::move(Dims));
  declare(S, T);
  append(Stmt::alloc(S, std::move(T), Mem));
  return S;
}

Sym ProcBuilder::windowAlias(const std::string &VarName, Sym Base,
                             std::vector<WinCoord> Coords) {
  ExprRef W = win(Base, std::move(Coords));
  Sym S = Sym::fresh(VarName);
  declare(S, W->type());
  append(Stmt::windowStmt(S, std::move(W)));
  return S;
}

Sym ProcBuilder::beginFor(const std::string &IterName, ExprRef Lo,
                          ExprRef Hi) {
  Sym Iter = Sym::fresh(IterName);
  declare(Iter, Type(ScalarKind::Index));
  Frames.push_back({Frame::Kind::For, Iter, std::move(Lo), std::move(Hi), {}});
  Blocks.emplace_back();
  return Iter;
}

void ProcBuilder::endFor() {
  assert(!Frames.empty() && Frames.back().FrameKind == Frame::Kind::For &&
         "endFor without beginFor");
  Frame F = std::move(Frames.back());
  Frames.pop_back();
  Block Body = std::move(Blocks.back());
  Blocks.pop_back();
  append(Stmt::forStmt(F.Iter, F.A, F.B, std::move(Body)));
}

void ProcBuilder::beginIf(ExprRef Cond) {
  Frames.push_back({Frame::Kind::IfThen, Sym(), std::move(Cond), nullptr, {}});
  Blocks.emplace_back();
}

void ProcBuilder::beginElse() {
  assert(!Frames.empty() && Frames.back().FrameKind == Frame::Kind::IfThen &&
         "beginElse without beginIf");
  Frames.back().FrameKind = Frame::Kind::IfElse;
  Frames.back().Saved = std::move(Blocks.back());
  Blocks.back().clear();
}

void ProcBuilder::endIf() {
  assert(!Frames.empty() && "endIf without beginIf");
  Frame F = std::move(Frames.back());
  Frames.pop_back();
  Block Last = std::move(Blocks.back());
  Blocks.pop_back();
  if (F.FrameKind == Frame::Kind::IfThen) {
    append(Stmt::ifStmt(F.A, std::move(Last)));
  } else {
    assert(F.FrameKind == Frame::Kind::IfElse && "mismatched frame");
    append(Stmt::ifStmt(F.A, std::move(F.Saved), std::move(Last)));
  }
}

ProcRef ProcBuilder::result() {
  assert(Frames.empty() && Blocks.size() == 1 && "unbalanced begin/end");
  return std::make_shared<Proc>(std::move(Name), std::move(Args),
                                std::move(Preds), std::move(Blocks.back()));
}
