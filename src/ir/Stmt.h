//===- ir/Stmt.h - LoopIR statements ---------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement AST of the core language (Fig. 3): assignment, reduction,
/// configuration writes, guards, sequential loops, allocation, window
/// binding, sub-procedure calls, and Pass (the no-op). A statement block is
/// a plain vector, which keeps splice-style rewrites simple.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_STMT_H
#define EXO_IR_STMT_H

#include "ir/Expr.h"

namespace exo {
namespace ir {

class Stmt;
using StmtRef = std::shared_ptr<const Stmt>;
/// A sequence of statements.
using Block = std::vector<StmtRef>;

class Proc;
using ProcRef = std::shared_ptr<const Proc>;

enum class StmtKind {
  Assign,      ///< x[e*] = e     (scalar when no indices)
  Reduce,      ///< x[e*] += e
  WriteConfig, ///< Config.field = e
  Pass,        ///< no-op
  If,          ///< if e: body [else: orelse]
  For,         ///< for x in seq(lo, hi): body
  Alloc,       ///< x : T @ mem
  Call,        ///< p(e*)
  WindowStmt,  ///< x = y[w*]  (window binding)
};

/// A statement node. Build via the factories.
class Stmt {
public:
  StmtKind kind() const { return Kind; }

  /// Assign/Reduce destination, For iterator, Alloc/WindowStmt name, or
  /// WriteConfig config name.
  Sym name() const { return Name; }
  /// WriteConfig field.
  Sym field() const {
    assert(Kind == StmtKind::WriteConfig && "no field payload");
    return Field;
  }

  /// Assign/Reduce destination indices.
  const std::vector<ExprRef> &indices() const { return Idx; }

  /// Assign/Reduce/WriteConfig right-hand side; If condition;
  /// WindowStmt window expression.
  const ExprRef &rhs() const {
    assert(Rhs && "no rhs payload");
    return Rhs;
  }

  /// For bounds.
  const ExprRef &lo() const {
    assert(Kind == StmtKind::For && "not a loop");
    return LoE;
  }
  const ExprRef &hi() const {
    assert(Kind == StmtKind::For && "not a loop");
    return HiE;
  }

  /// If/For body; If orelse.
  const Block &body() const { return Body; }
  const Block &orelse() const { return Orelse; }

  /// Alloc type and memory annotation ("DRAM" by default).
  const Type &allocType() const {
    assert(Kind == StmtKind::Alloc && "not an alloc");
    return AllocTy;
  }
  const std::string &memName() const { return Mem; }

  /// Call target and arguments.
  const ProcRef &proc() const {
    assert(Kind == StmtKind::Call && "not a call");
    return Callee;
  }
  const std::vector<ExprRef> &args() const { return Idx; }

  std::string str() const;

  // Factories ------------------------------------------------------------
  static StmtRef assign(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs);
  static StmtRef reduce(Sym Dst, std::vector<ExprRef> Indices, ExprRef Rhs);
  static StmtRef writeConfig(Sym Config, Sym Field, ExprRef Rhs);
  static StmtRef pass();
  static StmtRef ifStmt(ExprRef Cond, Block Body, Block Orelse = {});
  static StmtRef forStmt(Sym Iter, ExprRef Lo, ExprRef Hi, Block Body);
  static StmtRef alloc(Sym Name, Type T, std::string Mem = "DRAM");
  static StmtRef call(ProcRef Callee, std::vector<ExprRef> Args);
  static StmtRef windowStmt(Sym Name, ExprRef WindowE);

  Stmt(StmtKind K) : Kind(K) {}

  // Internal state; public for factory use.
  StmtKind Kind;
  Sym Name;
  Sym Field;
  std::vector<ExprRef> Idx; ///< indices, or call args
  ExprRef Rhs;              ///< rhs / condition / window expr
  ExprRef LoE, HiE;
  Block Body, Orelse;
  Type AllocTy;
  std::string Mem = "DRAM";
  ProcRef Callee;
};

/// Rebuilds an If with new parts.
StmtRef withIfParts(const StmtRef &S, ExprRef Cond, Block Body, Block Orelse);
/// Rebuilds a For with new parts.
StmtRef withForParts(const StmtRef &S, ExprRef Lo, ExprRef Hi, Block Body);

} // namespace ir
} // namespace exo

#endif // EXO_IR_STMT_H
