//===- ir/Type.h - LoopIR types --------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of the core language (§3.1): a strict control / data
/// separation. Control scalars (int, bool, size, index, stride) may only be
/// combined quasi-affinely and may appear in loop bounds, branch
/// conditions, and array shapes. Data scalars (R and the precision types)
/// live in scalars and dependently-sized tensors and support arbitrary
/// arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_TYPE_H
#define EXO_IR_TYPE_H

#include "ir/Sym.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace exo {
namespace ir {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Every scalar type of the language.
enum class ScalarKind {
  // Data types.
  R,   ///< abstract numeric type, refined by set_precision
  F32, ///< 32-bit float
  F64, ///< 64-bit float
  I8,  ///< 8-bit signed integer (quantized data)
  I16, ///< 16-bit signed integer
  I32, ///< 32-bit signed integer (accumulator data)
  // Control types.
  Int,    ///< plain integer control value
  Bool,   ///< boolean control value
  Size,   ///< strictly positive integer (array dimensions)
  Index,  ///< loop index value
  Stride, ///< buffer stride value
};

/// True for R / F32 / F64 / I8 / I16 / I32.
bool isDataScalar(ScalarKind K);
/// True for Int / Bool / Size / Index / Stride.
bool isControlScalar(ScalarKind K);
/// Printable name ("f32", "size", ...).
const char *scalarKindName(ScalarKind K);

/// A LoopIR type: a scalar, or a dependently-sized tensor of data scalars.
/// Tensors may be windows (views): a window aliases another buffer and is
/// never allocated.
class Type {
public:
  /// Scalar constructor.
  Type(ScalarKind K) : Elem(K) {}
  Type() : Elem(ScalarKind::R) {}

  /// Tensor constructor; \p Dims are control-typed expressions.
  static Type tensor(ScalarKind Elem, std::vector<ExprRef> Dims,
                     bool IsWindow = false);

  bool isScalar() const { return Dims.empty(); }
  bool isTensor() const { return !Dims.empty(); }
  bool isWindow() const { return Window; }
  bool isData() const { return isDataScalar(Elem); }
  bool isControl() const { return isScalar() && isControlScalar(Elem); }

  ScalarKind elem() const { return Elem; }
  const std::vector<ExprRef> &dims() const { return Dims; }
  unsigned rank() const { return static_cast<unsigned>(Dims.size()); }

  /// Same type with a different element precision (set_precision).
  Type withElem(ScalarKind NewElem) const;
  /// Same shape marked as a window.
  Type asWindow() const;

  /// Shallow equality: same kind, same rank, same window-ness. Dimension
  /// expressions are compared structurally.
  bool equals(const Type &O) const;

  std::string str() const;

private:
  ScalarKind Elem;
  std::vector<ExprRef> Dims;
  bool Window = false;
};

} // namespace ir
} // namespace exo

#endif // EXO_IR_TYPE_H
