//===- ir/Type.cpp ---------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "ir/Expr.h"
#include "ir/StructuralEq.h"

using namespace exo;
using namespace exo::ir;

bool exo::ir::isDataScalar(ScalarKind K) {
  switch (K) {
  case ScalarKind::R:
  case ScalarKind::F32:
  case ScalarKind::F64:
  case ScalarKind::I8:
  case ScalarKind::I16:
  case ScalarKind::I32:
    return true;
  default:
    return false;
  }
}

bool exo::ir::isControlScalar(ScalarKind K) { return !isDataScalar(K); }

const char *exo::ir::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::R:
    return "R";
  case ScalarKind::F32:
    return "f32";
  case ScalarKind::F64:
    return "f64";
  case ScalarKind::I8:
    return "i8";
  case ScalarKind::I16:
    return "i16";
  case ScalarKind::I32:
    return "i32";
  case ScalarKind::Int:
    return "int";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Size:
    return "size";
  case ScalarKind::Index:
    return "index";
  case ScalarKind::Stride:
    return "stride";
  }
  return "?";
}

Type Type::tensor(ScalarKind Elem, std::vector<ExprRef> Dims, bool IsWindow) {
  assert(isDataScalar(Elem) && "tensors hold data scalars");
  assert(!Dims.empty() && "tensor needs at least one dimension");
  Type T(Elem);
  T.Dims = std::move(Dims);
  T.Window = IsWindow;
  return T;
}

Type Type::withElem(ScalarKind NewElem) const {
  Type T = *this;
  T.Elem = NewElem;
  return T;
}

Type Type::asWindow() const {
  assert(isTensor() && "only tensors can be windows");
  Type T = *this;
  T.Window = true;
  return T;
}

bool Type::equals(const Type &O) const {
  if (Elem != O.Elem || Window != O.Window || Dims.size() != O.Dims.size())
    return false;
  for (size_t I = 0; I < Dims.size(); ++I)
    if (!structurallyEqual(Dims[I], O.Dims[I]))
      return false;
  return true;
}

std::string Type::str() const {
  std::string Out = scalarKindName(Elem);
  if (isTensor()) {
    Out += '[';
    for (size_t I = 0; I < Dims.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Dims[I]->str();
    }
    Out += ']';
    if (Window)
      Out = "[" + Out + "]";
  }
  return Out;
}
