//===- ir/Printer.h - Exo-syntax pretty printer ----------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders LoopIR back into the Exo surface syntax. The output of
/// printProc round-trips through the parser (modulo symbol uniquification),
/// which the integration tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_IR_PRINTER_H
#define EXO_IR_PRINTER_H

#include "ir/Proc.h"

namespace exo {
namespace ir {

std::string printExpr(const ExprRef &E);
std::string printStmt(const StmtRef &S, unsigned Indent = 0);
std::string printBlock(const Block &B, unsigned Indent = 0);
std::string printProc(const ProcRef &P);
std::string printProc(const Proc &P);

} // namespace ir
} // namespace exo

#endif // EXO_IR_PRINTER_H
