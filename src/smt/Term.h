//===- smt/Term.h - LIA term language --------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term language of the in-tree SMT-lite solver: quantified linear
/// integer arithmetic (Presburger arithmetic) with quasi-affine div/mod by
/// integer literals, booleans, and if-then-else. Effect analysis (§5 of the
/// paper) lowers its proof obligations into this language; Solver.h decides
/// them by quantifier elimination (Cooper's algorithm).
///
/// Terms are immutable shared-pointer trees. The builders perform light
/// normalization (constant folding); full simplification lives in
/// Rewrite.cpp.
///
/// All nodes are *hash-consed* through a process-wide interner: structurally
/// identical subterms share one allocation, the structural hash and the free
/// variable set are computed once at construction, and equality of interned
/// nodes degenerates to a pointer comparison. The interner is sharded by
/// structural hash (each shard has its own lock) so concurrent compile
/// sessions intern without serializing on one mutex. A shard may be flushed
/// when it grows past its cap (losing sharing, never correctness — equals()
/// falls back to a deep compare), so pointer inequality does NOT imply
/// structural inequality. See the "Performance" and "Threading model"
/// sections of DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_TERM_H
#define EXO_SMT_TERM_H

#include "support/Error.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace exo {
namespace smt {

/// The two sorts of the logic.
enum class Sort { Int, Bool };

/// Term node discriminator.
enum class TermKind {
  IntConst,  ///< integer literal
  BoolConst, ///< true / false
  Var,       ///< free or bound variable
  Add,       ///< n-ary integer sum
  Mul,       ///< Scalar * operand (quasi-affine restriction)
  Div,       ///< floor division by positive literal
  Mod,       ///< floor modulo by positive literal
  Eq,        ///< integer equality
  Le,        ///< integer <=
  Lt,        ///< integer <
  Not,       ///< boolean negation
  And,       ///< n-ary conjunction
  Or,        ///< n-ary disjunction
  Implies,   ///< binary implication
  Ite,       ///< if-then-else (int- or bool-sorted)
  Forall,    ///< universal quantifier over an int variable
  Exists,    ///< existential quantifier over an int variable
};

class Term;
/// Shared immutable term handle.
using TermRef = std::shared_ptr<const Term>;

/// A solver variable. Identity is the numeric Id; the name is only for
/// printing. Bound and free variables use the same representation.
struct TermVar {
  unsigned Id;
  std::string Name;
  Sort VarSort;

  bool operator==(const TermVar &O) const { return Id == O.Id; }
};

/// Allocates a globally fresh variable.
TermVar freshVar(const std::string &Name, Sort S);

/// Fence for fresh-variable allocation: every variable minted by freshVar()
/// after this call has an Id >= the returned mark. Callers bracket a
/// computation with two marks to detect whether a result mentions variables
/// created inside the bracket (the effect cache uses this to reject
/// summaries that would leak per-extraction unknowns).
unsigned freshVarMark();

/// One node in the term tree.
class Term {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TheSort; }

  /// Integer literal payload; valid for IntConst.
  int64_t intValue() const {
    assert(Kind == TermKind::IntConst && "not an int literal");
    return Value;
  }

  /// Boolean literal payload; valid for BoolConst.
  bool boolValue() const {
    assert(Kind == TermKind::BoolConst && "not a bool literal");
    return Value != 0;
  }

  /// Variable payload; valid for Var, Forall, Exists (the bound var).
  const TermVar &var() const {
    assert((Kind == TermKind::Var || Kind == TermKind::Forall ||
            Kind == TermKind::Exists) &&
           "no variable payload");
    return Variable;
  }

  /// The literal multiplier of a Mul, or divisor/modulus of Div/Mod.
  int64_t scalar() const {
    assert((Kind == TermKind::Mul || Kind == TermKind::Div ||
            Kind == TermKind::Mod) &&
           "no scalar payload");
    return Value;
  }

  /// Child terms (operands; the quantified body is operand 0).
  const std::vector<TermRef> &operands() const { return Operands; }
  const TermRef &operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  unsigned numOperands() const { return Operands.size(); }

  /// Structural equality (bound variables compared by Id, so alpha-variant
  /// terms are *not* equal; fresh-renaming keeps Ids apart by construction).
  /// Interned nodes compare by pointer; the deep fallback only runs for
  /// nodes that straddle an interner flush.
  bool equals(const Term &O) const;

  /// Structural hash, computed once at construction from the (already
  /// hashed) children. Unequal hashes imply structural inequality.
  size_t hash() const { return Hash; }

  /// Sorted, deduplicated ids of this term's free variables, cached at
  /// construction.
  const std::vector<unsigned> &freeVarIds() const { return FreeIds; }

  /// O(log n) free-variable membership test.
  bool hasFreeVar(unsigned Id) const {
    return std::binary_search(FreeIds.begin(), FreeIds.end(), Id);
  }

  /// Whether any subterm is an int-sorted if-then-else; lets the prenex
  /// converter skip its lowering scan entirely.
  bool hasIntIte() const { return IntIte; }

  /// Renders an SMT-LIB-flavoured s-expression, for debugging and tests.
  std::string str() const;

  // Internal constructor; use the factory functions below (they route all
  // construction through the interner). Computes the cached hash, free-var
  // set, and int-ite flag from the children's caches.
  Term(TermKind K, Sort S, int64_t V, TermVar Var, std::vector<TermRef> Ops);

private:
  TermKind Kind;
  Sort TheSort;
  int64_t Value;      // literal / scalar payload
  TermVar Variable;   // variable payload
  std::vector<TermRef> Operands;
  size_t Hash;                  // structural hash (cached)
  std::vector<unsigned> FreeIds; // sorted free-variable ids (cached)
  bool IntIte;                  // subtree contains an int-sorted Ite
};

/// Counters for the process-wide term interner.
struct TermInternerStats {
  uint64_t Hits = 0;    ///< constructions that reused an existing node
  uint64_t Misses = 0;  ///< constructions that allocated a new node
  uint64_t Flushes = 0; ///< times the table was cleared on overflow
  size_t Live = 0;      ///< nodes currently retained by the table
};

/// Snapshot of the interner counters.
TermInternerStats termInternerStats();

/// Drops every node retained by the interner table. Live TermRefs stay
/// valid (they hold their own shared_ptr refs); only future sharing is
/// lost. Mostly for benchmarks and tests.
void clearTermInterner();

//===----------------------------------------------------------------------===//
// Factory functions. All perform constant folding where trivially possible.
//===----------------------------------------------------------------------===//

TermRef intConst(int64_t V);
TermRef boolConst(bool V);
TermRef mkTrue();
TermRef mkFalse();
TermRef mkVar(const TermVar &V);

TermRef add(std::vector<TermRef> Ops);
TermRef add(TermRef A, TermRef B);
TermRef sub(TermRef A, TermRef B);
TermRef neg(TermRef A);
/// Scalar * A (the quasi-affine multiplication).
TermRef mul(int64_t Scalar, TermRef A);
/// Floor division by a positive literal.
TermRef div(TermRef A, int64_t Divisor);
/// Floor modulo by a positive literal.
TermRef mod(TermRef A, int64_t Modulus);

TermRef eq(TermRef A, TermRef B);
TermRef ne(TermRef A, TermRef B);
TermRef le(TermRef A, TermRef B);
TermRef lt(TermRef A, TermRef B);
TermRef ge(TermRef A, TermRef B);
TermRef gt(TermRef A, TermRef B);

TermRef mkNot(TermRef A);
TermRef mkAnd(std::vector<TermRef> Ops);
TermRef mkAnd(TermRef A, TermRef B);
TermRef mkOr(std::vector<TermRef> Ops);
TermRef mkOr(TermRef A, TermRef B);
TermRef implies(TermRef A, TermRef B);
TermRef iff(TermRef A, TermRef B);
TermRef ite(TermRef C, TermRef T, TermRef E);
TermRef forall(const TermVar &V, TermRef Body);
TermRef forall(const std::vector<TermVar> &Vs, TermRef Body);
TermRef exists(const TermVar &V, TermRef Body);
TermRef exists(const std::vector<TermVar> &Vs, TermRef Body);

/// Collects the free variables of \p T into \p Out (deduplicated, in first
/// occurrence order).
void collectFreeVars(const TermRef &T, std::vector<TermVar> &Out);

/// Substitutes free occurrences of variable \p V by \p Replacement.
TermRef substVar(const TermRef &T, const TermVar &V, TermRef Replacement);

} // namespace smt
} // namespace exo

#endif // EXO_SMT_TERM_H
