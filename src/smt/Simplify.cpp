//===- smt/Simplify.cpp - Query preprocessing pipeline ---------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Term-level stages of the solver preprocessing pipeline: constant
/// folding with literal normalization, the one-point (equality
/// substitution) rule, and interval propagation. See Simplify.h and
/// DESIGN.md ("Solver preprocessing") for the stage contract; the Cooper
/// ordering stage (4) lives in Cooper.cpp and only reads the config here.
///
//===----------------------------------------------------------------------===//

#include "smt/Simplify.h"

#include "support/MathExtras.h"

#include <atomic>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace exo;
using namespace exo::smt;

//===----------------------------------------------------------------------===//
// Config toggles
//===----------------------------------------------------------------------===//

namespace {

constexpr uint8_t BitConstFold = 1 << 0;
constexpr uint8_t BitEqSubst = 1 << 1;
constexpr uint8_t BitIntervalProp = 1 << 2;
constexpr uint8_t BitCheapVarOrder = 1 << 3;
constexpr uint8_t BitEffectFastPath = 1 << 4;
constexpr uint8_t BitAll = BitConstFold | BitEqSubst | BitIntervalProp |
                           BitCheapVarOrder | BitEffectFastPath;

std::atomic<uint8_t> &configBits() {
  static std::atomic<uint8_t> Bits{BitAll};
  return Bits;
}

} // namespace

SimplifyConfig exo::smt::simplifyConfig() {
  uint8_t B = configBits().load(std::memory_order_relaxed);
  SimplifyConfig C;
  C.ConstFold = B & BitConstFold;
  C.EqSubst = B & BitEqSubst;
  C.IntervalProp = B & BitIntervalProp;
  C.CheapVarOrder = B & BitCheapVarOrder;
  C.EffectFastPath = B & BitEffectFastPath;
  return C;
}

void exo::smt::setSimplifyConfig(const SimplifyConfig &C) {
  uint8_t B = 0;
  if (C.ConstFold)
    B |= BitConstFold;
  if (C.EqSubst)
    B |= BitEqSubst;
  if (C.IntervalProp)
    B |= BitIntervalProp;
  if (C.CheapVarOrder)
    B |= BitCheapVarOrder;
  if (C.EffectFastPath)
    B |= BitEffectFastPath;
  configBits().store(B, std::memory_order_relaxed);
}

void exo::smt::setSimplifyEnabled(bool Enabled) {
  configBits().store(Enabled ? BitAll : 0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

namespace {

/// Accumulator bound beyond which an endpoint widens to unbounded. Keeps
/// the __int128 sums far from their own overflow while staying sound:
/// widening an endpoint only loses precision, never adds models.
constexpr __int128 SatLimit = (__int128)1 << 96;

void tightenLo(ValueInterval &IV, int64_t Lo) {
  if (!IV.Lo || *IV.Lo < Lo)
    IV.Lo = Lo;
}

void tightenHi(ValueInterval &IV, int64_t Hi) {
  if (!IV.Hi || *IV.Hi > Hi)
    IV.Hi = Hi;
}

void mergeTighten(IntervalEnv &Into, const IntervalEnv &Facts) {
  for (const auto &[Var, IV] : Facts) {
    ValueInterval &Slot = Into[Var];
    if (IV.Lo)
      tightenLo(Slot, *IV.Lo);
    if (IV.Hi)
      tightenHi(Slot, *IV.Hi);
  }
}

bool anyEmpty(const IntervalEnv &Env) {
  for (const auto &[Var, IV] : Env) {
    (void)Var;
    if (IV.empty())
      return true;
  }
  return false;
}

} // namespace

ValueInterval exo::smt::intervalOfLinear(const LinearForm &L,
                                         const IntervalEnv &Env) {
  bool LoOk = true, HiOk = true;
  __int128 Lo = L.constant(), Hi = L.constant();
  for (const auto &[Var, Coeff] : L.coeffs()) {
    ValueInterval VI;
    auto It = Env.find(Var);
    if (It != Env.end())
      VI = It->second;
    if (VI.empty()) {
      // Contradictory env: signal empty so callers skip deciding.
      ValueInterval R;
      R.Lo = 1;
      R.Hi = 0;
      return R;
    }
    // Coeff * [VI.Lo, VI.Hi]: a positive coefficient maps Lo->Lo, a
    // negative one swaps the endpoints.
    const std::optional<int64_t> &ToLo = Coeff > 0 ? VI.Lo : VI.Hi;
    const std::optional<int64_t> &ToHi = Coeff > 0 ? VI.Hi : VI.Lo;
    if (LoOk) {
      if (!ToLo)
        LoOk = false;
      else
        Lo += (__int128)Coeff * *ToLo;
    }
    if (HiOk) {
      if (!ToHi)
        HiOk = false;
      else
        Hi += (__int128)Coeff * *ToHi;
    }
    if (LoOk && (Lo > SatLimit || Lo < -SatLimit))
      LoOk = false;
    if (HiOk && (Hi > SatLimit || Hi < -SatLimit))
      HiOk = false;
  }
  ValueInterval R;
  if (LoOk && Lo >= INT64_MIN && Lo <= INT64_MAX)
    R.Lo = (int64_t)Lo;
  if (HiOk && Hi >= INT64_MIN && Hi <= INT64_MAX)
    R.Hi = (int64_t)Hi;
  return R;
}

namespace {

/// Intersects the single-variable bound implied by the literal
/// `A Kind B` (or its negation) into \p Env, if there is one.
void factsFromAtom(TermKind Kind, const TermRef &A, const TermRef &B,
                   bool Negated, IntervalEnv &Env) {
  auto La = linearFromTerm(A), Lb = linearFromTerm(B);
  if (!La || !Lb)
    return;
  LinearForm L = *La - *Lb;
  bool IsEq = Kind == TermKind::Eq;
  if (IsEq && Negated)
    return; // x != e carries no interval fact
  if (!IsEq) {
    // Normalize to L <= 0.
    //   A <= B        ->  L <= 0
    //   A <  B        ->  L + 1 <= 0
    //   !(A <= B)     ->  B < A  ->  -L + 1 <= 0
    //   !(A <  B)     ->  B <= A ->  -L <= 0
    if (Kind == TermKind::Lt && !Negated)
      L.setConstant(L.constant() + 1);
    else if (Kind == TermKind::Le && Negated) {
      L = L.negated();
      L.setConstant(L.constant() + 1);
    } else if (Kind == TermKind::Lt && Negated)
      L = L.negated();
  }
  if (L.coeffs().size() != 1)
    return;
  auto [Var, Coeff] = *L.coeffs().begin();
  int64_t D = L.constant();
  ValueInterval &Slot = Env[Var];
  if (IsEq) {
    // Coeff * v + D == 0
    if (D % Coeff != 0)
      return; // unsatisfiable literal; constant folding decides it
    int64_t V = -D / Coeff;
    tightenLo(Slot, V);
    tightenHi(Slot, V);
    return;
  }
  // Coeff * v <= -D
  if (Coeff > 0)
    tightenHi(Slot, floorDiv(-D, Coeff));
  else
    tightenLo(Slot, ceilDiv(-D, Coeff));
}

void collectNegatedFacts(const TermRef &F, IntervalEnv &Env);

} // namespace

void exo::smt::collectIntervalFacts(const TermRef &F, IntervalEnv &Env) {
  switch (F->kind()) {
  case TermKind::And:
    for (const TermRef &Op : F->operands())
      collectIntervalFacts(Op, Env);
    return;
  case TermKind::Not:
    collectNegatedFacts(F->operand(0), Env);
    return;
  case TermKind::Eq:
  case TermKind::Le:
  case TermKind::Lt:
    factsFromAtom(F->kind(), F->operand(0), F->operand(1), /*Negated=*/false,
                  Env);
    return;
  default:
    return;
  }
}

namespace {

/// Facts entailed by `not F`: Not(Or ...) distributes, Not(Implies A C)
/// yields A and not C, literals dualize.
void collectNegatedFacts(const TermRef &F, IntervalEnv &Env) {
  switch (F->kind()) {
  case TermKind::Or:
    for (const TermRef &Op : F->operands())
      collectNegatedFacts(Op, Env);
    return;
  case TermKind::Not:
    collectIntervalFacts(F->operand(0), Env);
    return;
  case TermKind::Implies:
    collectIntervalFacts(F->operand(0), Env);
    collectNegatedFacts(F->operand(1), Env);
    return;
  case TermKind::Eq:
  case TermKind::Le:
  case TermKind::Lt:
    factsFromAtom(F->kind(), F->operand(0), F->operand(1), /*Negated=*/true,
                  Env);
    return;
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Stage 1: constant folding + literal normalization
//===----------------------------------------------------------------------===//

using Memo = std::unordered_map<const Term *, TermRef>;

/// Rewrites a comparison atom into the canonical gcd-normalized
/// `linear <= 0` / `linear == 0` shape so different spellings of one
/// literal hash-cons to the same node. Ground atoms fold to a constant.
TermRef canonAtom(TermKind Kind, const TermRef &A, const TermRef &B) {
  auto Rebuild = [&]() -> TermRef {
    switch (Kind) {
    case TermKind::Eq:
      return eq(A, B);
    case TermKind::Le:
      return le(A, B);
    default:
      return lt(A, B);
    }
  };
  auto La = linearFromTerm(A), Lb = linearFromTerm(B);
  if (!La || !Lb)
    return Rebuild(); // Div/Mod/Ite operand: leave for Cooper
  LinearForm L = *La - *Lb;
  if (Kind == TermKind::Lt) // A < B  <=>  L + 1 <= 0
    L.setConstant(L.constant() + 1);
  if (L.isConstant()) {
    int64_t C = L.constant();
    return boolConst(Kind == TermKind::Eq ? C == 0 : C <= 0);
  }
  int64_t G = L.coeffGcd();
  if (Kind == TermKind::Eq) {
    if (L.constant() % G != 0)
      return mkFalse(); // gcd test: no integer solution
    L = [&] {
      LinearForm Out;
      for (const auto &[Var, Coeff] : L.coeffs())
        Out.setCoeff(Var, Coeff / G);
      Out.setConstant(L.constant() / G);
      return Out;
    }();
    // Sign-normalize: lowest-id coefficient positive.
    if (L.coeffs().begin()->second < 0)
      L = L.negated();
    return eq(linearToTerm(L), intConst(0));
  }
  // Le: g*(sum c'x) + d <= 0  <=>  sum c'x <= floor(-d / g)
  //                           <=>  sum c'x - floor(-d / g) <= 0
  LinearForm Out;
  for (const auto &[Var, Coeff] : L.coeffs())
    Out.setCoeff(Var, Coeff / G);
  Out.setConstant(-floorDiv(-L.constant(), G));
  return le(linearToTerm(Out), intConst(0));
}

TermRef foldRec(const TermRef &T, Memo &M) {
  auto It = M.find(T.get());
  if (It != M.end())
    return It->second;
  TermRef R;
  switch (T->kind()) {
  case TermKind::IntConst:
  case TermKind::BoolConst:
  case TermKind::Var:
    R = T;
    break;
  case TermKind::Add: {
    std::vector<TermRef> Ops;
    Ops.reserve(T->numOperands());
    for (const TermRef &Op : T->operands())
      Ops.push_back(foldRec(Op, M));
    R = add(std::move(Ops));
    break;
  }
  case TermKind::Mul:
    R = mul(T->scalar(), foldRec(T->operand(0), M));
    break;
  case TermKind::Div:
    R = div(foldRec(T->operand(0), M), T->scalar());
    break;
  case TermKind::Mod:
    R = mod(foldRec(T->operand(0), M), T->scalar());
    break;
  case TermKind::Eq:
  case TermKind::Le:
  case TermKind::Lt:
    R = canonAtom(T->kind(), foldRec(T->operand(0), M),
                  foldRec(T->operand(1), M));
    break;
  case TermKind::Not:
    R = mkNot(foldRec(T->operand(0), M));
    break;
  case TermKind::And:
  case TermKind::Or: {
    // Fold children, flatten one level (the factories flatten nested
    // And/Or only at construction), and dedup by interned pointer.
    std::vector<TermRef> Ops;
    std::unordered_set<const Term *> Seen;
    for (const TermRef &Op : T->operands()) {
      TermRef F = foldRec(Op, M);
      auto Push = [&](const TermRef &Leaf) {
        if (Seen.insert(Leaf.get()).second)
          Ops.push_back(Leaf);
      };
      if (F->kind() == T->kind())
        for (const TermRef &Leaf : F->operands())
          Push(Leaf);
      else
        Push(F);
    }
    R = T->kind() == TermKind::And ? mkAnd(std::move(Ops))
                                   : mkOr(std::move(Ops));
    break;
  }
  case TermKind::Implies: {
    TermRef A = foldRec(T->operand(0), M), C = foldRec(T->operand(1), M);
    R = A.get() == C.get() ? mkTrue() : implies(A, C);
    break;
  }
  case TermKind::Ite:
    R = ite(foldRec(T->operand(0), M), foldRec(T->operand(1), M),
            foldRec(T->operand(2), M));
    break;
  case TermKind::Forall:
  case TermKind::Exists: {
    TermRef Body = foldRec(T->operand(0), M);
    if (!Body->hasFreeVar(T->var().Id))
      R = Body; // vacuous quantifier
    else
      R = T->kind() == TermKind::Forall ? forall(T->var(), Body)
                                        : exists(T->var(), Body);
    break;
  }
  }
  M.emplace(T.get(), R);
  return R;
}

//===----------------------------------------------------------------------===//
// Stage 2: equality substitution (one-point rule)
//===----------------------------------------------------------------------===//

/// Solves the equality atom for variable \p X when its coefficient is
/// +-1, giving X = Repl with X not mentioned in Repl.
std::optional<LinearForm> trySolveEq(const TermRef &EqAtom, unsigned X) {
  auto La = linearFromTerm(EqAtom->operand(0));
  auto Lb = linearFromTerm(EqAtom->operand(1));
  if (!La || !Lb)
    return std::nullopt;
  LinearForm L = *La - *Lb; // L == 0
  int64_t C = L.coeff(X);
  if (C != 1 && C != -1)
    return std::nullopt;
  L.setCoeff(X, 0);
  return C == 1 ? L.negated() : L;
}

/// Searches \p T for an equality on \p X entailed by every model of T
/// (Negated = false) or of not-T (Negated = true). Mirrors the polarity
/// rules of collect*Facts: conjunctive positions only.
std::optional<LinearForm> findEntailedEq(const TermRef &T, unsigned X,
                                         bool Negated) {
  if (!T->hasFreeVar(X))
    return std::nullopt;
  switch (T->kind()) {
  case TermKind::Eq:
    return Negated ? std::nullopt : trySolveEq(T, X);
  case TermKind::And:
    if (!Negated)
      for (const TermRef &Op : T->operands())
        if (auto R = findEntailedEq(Op, X, false))
          return R;
    return std::nullopt;
  case TermKind::Or:
    if (Negated) // not(a or b) entails not a, not b
      for (const TermRef &Op : T->operands())
        if (auto R = findEntailedEq(Op, X, true))
          return R;
    return std::nullopt;
  case TermKind::Not:
    return findEntailedEq(T->operand(0), X, !Negated);
  case TermKind::Implies:
    if (Negated) { // not(A -> C) entails A and not C
      if (auto R = findEntailedEq(T->operand(0), X, false))
        return R;
      return findEntailedEq(T->operand(1), X, true);
    }
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

/// Collects every binder id inside \p T and whether a Bool-sorted
/// variable with id \p X occurs. Guards the one-point substitution:
/// substVar has no capture avoidance, and closeFreeVars reinterprets a
/// Bool free variable as an Int binder with the same id, so replacing
/// such occurrences with an Int expression would be ill-sorted.
void scanForSubstHazards(const TermRef &T, unsigned X,
                         std::unordered_set<const Term *> &Seen,
                         std::unordered_set<unsigned> &BinderIds,
                         bool &BoolOccurrence) {
  if (!Seen.insert(T.get()).second)
    return;
  switch (T->kind()) {
  case TermKind::Var:
    if (T->var().Id == X && T->var().VarSort == Sort::Bool)
      BoolOccurrence = true;
    return;
  case TermKind::Forall:
  case TermKind::Exists:
    BinderIds.insert(T->var().Id);
    break;
  default:
    break;
  }
  for (const TermRef &Op : T->operands())
    scanForSubstHazards(Op, X, Seen, BinderIds, BoolOccurrence);
}

bool substitutionIsSafe(const TermRef &Body, unsigned X,
                        const LinearForm &Repl) {
  std::unordered_set<const Term *> Seen;
  std::unordered_set<unsigned> BinderIds;
  bool BoolOccurrence = false;
  scanForSubstHazards(Body, X, Seen, BinderIds, BoolOccurrence);
  if (BoolOccurrence)
    return false;
  for (const auto &[Var, Coeff] : Repl.coeffs()) {
    (void)Coeff;
    if (BinderIds.count(Var))
      return false; // would be captured; Cooper handles it instead
  }
  return true;
}

TermRef eqSubstRec(const TermRef &T, Memo &M) {
  if (T->sort() != Sort::Bool)
    return T;
  auto It = M.find(T.get());
  if (It != M.end())
    return It->second;
  TermRef R;
  switch (T->kind()) {
  case TermKind::Forall:
  case TermKind::Exists: {
    TermRef Body = eqSubstRec(T->operand(0), M);
    const TermVar &X = T->var();
    if (!Body->hasFreeVar(X.Id)) {
      R = Body;
      break;
    }
    // exists x. B with B |= x = e  reduces to B[x := e]; forall x. B
    // with not-B |= x = e likewise (both directions shown in DESIGN.md).
    auto Repl = findEntailedEq(Body, X.Id, T->kind() == TermKind::Forall);
    if (Repl && !Repl->mentions(X.Id) &&
        substitutionIsSafe(Body, X.Id, *Repl)) {
      R = substVar(Body, X, linearToTerm(*Repl));
      break;
    }
    R = T->kind() == TermKind::Forall ? forall(X, Body) : exists(X, Body);
    break;
  }
  case TermKind::Not:
    R = mkNot(eqSubstRec(T->operand(0), M));
    break;
  case TermKind::And:
  case TermKind::Or: {
    std::vector<TermRef> Ops;
    Ops.reserve(T->numOperands());
    for (const TermRef &Op : T->operands())
      Ops.push_back(eqSubstRec(Op, M));
    R = T->kind() == TermKind::And ? mkAnd(std::move(Ops))
                                   : mkOr(std::move(Ops));
    break;
  }
  case TermKind::Implies:
    R = implies(eqSubstRec(T->operand(0), M), eqSubstRec(T->operand(1), M));
    break;
  case TermKind::Ite:
    R = ite(eqSubstRec(T->operand(0), M), eqSubstRec(T->operand(1), M),
            eqSubstRec(T->operand(2), M));
    break;
  default:
    R = T; // atoms and constants
    break;
  }
  M.emplace(T.get(), R);
  return R;
}

//===----------------------------------------------------------------------===//
// Stage 3: interval propagation
//===----------------------------------------------------------------------===//

/// Decides a comparison atom when the interval of its linear difference
/// is conclusive under \p Env.
TermRef decideAtom(const TermRef &T, const IntervalEnv &Env) {
  auto La = linearFromTerm(T->operand(0));
  auto Lb = linearFromTerm(T->operand(1));
  if (!La || !Lb)
    return T;
  LinearForm L = *La - *Lb;
  ValueInterval IV = intervalOfLinear(L, Env);
  if (IV.empty())
    return T; // contradictory env: leave the atom alone
  switch (T->kind()) {
  case TermKind::Le: // L <= 0 ?
    if (IV.Hi && *IV.Hi <= 0)
      return mkTrue();
    if (IV.Lo && *IV.Lo > 0)
      return mkFalse();
    break;
  case TermKind::Lt: // L < 0 ?
    if (IV.Hi && *IV.Hi < 0)
      return mkTrue();
    if (IV.Lo && *IV.Lo >= 0)
      return mkFalse();
    break;
  case TermKind::Eq: // L == 0 ?
    if (IV.Lo && IV.Hi && *IV.Lo == 0 && *IV.Hi == 0)
      return mkTrue();
    if ((IV.Lo && *IV.Lo > 0) || (IV.Hi && *IV.Hi < 0))
      return mkFalse();
    break;
  default:
    break;
  }
  return T;
}

/// Env-directed rewrite. The memo is only valid for one Env value, so
/// recursion under a changed env allocates a fresh memo. Soundness
/// invariant: the rewrite preserves the value of the subformula in every
/// model satisfying Env; in models violating Env the enclosing context
/// already forces the overall value (the env facts came from sibling
/// conjuncts / implication premises).
TermRef intervalRec(const TermRef &T, const IntervalEnv &Env, Memo &M) {
  if (T->sort() != Sort::Bool)
    return T;
  auto It = M.find(T.get());
  if (It != M.end())
    return It->second;
  TermRef R;
  switch (T->kind()) {
  case TermKind::Eq:
  case TermKind::Le:
  case TermKind::Lt:
    R = decideAtom(T, Env);
    break;
  case TermKind::Not:
    R = mkNot(intervalRec(T->operand(0), Env, M));
    break;
  case TermKind::Or: {
    std::vector<TermRef> Ops;
    Ops.reserve(T->numOperands());
    for (const TermRef &Op : T->operands())
      Ops.push_back(intervalRec(Op, Env, M));
    R = mkOr(std::move(Ops));
    break;
  }
  case TermKind::And: {
    const std::vector<TermRef> &Ops = T->operands();
    std::vector<IntervalEnv> Facts(Ops.size());
    for (size_t I = 0; I < Ops.size(); ++I)
      collectIntervalFacts(Ops[I], Facts[I]);
    IntervalEnv All = Env;
    for (const IntervalEnv &F : Facts)
      mergeTighten(All, F);
    if (anyEmpty(All)) {
      // The conjuncts (plus env) are jointly unsatisfiable.
      R = mkFalse();
      break;
    }
    // Conjuncts are rewritten left to right. Child I may assume the
    // facts of the already-rewritten children before it (they remain in
    // the formula exactly as assumed) and of the *original* children
    // after it — never its own. Simultaneously assuming every other
    // original sibling would be circular once conjuncts repeat:
    // And(a, a) would let each copy justify the other and fold to true.
    std::vector<TermRef> NewOps;
    NewOps.reserve(Ops.size());
    for (size_t I = 0; I < Ops.size(); ++I) {
      IntervalEnv Sibling = Env;
      for (size_t J = 0; J < I; ++J)
        collectIntervalFacts(NewOps[J], Sibling);
      for (size_t J = I + 1; J < Ops.size(); ++J)
        mergeTighten(Sibling, Facts[J]);
      if (Sibling == Env) {
        NewOps.push_back(intervalRec(Ops[I], Env, M));
      } else {
        Memo Fresh;
        NewOps.push_back(intervalRec(Ops[I], Sibling, Fresh));
      }
    }
    R = mkAnd(std::move(NewOps));
    break;
  }
  case TermKind::Implies: {
    TermRef A = intervalRec(T->operand(0), Env, M);
    IntervalEnv Premise = Env;
    collectIntervalFacts(A, Premise);
    if (anyEmpty(Premise)) {
      R = mkTrue(); // antecedent unsatisfiable under env
      break;
    }
    TermRef C;
    if (Premise == Env) {
      C = intervalRec(T->operand(1), Env, M);
    } else {
      Memo Fresh;
      C = intervalRec(T->operand(1), Premise, Fresh);
    }
    R = implies(A, C);
    break;
  }
  case TermKind::Ite:
    R = ite(intervalRec(T->operand(0), Env, M),
            intervalRec(T->operand(1), Env, M),
            intervalRec(T->operand(2), Env, M));
    break;
  case TermKind::Forall:
  case TermKind::Exists: {
    const TermVar &X = T->var();
    TermRef Body;
    if (Env.count(X.Id)) {
      // The binder shadows any outer fact about this id.
      IntervalEnv Inner = Env;
      Inner.erase(X.Id);
      Memo Fresh;
      Body = intervalRec(T->operand(0), Inner, Fresh);
    } else {
      Body = intervalRec(T->operand(0), Env, M);
    }
    if (!Body->hasFreeVar(X.Id))
      R = Body;
    else
      R = T->kind() == TermKind::Forall ? forall(X, Body) : exists(X, Body);
    break;
  }
  default:
    R = T; // BoolConst, Var
    break;
  }
  M.emplace(T.get(), R);
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

SimplifyOutcome exo::smt::simplifyQuery(const TermRef &Closed) {
  SimplifyConfig Cfg = simplifyConfig();
  SimplifyOutcome O;
  O.Simplified = Closed;
  if (Cfg.ConstFold && !O.decided()) {
    Memo M;
    TermRef R = foldRec(O.Simplified, M);
    O.ConstFoldHit = R.get() != O.Simplified.get();
    O.Simplified = R;
  }
  if (Cfg.EqSubst && !O.decided()) {
    Memo M;
    TermRef R = eqSubstRec(O.Simplified, M);
    O.EqSubstHit = R.get() != O.Simplified.get();
    O.Simplified = R;
  }
  if (Cfg.IntervalProp && !O.decided()) {
    Memo M;
    IntervalEnv Env;
    TermRef R = intervalRec(O.Simplified, Env, M);
    O.IntervalHit = R.get() != O.Simplified.get();
    O.Simplified = R;
  }
  return O;
}
