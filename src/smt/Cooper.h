//===- smt/Cooper.h - Cooper's quantifier elimination ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooper's algorithm for Presburger arithmetic: eliminates one integer
/// quantifier from an NNF formula without DNF conversion. Combined with
/// prenexing this decides arbitrary closed LIA sentences, which is what the
/// effect analysis of §5/§6 needs.
///
/// Reference: D.C. Cooper, "Theorem Proving in Arithmetic without
/// Multiplication", Machine Intelligence 7, 1972.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_COOPER_H
#define EXO_SMT_COOPER_H

#include "smt/Prenex.h"
#include "smt/QForm.h"

namespace exo {
namespace smt {

/// Eliminates `exists VarId` from \p F (an NNF QForm). The result mentions
/// only the remaining variables. On budget exhaustion returns garbage; the
/// caller must check \p B.exceeded().
QFormRef eliminateExists(unsigned VarId, const QFormRef &F, Budget &B);

/// Three-valued decision result.
enum class Decision { True, False, Unknown };

/// Decides a *closed* prenexed sentence by eliminating the prefix
/// innermost-out. Returns Unknown if the budget is exhausted or a
/// non-ground residue remains (i.e. the sentence was not closed).
Decision decideClosed(const PrenexResult &P, Budget &B);

} // namespace smt
} // namespace exo

#endif // EXO_SMT_COOPER_H
