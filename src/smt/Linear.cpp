//===- smt/Linear.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Linear.h"

#include "support/MathExtras.h"

using namespace exo;
using namespace exo::smt;

LinearForm &LinearForm::operator+=(const LinearForm &O) {
  Constant += O.Constant;
  for (auto &[Var, Coeff] : O.Coeffs)
    setCoeff(Var, coeff(Var) + Coeff);
  return *this;
}

LinearForm &LinearForm::operator-=(const LinearForm &O) {
  Constant -= O.Constant;
  for (auto &[Var, Coeff] : O.Coeffs)
    setCoeff(Var, coeff(Var) - Coeff);
  return *this;
}

LinearForm LinearForm::operator+(const LinearForm &O) const {
  LinearForm R = *this;
  R += O;
  return R;
}

LinearForm LinearForm::operator-(const LinearForm &O) const {
  LinearForm R = *this;
  R -= O;
  return R;
}

LinearForm LinearForm::scaled(int64_t S) const {
  LinearForm R;
  if (S == 0)
    return R;
  R.Constant = Constant * S;
  for (auto &[Var, Coeff] : Coeffs)
    R.Coeffs[Var] = Coeff * S;
  return R;
}

LinearForm LinearForm::substituted(unsigned VarId,
                                   const LinearForm &Replacement) const {
  int64_t C = coeff(VarId);
  if (C == 0)
    return *this;
  LinearForm R = *this;
  R.Coeffs.erase(VarId);
  R += Replacement.scaled(C);
  return R;
}

int64_t LinearForm::coeffGcd() const {
  int64_t G = 0;
  for (auto &[Var, Coeff] : Coeffs)
    G = gcd64(G, Coeff);
  return G;
}

bool LinearForm::operator<(const LinearForm &O) const {
  if (Constant != O.Constant)
    return Constant < O.Constant;
  return Coeffs < O.Coeffs;
}

std::string LinearForm::str() const {
  std::string Out;
  for (auto &[Var, Coeff] : Coeffs) {
    if (!Out.empty())
      Out += " + ";
    Out += std::to_string(Coeff) + "*v#" + std::to_string(Var);
  }
  if (Out.empty() || Constant != 0) {
    if (!Out.empty())
      Out += " + ";
    Out += std::to_string(Constant);
  }
  return Out;
}

std::optional<LinearForm> exo::smt::linearFromTerm(const TermRef &T) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return LinearForm(T->intValue());
  case TermKind::Var:
    return LinearForm::variable(T->var().Id);
  case TermKind::Add: {
    LinearForm Sum;
    for (auto &Op : T->operands()) {
      auto F = linearFromTerm(Op);
      if (!F)
        return std::nullopt;
      Sum += *F;
    }
    return Sum;
  }
  case TermKind::Mul: {
    auto F = linearFromTerm(T->operand(0));
    if (!F)
      return std::nullopt;
    return F->scaled(T->scalar());
  }
  default:
    return std::nullopt;
  }
}

TermRef exo::smt::linearToTerm(const LinearForm &F) {
  std::vector<TermRef> Ops;
  for (auto &[Var, Coeff] : F.coeffs())
    Ops.push_back(mul(Coeff, mkVar(TermVar{Var, "v", Sort::Int})));
  Ops.push_back(intConst(F.constant()));
  return add(std::move(Ops));
}
