//===- smt/Simplify.h - Query preprocessing pipeline -----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged query preprocessing pipeline that runs before prenex/Cooper
/// (DESIGN.md, "Solver preprocessing"). Every stage is an equivalence-
/// preserving rewrite over hash-consed terms, so simplification may turn
/// an Unknown verdict into Yes/No (by making the query cheap enough to
/// decide) but can never flip Yes and No.
///
/// Stages, each individually toggleable for ablation:
///
///   1. Constant folding + literal normalization: atoms are rewritten into
///      a canonical gcd-normalized `linear <= 0` / `linear == 0` shape so
///      that syntactically different spellings of the same literal
///      hash-cons to one node and And/Or dedup can absorb them; ground
///      atoms evaluate outright.
///   2. Equality substitution (the one-point rule): a conjunct `x = e`
///      under `exists x`, or an assumed `x = e` under `forall x`
///      (premise of an implication / negated disjunct), eliminates the
///      quantifier by Gaussian-style substitution before Cooper ever
///      sees it.
///   3. Interval propagation: conjunctive single-variable bounds flow
///      through the formula; ground and single-variable literals whose
///      value interval is conclusive are decided and dead branches
///      pruned.
///   4. Cheap-variable-first elimination ordering in Cooper (smallest
///      coefficient LCM first within a same-quantifier block) with early
///      exit once the matrix is ground. Lives in Cooper.cpp; only the
///      toggle is here.
///
/// The effect-analysis disjointness fast path (analysis/Checks.cpp) shares
/// this config (EffectFastPath) and this file's interval arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_SIMPLIFY_H
#define EXO_SMT_SIMPLIFY_H

#include "smt/Linear.h"
#include "smt/Term.h"

#include <map>
#include <optional>

namespace exo {
namespace smt {

/// Process-wide stage toggles (ablation benchmarks flip them; the query
/// hot path reads them as relaxed atomics). Defaults: everything on.
struct SimplifyConfig {
  bool ConstFold = true;      ///< stage 1: folding + literal normalization
  bool EqSubst = true;        ///< stage 2: one-point quantifier elimination
  bool IntervalProp = true;   ///< stage 3: bounds propagation
  bool CheapVarOrder = true;  ///< stage 4: Cooper ordering + early exit
  bool EffectFastPath = true; ///< analysis-side disjointness pre-check
};

SimplifyConfig simplifyConfig();
void setSimplifyConfig(const SimplifyConfig &C);
/// Convenience: all five toggles at once.
void setSimplifyEnabled(bool Enabled);

/// Result of preprocessing one closed query. Per-stage Hit flags say
/// whether the stage (when enabled) changed the term; Solver::decide turns
/// them into the Stats counters.
struct SimplifyOutcome {
  TermRef Simplified;
  bool ConstFoldHit = false;
  bool EqSubstHit = false;
  bool IntervalHit = false;

  /// The pipeline reduced the query to a constant: no prenex, no Cooper,
  /// no literal budget consumed.
  bool decided() const {
    return Simplified && Simplified->kind() == TermKind::BoolConst;
  }
};

/// Runs the enabled term-level stages (1..3) on a closed formula, in
/// order. Equivalence-preserving; with every stage disabled this returns
/// the input unchanged.
SimplifyOutcome simplifyQuery(const TermRef &Closed);

//===----------------------------------------------------------------------===//
// Interval arithmetic, shared with the effect-analysis fast path.
//===----------------------------------------------------------------------===//

/// An integer interval with optional (= unbounded) endpoints. Saturating:
/// arithmetic that would overflow int64 widens the affected endpoint to
/// unbounded rather than wrapping.
struct ValueInterval {
  std::optional<int64_t> Lo, Hi;

  bool bounded() const { return Lo.has_value() && Hi.has_value(); }
  /// Contradictory bounds (no integer satisfies them).
  bool empty() const { return Lo && Hi && *Lo > *Hi; }

  bool operator==(const ValueInterval &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const ValueInterval &O) const { return !(*this == O); }
};

/// Variable id -> interval constraint.
using IntervalEnv = std::map<unsigned, ValueInterval>;

/// Collects single-variable bound facts that hold in every model of \p F
/// (conjunctive positions only: And descends, Not(Le/Lt) dualizes,
/// anything under Or/Implies is skipped). Facts are intersected into
/// \p Env.
void collectIntervalFacts(const TermRef &F, IntervalEnv &Env);

/// The value interval of a linear form when each variable ranges over its
/// \p Env interval (absent vars are unbounded). Exact on bounded inputs,
/// saturating to unbounded on overflow. Returns an empty() interval only
/// if some involved variable's env interval is itself empty.
ValueInterval intervalOfLinear(const LinearForm &L, const IntervalEnv &Env);

} // namespace smt
} // namespace exo

#endif // EXO_SMT_SIMPLIFY_H
