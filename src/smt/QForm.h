//===- smt/QForm.h - Quantifier-free formula layer -------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quantifier-free formula representation used by Cooper's quantifier
/// elimination: positive boolean combinations (And / Or) of linear-integer
/// literals. Negation is pre-pushed into the literals, so the structure is
/// already in negation normal form.
///
/// Literal shapes:
///   LE   F <= 0
///   EQ   F == 0
///   DVD  D | F        (D > 1)
///   NDVD !(D | F)     (D > 1)
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_QFORM_H
#define EXO_SMT_QFORM_H

#include "smt/Linear.h"

#include <memory>

namespace exo {
namespace smt {

/// Shared counters and limits for one solver query. All formula-building
/// routines charge against it; once exhausted they produce garbage that the
/// caller must discard after checking exceeded().
///
/// The budget doubles as the solver's cooperative-cancellation point:
/// every DeadlinePollPeriod charges it polls the thread-local deadline
/// (support::ScopedDeadline) and, once that has passed, behaves as
/// exhausted with the timeout flag set — so a runaway query unwinds with
/// Unknown{timeout} instead of hanging its batch job.
class Budget {
public:
  explicit Budget(uint64_t MaxLiterals) : Remaining(MaxLiterals) {}

  /// Charges \p N literals; returns false once the budget is gone.
  bool charge(uint64_t N = 1) {
    if ((++Ticks & (DeadlinePollPeriod - 1)) == 0 && pollDeadline())
      return false;
    if (Remaining < N) {
      Remaining = 0;
      return false;
    }
    Remaining -= N;
    SpentLiterals += N;
    return true;
  }

  /// Exhausts the budget without attributing the remainder to literal
  /// consumption (used when an elimination step detects it cannot finish
  /// and wants to abort wholesale). spent() stays at the literals that
  /// were actually charged.
  void markExhausted() { Remaining = 0; }

  /// Literals successfully charged so far. Feeds the Cooper literal-
  /// consumption counters in Solver::Stats and the bench tripwire.
  uint64_t spent() const { return SpentLiterals; }

  /// Bookkeeping hooks for the elimination-ordering stage (Cooper.cpp):
  /// the solver folds these into its per-process stats after a query.
  void noteReorder() { ++Reorders; }
  void noteEarlyExit() { ++EarlyExits; }
  uint64_t reorders() const { return Reorders; }
  uint64_t earlyExits() const { return EarlyExits; }

  /// Marks the budget as exhausted because of a *structural* cap (a
  /// coefficient LCM or elimination bound-set overflow — genuine
  /// non-quasi-affine fallout), as opposed to running out of the literal
  /// budget. Solver::Stats reports the two separately.
  void markStructural() {
    Remaining = 0;
    Structural = true;
  }

  /// Marks the budget as exhausted because the thread deadline passed.
  void markTimeout() {
    Remaining = 0;
    TimedOut = true;
  }

  bool exceeded() const { return Remaining == 0; }

  /// True iff the exhaustion was caused by markStructural().
  bool structuralOverflow() const { return Structural; }

  /// True iff the exhaustion was caused by the deadline.
  bool timedOut() const { return TimedOut; }

private:
  /// Clock reads amortized to one per this many charges (power of two).
  static constexpr uint64_t DeadlinePollPeriod = 2048;

  /// Out-of-line slow path (QForm.cpp): reads the steady clock; returns
  /// true when the deadline has passed (and marks the timeout).
  bool pollDeadline();

  uint64_t Remaining;
  uint64_t Ticks = 0;
  uint64_t SpentLiterals = 0;
  uint64_t Reorders = 0;
  uint64_t EarlyExits = 0;
  bool Structural = false;
  bool TimedOut = false;
};

/// A literal over linear integer forms.
struct QLit {
  enum class Kind { LE, EQ, DVD, NDVD };

  Kind LitKind;
  int64_t Divisor = 0; ///< for DVD / NDVD
  LinearForm Form;

  bool operator==(const QLit &O) const {
    return LitKind == O.LitKind && Divisor == O.Divisor && Form == O.Form;
  }
  bool operator<(const QLit &O) const;

  std::string str() const;
};

class QForm;
using QFormRef = std::shared_ptr<const QForm>;

/// An NNF formula tree: True, False, a literal, or an And/Or of children.
class QForm {
public:
  enum class Kind { True, False, Lit, And, Or };

  Kind kind() const { return TheKind; }
  const QLit &lit() const {
    assert(TheKind == Kind::Lit && "not a literal");
    return Literal;
  }
  const std::vector<QFormRef> &children() const { return Children; }

  bool isTrue() const { return TheKind == Kind::True; }
  bool isFalse() const { return TheKind == Kind::False; }

  /// True if any literal in the formula mentions variable \p VarId.
  bool mentions(unsigned VarId) const;

  std::string str() const;

  QForm(Kind K, QLit L, std::vector<QFormRef> C)
      : TheKind(K), Literal(std::move(L)), Children(std::move(C)) {}

private:
  Kind TheKind;
  QLit Literal;
  std::vector<QFormRef> Children;
};

QFormRef qTrue();
QFormRef qFalse();

/// Builds a literal, evaluating it if the form is constant, and
/// normalizing by the gcd of the coefficients.
QFormRef qLit(QLit::Kind K, LinearForm F, int64_t Divisor, Budget &B);

/// Convenience literal builders (all normalize/evaluate).
QFormRef qLe(LinearForm F, Budget &B);  ///< F <= 0
QFormRef qEq(LinearForm F, Budget &B);  ///< F == 0
QFormRef qNe(LinearForm F, Budget &B);  ///< F != 0  (expands to an Or)
QFormRef qDvd(int64_t D, LinearForm F, Budget &B);
QFormRef qNdvd(int64_t D, LinearForm F, Budget &B);

/// And/Or with flattening, constant absorption, and duplicate removal.
QFormRef qAnd(std::vector<QFormRef> Children, Budget &B);
QFormRef qOr(std::vector<QFormRef> Children, Budget &B);

/// Negates an NNF formula (dualizes connectives, negates literals).
QFormRef qNot(const QFormRef &F, Budget &B);

/// Substitutes variable \p VarId by a linear form in every literal.
QFormRef qSubst(const QFormRef &F, unsigned VarId, const LinearForm &Repl,
                Budget &B);

} // namespace smt
} // namespace exo

#endif // EXO_SMT_QFORM_H
