//===- smt/Prenex.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Prenex.h"

#include <unordered_map>

using namespace exo;
using namespace exo::smt;

namespace {

/// The conversion state threaded through the recursive walk.
class PrenexConverter {
public:
  explicit PrenexConverter(Budget &B) : B(B) {}

  QFormRef convert(const TermRef &T, bool Positive);

  std::vector<QuantEntry> takePrefix() { return std::move(Prefix); }

private:
  QFormRef convertAtom(const TermRef &Atom, bool Positive);
  LinearForm lowerIntTerm(const TermRef &T, std::vector<QFormRef> &Defs);
  unsigned renamed(unsigned Id) const;

  Budget &B;
  std::vector<QuantEntry> Prefix;
  std::unordered_map<unsigned, unsigned> Renaming;
};

} // namespace

unsigned PrenexConverter::renamed(unsigned Id) const {
  auto It = Renaming.find(Id);
  return It == Renaming.end() ? Id : It->second;
}

/// Finds the first integer-sorted Ite node inside \p T, or null. The cached
/// hasIntIte() flag prunes Ite-free subtrees without traversal.
static TermRef findIntIte(const TermRef &T) {
  if (!T->hasIntIte())
    return nullptr;
  if (T->kind() == TermKind::Ite && T->sort() == Sort::Int)
    return T;
  for (auto &Op : T->operands())
    if (TermRef Found = findIntIte(Op))
      return Found;
  return nullptr;
}

/// Replaces every occurrence (by structural equality) of \p Target in \p T.
static TermRef replaceTerm(const TermRef &T, const TermRef &Target,
                           const TermRef &Replacement) {
  if (T->equals(*Target))
    return Replacement;
  std::vector<TermRef> Ops;
  bool Changed = false;
  Ops.reserve(T->numOperands());
  for (auto &Op : T->operands()) {
    Ops.push_back(replaceTerm(Op, Target, Replacement));
    Changed |= Ops.back() != Op;
  }
  if (!Changed)
    return T;
  switch (T->kind()) {
  case TermKind::Add:
    return add(std::move(Ops));
  case TermKind::Mul:
    return mul(T->scalar(), Ops[0]);
  case TermKind::Div:
    return div(Ops[0], T->scalar());
  case TermKind::Mod:
    return mod(Ops[0], T->scalar());
  case TermKind::Eq:
    return eq(Ops[0], Ops[1]);
  case TermKind::Le:
    return le(Ops[0], Ops[1]);
  case TermKind::Lt:
    return lt(Ops[0], Ops[1]);
  case TermKind::Ite:
    return ite(Ops[0], Ops[1], Ops[2]);
  default:
    fatalError("replaceTerm: unexpected node under an atom");
  }
}

LinearForm PrenexConverter::lowerIntTerm(const TermRef &T,
                                         std::vector<QFormRef> &Defs) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return LinearForm(T->intValue());
  case TermKind::Var:
    return LinearForm::variable(renamed(T->var().Id));
  case TermKind::Add: {
    LinearForm Sum;
    for (auto &Op : T->operands())
      Sum += lowerIntTerm(Op, Defs);
    return Sum;
  }
  case TermKind::Mul:
    return lowerIntTerm(T->operand(0), Defs).scaled(T->scalar());
  case TermKind::Div:
  case TermKind::Mod: {
    // q := t div c, with defining constraint 0 <= t - c*q <= c - 1.
    // The quotient is functionally determined, so introducing an innermost
    // existential is an equivalence under any polarity.
    LinearForm Inner = lowerIntTerm(T->operand(0), Defs);
    int64_t C = T->scalar();
    TermVar Q = freshVar("q", Sort::Int);
    Prefix.push_back({QuantEntry::Q::Exists, Q.Id});
    LinearForm QForm1 = LinearForm::variable(Q.Id, C) - Inner; // c*q - t <= 0
    LinearForm QForm2 = Inner - LinearForm::variable(Q.Id, C); // t - c*q
    QForm2.setConstant(QForm2.constant() - (C - 1));           // ... - (c-1) <= 0
    Defs.push_back(qLe(std::move(QForm1), B));
    Defs.push_back(qLe(std::move(QForm2), B));
    if (T->kind() == TermKind::Div)
      return LinearForm::variable(Q.Id);
    // t mod c == t - c*q.
    return Inner - LinearForm::variable(Q.Id, C);
  }
  default:
    fatalError("lowerIntTerm: unexpected term kind " + T->str());
  }
}

QFormRef PrenexConverter::convertAtom(const TermRef &Atom, bool Positive) {
  // Split out integer-sorted if-then-else first.
  if (TermRef IteNode = findIntIte(Atom)) {
    TermRef WithThen = replaceTerm(Atom, IteNode, IteNode->operand(1));
    TermRef WithElse = replaceTerm(Atom, IteNode, IteNode->operand(2));
    TermRef Cond = IteNode->operand(0);
    // atom[ite(c,t,e)] == (c && atom[t]) || (!c && atom[e]); this identity
    // holds under both polarities, so recurse through convert().
    TermRef Expanded = mkOr(mkAnd(Cond, WithThen),
                            mkAnd(mkNot(Cond), WithElse));
    return convert(Expanded, Positive);
  }

  std::vector<QFormRef> Defs;
  LinearForm L;
  switch (Atom->kind()) {
  case TermKind::Le:
    L = lowerIntTerm(Atom->operand(0), Defs) -
        lowerIntTerm(Atom->operand(1), Defs);
    break;
  case TermKind::Lt: {
    L = lowerIntTerm(Atom->operand(0), Defs) -
        lowerIntTerm(Atom->operand(1), Defs);
    L.setConstant(L.constant() + 1);
    break;
  }
  case TermKind::Eq:
    L = lowerIntTerm(Atom->operand(0), Defs) -
        lowerIntTerm(Atom->operand(1), Defs);
    break;
  default:
    fatalError("convertAtom: not an atom: " + Atom->str());
  }

  QFormRef Lit;
  if (Atom->kind() == TermKind::Eq)
    Lit = Positive ? qEq(std::move(L), B) : qNe(std::move(L), B);
  else
    Lit = Positive ? qLe(std::move(L), B)
                   : qNot(qLe(std::move(L), B), B);
  Defs.push_back(Lit);
  return qAnd(std::move(Defs), B);
}

QFormRef PrenexConverter::convert(const TermRef &T, bool Positive) {
  if (B.exceeded())
    return qFalse();
  switch (T->kind()) {
  case TermKind::BoolConst:
    return T->boolValue() == Positive ? qTrue() : qFalse();
  case TermKind::Var: {
    // A boolean variable b is mapped onto an integer variable with the
    // same Id; the literal is b >= 1 i.e. 1 - b <= 0. The 0/1 range
    // constraint is the closure's responsibility.
    assert(T->sort() == Sort::Bool && "int var in formula position");
    LinearForm L = LinearForm::variable(renamed(T->var().Id), -1);
    L.setConstant(1); // 1 - b <= 0
    QFormRef Lit = qLe(std::move(L), B);
    return Positive ? Lit : qNot(Lit, B);
  }
  case TermKind::Not:
    return convert(T->operand(0), !Positive);
  case TermKind::And:
  case TermKind::Or: {
    bool IsAnd = (T->kind() == TermKind::And) == Positive;
    std::vector<QFormRef> Parts;
    Parts.reserve(T->numOperands());
    for (auto &Op : T->operands())
      Parts.push_back(convert(Op, Positive));
    return IsAnd ? qAnd(std::move(Parts), B) : qOr(std::move(Parts), B);
  }
  case TermKind::Implies: {
    QFormRef A = convert(T->operand(0), !Positive);
    QFormRef C = convert(T->operand(1), Positive);
    // positive: !a || c ; negative: (a && !c) which is !(!a || c) -- the
    // polarity flip has already been applied to the children, so:
    return Positive ? qOr({A, C}, B) : qAnd({A, C}, B);
  }
  case TermKind::Ite: {
    assert(T->sort() == Sort::Bool && "int ite in formula position");
    TermRef Expanded =
        mkOr(mkAnd(T->operand(0), T->operand(1)),
             mkAnd(mkNot(T->operand(0)), T->operand(2)));
    return convert(Expanded, Positive);
  }
  case TermKind::Forall:
  case TermKind::Exists: {
    bool IsForall = (T->kind() == TermKind::Forall) == Positive;
    TermVar Fresh = freshVar(T->var().Name, Sort::Int);
    Prefix.push_back(
        {IsForall ? QuantEntry::Q::Forall : QuantEntry::Q::Exists, Fresh.Id});
    unsigned OldId = T->var().Id;
    auto Saved = Renaming.find(OldId) != Renaming.end()
                     ? std::optional<unsigned>(Renaming[OldId])
                     : std::nullopt;
    Renaming[OldId] = Fresh.Id;
    QFormRef Body = convert(T->operand(0), Positive);
    if (Saved)
      Renaming[OldId] = *Saved;
    else
      Renaming.erase(OldId);
    return Body;
  }
  case TermKind::Eq:
  case TermKind::Le:
  case TermKind::Lt:
    return convertAtom(T, Positive);
  default:
    fatalError("prenex: unexpected term in formula position: " + T->str());
  }
}

PrenexResult exo::smt::prenex(const TermRef &F, Budget &B) {
  PrenexConverter Converter(B);
  QFormRef Body = Converter.convert(F, /*Positive=*/true);
  return PrenexResult{Converter.takePrefix(), std::move(Body)};
}
