//===- smt/QueryCache.h - Memoized solver query cache ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide memo table for closed solver queries. Keys are canonical
/// serializations — bound variables are alpha-renamed to De Bruijn *levels*
/// (binder depth, so sibling subterms canonicalize independently) and the
/// children of commutative operators (And, Or, Add, Eq) are sorted — so the
/// same proof obligation re-posed by a scheduling operator with freshly
/// minted variables still hits. Two terms with equal keys are logically
/// equivalent, hence share a verdict; a hit returns exactly what the cold
/// decision procedure returned.
///
/// Only Yes/No verdicts are stored. Unknown is NEVER cached: it depends on
/// the literal budget, so raising the budget must re-run the query. Yes/No
/// are budget-independent (the budget can only cause Unknown), so the key
/// does not include the budget.
///
/// The table is striped (independently locked shards, selected by key
/// hash) so concurrent compile sessions share verdicts without sharing a
/// mutex; see the "Threading model" section of DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_QUERYCACHE_H
#define EXO_SMT_QUERYCACHE_H

#include "smt/Solver.h"

#include <string>

namespace exo {
namespace smt {

/// Counters for the process-wide query cache.
struct QueryCacheStats {
  uint64_t Hits = 0;        ///< lookups that returned a stored verdict
  uint64_t Misses = 0;      ///< lookups that found nothing
  uint64_t Insertions = 0;  ///< verdicts stored
  uint64_t Evictions = 0;   ///< whole-table flushes on overflow
  uint64_t Uncacheable = 0; ///< keys abandoned at the serialization size cap
  size_t Size = 0;          ///< entries currently stored
};

/// Canonical key of a closed query (see file comment for the rules).
/// Returns the empty string when serialization exceeds the size cap;
/// callers must treat that query as uncacheable.
std::string canonicalQueryKey(const TermRef &Closed);

/// Global enable switch (defaults to on); mirrors setDefaultMaxLiterals so
/// ablation benches can toggle it process-wide.
bool queryCacheEnabled();
void setQueryCacheEnabled(bool Enabled);

/// Looks up \p Key; on a hit stores the verdict in \p Out and returns true.
bool queryCacheLookup(const std::string &Key, SolverResult &Out);

/// Stores a Yes/No verdict. Calls with Unknown are ignored (and assert in
/// debug builds); empty keys are ignored.
void queryCacheInsert(const std::string &Key, SolverResult R);

QueryCacheStats solverQueryCacheStats();
void clearSolverQueryCache();

} // namespace smt
} // namespace exo

#endif // EXO_SMT_QUERYCACHE_H
