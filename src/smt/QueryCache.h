//===- smt/QueryCache.h - Memoized solver query cache ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide memo table for closed solver queries. Keys are canonical
/// serializations — bound variables are alpha-renamed to De Bruijn *levels*
/// (binder depth, so sibling subterms canonicalize independently), free
/// variables are alpha-renamed to their first-occurrence order in a
/// pre-order walk (so no raw VarId ever reaches a key and re-posed
/// obligations over freshly minted variables still collide), and the
/// children of commutative operators (And, Or, Add, Eq) are sorted. Two
/// terms with equal keys are logically equivalent up to a bijective
/// renaming of variables, hence share a verdict; a hit returns exactly
/// what the cold decision procedure returned.
///
/// Entries are tagged with the *cache job* (see ScopedQueryJob) that
/// inserted them, so the stats can attribute each hit as same-job or
/// cross-job. Cross-job hits are the currency of warm multi-compile paths
/// (BatchDriver, exocc-serve, exocc-tune): they measure how much one
/// compile amortizes for the next.
///
/// Only Yes/No verdicts are stored. Unknown is NEVER cached: it depends on
/// the literal budget, so raising the budget must re-run the query. Yes/No
/// are budget-independent (the budget can only cause Unknown), so the key
/// does not include the budget.
///
/// The table is striped (independently locked shards, selected by key
/// hash) so concurrent compile sessions share verdicts without sharing a
/// mutex; see the "Threading model" section of DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_QUERYCACHE_H
#define EXO_SMT_QUERYCACHE_H

#include "smt/Solver.h"

#include <string>

namespace exo {
namespace smt {

/// Counters for the process-wide query cache.
struct QueryCacheStats {
  uint64_t Hits = 0;        ///< lookups that returned a stored verdict
  uint64_t Misses = 0;      ///< lookups that found nothing
  uint64_t Insertions = 0;  ///< verdicts stored
  uint64_t Evictions = 0;   ///< whole-table flushes on overflow
  uint64_t Uncacheable = 0; ///< keys abandoned at the serialization size cap
  /// Hits whose entry was inserted by a *different* cache job than the one
  /// performing the lookup (subset of Hits). Each CompileSession::run
  /// installs a fresh job id, so this counts verdicts one compile reused
  /// from another in the same process — batch siblings, daemon requests,
  /// tuner candidates.
  uint64_t CrossJobHits = 0;
  size_t Size = 0;          ///< entries currently stored
};

/// Canonical key of a closed query (see file comment for the rules).
/// Returns the empty string when serialization exceeds the size cap;
/// callers must treat that query as uncacheable.
std::string canonicalQueryKey(const TermRef &Closed);

/// Global enable switch (defaults to on); mirrors setDefaultMaxLiterals so
/// ablation benches can toggle it process-wide.
bool queryCacheEnabled();
void setQueryCacheEnabled(bool Enabled);

/// Looks up \p Key; on a hit stores the verdict in \p Out and returns true.
bool queryCacheLookup(const std::string &Key, SolverResult &Out);

/// Stores a Yes/No verdict. Calls with Unknown are ignored (and assert in
/// debug builds); empty keys are ignored.
void queryCacheInsert(const std::string &Key, SolverResult R);

QueryCacheStats solverQueryCacheStats();

/// The calling thread's own cache activity (Size is always 0 here). A
/// compile job runs entirely on one worker thread, so before/after deltas
/// of this snapshot give exact per-job hit counts even while sibling jobs
/// hammer the same stripes.
QueryCacheStats queryCacheThreadStats();

void clearSolverQueryCache();

/// Cache-job identity for cross-job hit attribution. A "job" is one
/// logical compile (CompileSession::run installs one for its whole
/// build+codegen span); ids are process-unique and never reused. The id is
/// thread-local: a job runs entirely on one thread, and concurrent jobs on
/// other threads each carry their own. Id 0 means "outside any job"
/// (ad-hoc solver use); entries inserted there still count as cross-job
/// when a later job hits them.
class ScopedQueryJob {
public:
  ScopedQueryJob();
  ~ScopedQueryJob();
  ScopedQueryJob(const ScopedQueryJob &) = delete;
  ScopedQueryJob &operator=(const ScopedQueryJob &) = delete;
  uint64_t id() const { return Id; }

private:
  uint64_t Id;
  uint64_t Prev;
};

/// The calling thread's current cache-job id (0 when none installed).
uint64_t currentQueryJobId();

} // namespace smt
} // namespace exo

#endif // EXO_SMT_QUERYCACHE_H
