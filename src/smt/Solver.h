//===- smt/Solver.h - Validity / satisfiability interface ------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver facade used by the effect analysis, the bounds checker, and
/// the unification engine. Queries are quantified LIA formulas; answers are
/// three-valued so every client can fail safe on Unknown (the paper's
/// approach: an imprecise analysis may only reject, never admit, a rewrite).
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_SOLVER_H
#define EXO_SMT_SOLVER_H

#include "smt/Term.h"

#include <cstdint>

namespace exo {
namespace smt {

enum class SolverResult { Yes, No, Unknown };

/// Process-wide default literal budget (overridable for ablations). A
/// thread-scoped override (ScopedSolverDefaults) takes precedence on the
/// thread that installed it.
uint64_t defaultMaxLiterals();
void setDefaultMaxLiterals(uint64_t Budget);

/// Default for SolverOptions::UseQueryCache; true unless a thread-scoped
/// override says otherwise.
bool defaultUseQueryCache();

/// RAII override of the solver defaults for the current thread only.
/// Compile sessions install one so solvers constructed anywhere in the
/// scheduling pipeline pick up the session's budget, while sessions on
/// other threads keep their own. Nests; the destructor restores the
/// previous scope.
class ScopedSolverDefaults {
public:
  ScopedSolverDefaults(uint64_t MaxLiterals, bool UseQueryCache);
  ~ScopedSolverDefaults();
  ScopedSolverDefaults(const ScopedSolverDefaults &) = delete;
  ScopedSolverDefaults &operator=(const ScopedSolverDefaults &) = delete;

private:
  bool PrevActive;
  uint64_t PrevBudget;
  bool PrevUseCache;
};

/// Tuning knobs. MaxLiterals bounds the total number of literals the
/// elimination pipeline may create for a single query. UseQueryCache lets a
/// single solver opt out of the process-wide memo table (see QueryCache.h);
/// the table also has a global enable switch.
struct SolverOptions {
  uint64_t MaxLiterals = defaultMaxLiterals();
  bool UseQueryCache = defaultUseQueryCache();
};

/// Decision procedure for quantified linear integer arithmetic.
///
/// Free integer variables are implicitly universally quantified by
/// checkValid and existentially by checkSat. Free *boolean* variables are
/// closed the same way over the range {0, 1}.
class Solver {
public:
  explicit Solver(SolverOptions Opts = SolverOptions()) : Opts(Opts) {}

  /// Is \p F true under every assignment of its free variables?
  SolverResult checkValid(const TermRef &F);

  /// Is \p F true under some assignment of its free variables?
  SolverResult checkSat(const TermRef &F);

  /// Query statistics, for the ablation benchmarks. NumUnknown is the sum
  /// of its three breakdown counters: NumUnknownBudget (ran out of the
  /// literal budget — retrying with a larger budget may succeed),
  /// NumUnknownStructural (Cooper's structural caps fired: coefficient LCM
  /// or bound-set overflow — genuine non-quasi-affine fallout that no
  /// budget will fix), and NumUnknownTimeout (the thread's deadline passed
  /// mid-query; see support/Deadline.h — neither budget nor structure is
  /// implicated, the query was cancelled). Cache counters track the
  /// process-wide query cache.
  /// Preprocessing counters (DESIGN.md, "Solver preprocessing"): each
  /// enabled pipeline stage counts a hit when it changed the query and a
  /// miss when it left it alone; SimplifyDecided counts queries reduced
  /// to a constant before prenex (no literal budget consumed at all).
  /// NumLiterals is the total Cooper literal consumption — the currency
  /// of the bench tripwire. FastPathHits/Misses track the effect-analysis
  /// disjointness pre-check, which answers without building a query
  /// (hits are NOT included in NumQueries).
  struct Stats {
    uint64_t NumQueries = 0;
    uint64_t NumUnknown = 0;
    uint64_t NumUnknownBudget = 0;
    uint64_t NumUnknownStructural = 0;
    uint64_t NumUnknownTimeout = 0;
    uint64_t CacheHits = 0;
    uint64_t CacheMisses = 0;
    uint64_t NumLiterals = 0;
    uint64_t SimplifyConstFoldHits = 0;
    uint64_t SimplifyConstFoldMisses = 0;
    uint64_t SimplifyEqSubstHits = 0;
    uint64_t SimplifyEqSubstMisses = 0;
    uint64_t SimplifyIntervalHits = 0;
    uint64_t SimplifyIntervalMisses = 0;
    uint64_t SimplifyDecided = 0;
    uint64_t CooperReorders = 0;
    uint64_t CooperEarlyExits = 0;
    uint64_t FastPathHits = 0;
    uint64_t FastPathMisses = 0;
  };
  const Stats &stats() const { return TheStats; }

private:
  SolverResult decide(TermRef Closed);

  SolverOptions Opts;
  Stats TheStats;
};

/// Process-wide aggregate of every Solver instance's Stats. Benchmarks use
/// this to observe solvers created deep inside the scheduling pipeline.
Solver::Stats solverGlobalStats();
void resetSolverGlobalStats();

/// Per-thread aggregate of the same counters. A batch job runs entirely
/// on one worker thread, so CompileSession snapshots this before and
/// after a job to attribute query counts to it exactly, without racing
/// against jobs on other threads.
Solver::Stats solverThreadStats();

/// Records an effect-analysis disjointness fast-path outcome (see
/// analysis/Checks.cpp) into the global and per-thread stats. Lives here
/// so the fast path shares the solver's stats plumbing.
void noteEffectFastPath(bool Hit);

/// The most recent query on this thread that came back Unknown for
/// *budget* reasons, kept so retry policies can re-prove just that query
/// under an escalated budget instead of re-running a whole job
/// (CompileSession::attemptJob). Cleared explicitly by the retry loop.
TermRef lastBudgetUnknownQuery();
void clearLastBudgetUnknownQuery();

} // namespace smt
} // namespace exo

#endif // EXO_SMT_SOLVER_H
