//===- smt/QForm.cpp -------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/QForm.h"

#include "support/Deadline.h"
#include "support/MathExtras.h"

#include <algorithm>

using namespace exo;
using namespace exo::smt;

bool Budget::pollDeadline() {
  if (TimedOut)
    return true;
  if (!support::threadDeadlineExpired())
    return false;
  markTimeout();
  return true;
}

bool QLit::operator<(const QLit &O) const {
  if (LitKind != O.LitKind)
    return LitKind < O.LitKind;
  if (Divisor != O.Divisor)
    return Divisor < O.Divisor;
  return Form < O.Form;
}

std::string QLit::str() const {
  switch (LitKind) {
  case Kind::LE:
    return Form.str() + " <= 0";
  case Kind::EQ:
    return Form.str() + " == 0";
  case Kind::DVD:
    return std::to_string(Divisor) + " | " + Form.str();
  case Kind::NDVD:
    return "!(" + std::to_string(Divisor) + " | " + Form.str() + ")";
  }
  return "?";
}

bool QForm::mentions(unsigned VarId) const {
  switch (TheKind) {
  case Kind::True:
  case Kind::False:
    return false;
  case Kind::Lit:
    return Literal.Form.mentions(VarId);
  case Kind::And:
  case Kind::Or:
    for (auto &C : Children)
      if (C->mentions(VarId))
        return true;
    return false;
  }
  return false;
}

std::string QForm::str() const {
  switch (TheKind) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Lit:
    return Literal.str();
  case Kind::And:
  case Kind::Or: {
    std::string Out = TheKind == Kind::And ? "(and" : "(or";
    for (auto &C : Children) {
      Out += ' ';
      Out += C->str();
    }
    Out += ')';
    return Out;
  }
  }
  return "?";
}

QFormRef exo::smt::qTrue() {
  static QFormRef T =
      std::make_shared<QForm>(QForm::Kind::True, QLit{}, std::vector<QFormRef>{});
  return T;
}

QFormRef exo::smt::qFalse() {
  static QFormRef F =
      std::make_shared<QForm>(QForm::Kind::False, QLit{}, std::vector<QFormRef>{});
  return F;
}

QFormRef exo::smt::qLit(QLit::Kind K, LinearForm F, int64_t Divisor,
                        Budget &B) {
  if (!B.charge())
    return qFalse();

  // Constant evaluation.
  if (F.isConstant()) {
    int64_t C = F.constant();
    switch (K) {
    case QLit::Kind::LE:
      return C <= 0 ? qTrue() : qFalse();
    case QLit::Kind::EQ:
      return C == 0 ? qTrue() : qFalse();
    case QLit::Kind::DVD:
      return floorMod(C, Divisor) == 0 ? qTrue() : qFalse();
    case QLit::Kind::NDVD:
      return floorMod(C, Divisor) != 0 ? qTrue() : qFalse();
    }
  }

  // Normalize by the gcd of the variable coefficients.
  int64_t G = F.coeffGcd();
  assert(G > 0 && "non-constant form with zero gcd");
  switch (K) {
  case QLit::Kind::LE:
    if (G != 1) {
      // g*t + c <= 0  <=>  t <= floor(-c / g)  <=>  t - floor(-c/g) <= 0.
      LinearForm Out;
      for (auto &[Var, Coeff] : F.coeffs())
        Out.setCoeff(Var, Coeff / G);
      Out.setConstant(-floorDiv(-F.constant(), G));
      F = Out;
    }
    break;
  case QLit::Kind::EQ:
    if (G != 1) {
      if (floorMod(F.constant(), G) != 0)
        return qFalse();
      LinearForm Out;
      for (auto &[Var, Coeff] : F.coeffs())
        Out.setCoeff(Var, Coeff / G);
      Out.setConstant(F.constant() / G);
      F = Out;
    }
    break;
  case QLit::Kind::DVD:
  case QLit::Kind::NDVD: {
    assert(Divisor > 0 && "divisibility needs a positive modulus");
    if (Divisor == 1)
      return K == QLit::Kind::DVD ? qTrue() : qFalse();
    // Reduce coefficients and constant modulo the divisor.
    LinearForm Out;
    for (auto &[Var, Coeff] : F.coeffs())
      Out.setCoeff(Var, floorMod(Coeff, Divisor));
    Out.setConstant(floorMod(F.constant(), Divisor));
    F = Out;
    if (F.isConstant()) {
      bool Holds = F.constant() == 0;
      if (K == QLit::Kind::NDVD)
        Holds = !Holds;
      return Holds ? qTrue() : qFalse();
    }
    break;
  }
  }

  QLit L{K, Divisor, std::move(F)};
  return std::make_shared<QForm>(QForm::Kind::Lit, std::move(L),
                                 std::vector<QFormRef>{});
}

QFormRef exo::smt::qLe(LinearForm F, Budget &B) {
  return qLit(QLit::Kind::LE, std::move(F), 0, B);
}

QFormRef exo::smt::qEq(LinearForm F, Budget &B) {
  return qLit(QLit::Kind::EQ, std::move(F), 0, B);
}

QFormRef exo::smt::qNe(LinearForm F, Budget &B) {
  // F != 0  <=>  F + 1 <= 0  or  -F + 1 <= 0.
  LinearForm Lo = F;
  Lo.setConstant(Lo.constant() + 1);
  LinearForm Hi = F.negated();
  Hi.setConstant(Hi.constant() + 1);
  return qOr({qLe(std::move(Lo), B), qLe(std::move(Hi), B)}, B);
}

QFormRef exo::smt::qDvd(int64_t D, LinearForm F, Budget &B) {
  return qLit(QLit::Kind::DVD, std::move(F), D, B);
}

QFormRef exo::smt::qNdvd(int64_t D, LinearForm F, Budget &B) {
  return qLit(QLit::Kind::NDVD, std::move(F), D, B);
}

static QFormRef makeNary(QForm::Kind K, std::vector<QFormRef> Children,
                         Budget &B) {
  bool IsAnd = K == QForm::Kind::And;
  std::vector<QFormRef> Flat;
  for (auto &C : Children) {
    if ((IsAnd && C->isFalse()) || (!IsAnd && C->isTrue()))
      return IsAnd ? qFalse() : qTrue();
    if ((IsAnd && C->isTrue()) || (!IsAnd && C->isFalse()))
      continue;
    if (C->kind() == K) {
      for (auto &Inner : C->children())
        Flat.push_back(Inner);
    } else {
      Flat.push_back(C);
    }
  }
  // Deduplicate identical literal children (cheap but effective).
  std::vector<QFormRef> Dedup;
  for (auto &C : Flat) {
    bool Duplicate = false;
    if (C->kind() == QForm::Kind::Lit) {
      for (auto &D : Dedup)
        if (D->kind() == QForm::Kind::Lit && D->lit() == C->lit()) {
          Duplicate = true;
          break;
        }
    }
    if (!Duplicate)
      Dedup.push_back(C);
  }
  if (Dedup.empty())
    return IsAnd ? qTrue() : qFalse();
  if (Dedup.size() == 1)
    return Dedup[0];
  if (!B.charge(Dedup.size()))
    return IsAnd ? qFalse() : qTrue();
  return std::make_shared<QForm>(K, QLit{}, std::move(Dedup));
}

QFormRef exo::smt::qAnd(std::vector<QFormRef> Children, Budget &B) {
  return makeNary(QForm::Kind::And, std::move(Children), B);
}

QFormRef exo::smt::qOr(std::vector<QFormRef> Children, Budget &B) {
  return makeNary(QForm::Kind::Or, std::move(Children), B);
}

QFormRef exo::smt::qNot(const QFormRef &F, Budget &B) {
  switch (F->kind()) {
  case QForm::Kind::True:
    return qFalse();
  case QForm::Kind::False:
    return qTrue();
  case QForm::Kind::Lit: {
    const QLit &L = F->lit();
    switch (L.LitKind) {
    case QLit::Kind::LE: {
      // !(F <= 0)  <=>  -F + 1 <= 0.
      LinearForm G = L.Form.negated();
      G.setConstant(G.constant() + 1);
      return qLe(std::move(G), B);
    }
    case QLit::Kind::EQ:
      return qNe(L.Form, B);
    case QLit::Kind::DVD:
      return qNdvd(L.Divisor, L.Form, B);
    case QLit::Kind::NDVD:
      return qDvd(L.Divisor, L.Form, B);
    }
    return qFalse();
  }
  case QForm::Kind::And:
  case QForm::Kind::Or: {
    std::vector<QFormRef> Negated;
    Negated.reserve(F->children().size());
    for (auto &C : F->children())
      Negated.push_back(qNot(C, B));
    return F->kind() == QForm::Kind::And ? qOr(std::move(Negated), B)
                                         : qAnd(std::move(Negated), B);
  }
  }
  return qFalse();
}

QFormRef exo::smt::qSubst(const QFormRef &F, unsigned VarId,
                          const LinearForm &Repl, Budget &B) {
  switch (F->kind()) {
  case QForm::Kind::True:
  case QForm::Kind::False:
    return F;
  case QForm::Kind::Lit: {
    if (!F->lit().Form.mentions(VarId))
      return F;
    return qLit(F->lit().LitKind, F->lit().Form.substituted(VarId, Repl),
                F->lit().Divisor, B);
  }
  case QForm::Kind::And:
  case QForm::Kind::Or: {
    std::vector<QFormRef> Out;
    Out.reserve(F->children().size());
    bool Changed = false;
    for (auto &C : F->children()) {
      Out.push_back(qSubst(C, VarId, Repl, B));
      Changed |= Out.back() != C;
    }
    if (!Changed)
      return F;
    return F->kind() == QForm::Kind::And ? qAnd(std::move(Out), B)
                                         : qOr(std::move(Out), B);
  }
  }
  return F;
}
