//===- smt/Term.cpp --------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Term.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

using namespace exo;
using namespace exo::smt;

static std::atomic<unsigned> &freshVarCounter() {
  static std::atomic<unsigned> NextId{1};
  return NextId;
}

TermVar exo::smt::freshVar(const std::string &Name, Sort S) {
  return TermVar{freshVarCounter().fetch_add(1), Name, S};
}

unsigned exo::smt::freshVarMark() { return freshVarCounter().load(); }

//===----------------------------------------------------------------------===//
// Hash-consing interner
//===----------------------------------------------------------------------===//

static size_t hashMix(size_t Seed, size_t V) {
  // boost::hash_combine mixing.
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

static size_t structuralHash(TermKind K, Sort S, int64_t V, unsigned VarId,
                             const std::vector<TermRef> &Ops) {
  size_t H = hashMix(static_cast<size_t>(K) * 31 + static_cast<size_t>(S),
                     static_cast<size_t>(static_cast<uint64_t>(V)));
  H = hashMix(H, VarId);
  for (auto &Op : Ops)
    H = hashMix(H, Op->hash());
  return H;
}

Term::Term(TermKind K, Sort S, int64_t V, TermVar Var, std::vector<TermRef> Ops)
    : Kind(K), TheSort(S), Value(V), Variable(std::move(Var)),
      Operands(std::move(Ops)) {
  Hash = structuralHash(Kind, TheSort, Value,
                        Kind == TermKind::Var || Kind == TermKind::Forall ||
                                Kind == TermKind::Exists
                            ? Variable.Id
                            : 0,
                        Operands);
  IntIte = Kind == TermKind::Ite && TheSort == Sort::Int;
  if (Kind == TermKind::Var) {
    FreeIds.push_back(Variable.Id);
  } else if (Operands.size() == 1) {
    FreeIds = Operands[0]->freeVarIds();
    IntIte |= Operands[0]->hasIntIte();
  } else {
    for (auto &Op : Operands) {
      IntIte |= Op->hasIntIte();
      FreeIds.insert(FreeIds.end(), Op->freeVarIds().begin(),
                     Op->freeVarIds().end());
    }
    std::sort(FreeIds.begin(), FreeIds.end());
    FreeIds.erase(std::unique(FreeIds.begin(), FreeIds.end()), FreeIds.end());
  }
  if (Kind == TermKind::Forall || Kind == TermKind::Exists) {
    auto It = std::lower_bound(FreeIds.begin(), FreeIds.end(), Variable.Id);
    if (It != FreeIds.end() && *It == Variable.Id) {
      // Copy-on-write: the unary case above aliased the child's vector.
      std::vector<unsigned> Own(FreeIds);
      Own.erase(Own.begin() + (It - FreeIds.begin()));
      FreeIds = std::move(Own);
    }
  }
}

namespace {

/// The process-wide interner: a bucket map from structural hash to the nodes
/// carrying that hash. Candidate matching is *shallow* — payload fields plus
/// pointer-equality of operands — which suffices because children are
/// themselves interned. After a flush, children of newly built terms may no
/// longer be pointer-unique with older live terms, so some sharing is lost;
/// Term::equals keeps a deep fallback for exactly that case.
///
/// The table is *sharded* by structural hash: concurrent compile sessions
/// build terms constantly, and a single mutex here serializes the whole
/// scheduling pipeline. Each shard has its own lock, bucket map, live-node
/// count, and counters; flush-on-cap is per shard, so a flush in one shard
/// does not disturb sharing in the others.
struct InternerShard {
  std::mutex M;
  std::unordered_map<size_t, std::vector<TermRef>> Buckets;
  size_t LiveNodes = 0;
  TermInternerStats Stats;
};

struct TermInterner {
  static constexpr size_t NumShards = 16; // power of two; see shardFor
  InternerShard Shards[NumShards];

  // Flush-on-cap: past this many retained nodes *per shard* the shard is
  // cleared (counted in Stats.Flushes). Live terms keep their own refs.
  static constexpr size_t MaxLiveNodesPerShard = (1u << 18) / NumShards;

  InternerShard &shardFor(size_t Hash) {
    // The low bits pick the unordered_map bucket inside the shard; use a
    // different slice for shard selection so the two don't correlate.
    return Shards[(Hash >> 7) & (NumShards - 1)];
  }

  static TermInterner &get() {
    static TermInterner I;
    return I;
  }
};

} // namespace

static bool shallowMatches(const Term &T, TermKind K, Sort S, int64_t V,
                           const TermVar &Var,
                           const std::vector<TermRef> &Ops) {
  if (T.kind() != K || T.sort() != S || T.numOperands() != Ops.size())
    return false;
  bool HasVar =
      K == TermKind::Var || K == TermKind::Forall || K == TermKind::Exists;
  switch (K) {
  case TermKind::IntConst:
  case TermKind::BoolConst:
  case TermKind::Mul:
  case TermKind::Div:
  case TermKind::Mod:
    if (T.kind() == TermKind::IntConst ? T.intValue() != V
        : T.kind() == TermKind::BoolConst
            ? T.boolValue() != (V != 0)
            : T.scalar() != V)
      return false;
    break;
  default:
    break;
  }
  if (HasVar && T.var().Id != Var.Id)
    return false;
  for (size_t I = 0; I < Ops.size(); ++I)
    if (T.operand(I).get() != Ops[I].get())
      return false;
  return true;
}

static TermRef makeNode(TermKind K, Sort S, int64_t V, TermVar Var,
                        std::vector<TermRef> Ops) {
  bool HasVar =
      K == TermKind::Var || K == TermKind::Forall || K == TermKind::Exists;
  size_t H = structuralHash(K, S, V, HasVar ? Var.Id : 0, Ops);
  InternerShard &Sh = TermInterner::get().shardFor(H);
  std::lock_guard<std::mutex> Lock(Sh.M);
  auto &Bucket = Sh.Buckets[H];
  for (auto &Cand : Bucket)
    if (shallowMatches(*Cand, K, S, V, Var, Ops)) {
      ++Sh.Stats.Hits;
      return Cand;
    }
  ++Sh.Stats.Misses;
  if (Sh.LiveNodes >= TermInterner::MaxLiveNodesPerShard) {
    Sh.Buckets.clear();
    Sh.LiveNodes = 0;
    ++Sh.Stats.Flushes;
    // NB: `Bucket` is dangling after clear(); re-insert below via the map.
    TermRef Node =
        std::make_shared<Term>(K, S, V, std::move(Var), std::move(Ops));
    Sh.Buckets[H].push_back(Node);
    ++Sh.LiveNodes;
    return Node;
  }
  TermRef Node =
      std::make_shared<Term>(K, S, V, std::move(Var), std::move(Ops));
  Bucket.push_back(Node);
  ++Sh.LiveNodes;
  return Node;
}

TermInternerStats exo::smt::termInternerStats() {
  TermInterner &I = TermInterner::get();
  TermInternerStats Sum;
  for (InternerShard &Sh : I.Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    Sum.Hits += Sh.Stats.Hits;
    Sum.Misses += Sh.Stats.Misses;
    Sum.Flushes += Sh.Stats.Flushes;
    Sum.Live += Sh.LiveNodes;
  }
  return Sum;
}

void exo::smt::clearTermInterner() {
  TermInterner &I = TermInterner::get();
  for (InternerShard &Sh : I.Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    Sh.Buckets.clear();
    Sh.LiveNodes = 0;
  }
}

static const TermVar NoVar{0, "", Sort::Int};

TermRef exo::smt::intConst(int64_t V) {
  return makeNode(TermKind::IntConst, Sort::Int, V, NoVar, {});
}

TermRef exo::smt::boolConst(bool V) {
  return makeNode(TermKind::BoolConst, Sort::Bool, V ? 1 : 0, NoVar, {});
}

TermRef exo::smt::mkTrue() { return boolConst(true); }
TermRef exo::smt::mkFalse() { return boolConst(false); }

TermRef exo::smt::mkVar(const TermVar &V) {
  return makeNode(TermKind::Var, V.VarSort, 0, V, {});
}

static bool isBoolConst(const TermRef &T, bool V) {
  return T->kind() == TermKind::BoolConst && T->boolValue() == V;
}

TermRef exo::smt::add(std::vector<TermRef> Ops) {
  std::vector<TermRef> Flat;
  int64_t ConstSum = 0;
  for (auto &Op : Ops) {
    assert(Op->sort() == Sort::Int && "add of non-int");
    if (Op->kind() == TermKind::IntConst) {
      ConstSum += Op->intValue();
    } else if (Op->kind() == TermKind::Add) {
      for (auto &Inner : Op->operands()) {
        if (Inner->kind() == TermKind::IntConst)
          ConstSum += Inner->intValue();
        else
          Flat.push_back(Inner);
      }
    } else {
      Flat.push_back(Op);
    }
  }
  if (ConstSum != 0 || Flat.empty())
    Flat.push_back(intConst(ConstSum));
  if (Flat.size() == 1)
    return Flat[0];
  return makeNode(TermKind::Add, Sort::Int, 0, NoVar, std::move(Flat));
}

TermRef exo::smt::add(TermRef A, TermRef B) {
  return add(std::vector<TermRef>{std::move(A), std::move(B)});
}

TermRef exo::smt::neg(TermRef A) { return mul(-1, std::move(A)); }

TermRef exo::smt::sub(TermRef A, TermRef B) {
  return add(std::move(A), neg(std::move(B)));
}

TermRef exo::smt::mul(int64_t Scalar, TermRef A) {
  assert(A->sort() == Sort::Int && "mul of non-int");
  if (Scalar == 0)
    return intConst(0);
  if (Scalar == 1)
    return A;
  if (A->kind() == TermKind::IntConst)
    return intConst(Scalar * A->intValue());
  if (A->kind() == TermKind::Mul)
    return mul(Scalar * A->scalar(), A->operand(0));
  if (A->kind() == TermKind::Add) {
    std::vector<TermRef> Ops;
    Ops.reserve(A->numOperands());
    for (auto &Op : A->operands())
      Ops.push_back(mul(Scalar, Op));
    return add(std::move(Ops));
  }
  return makeNode(TermKind::Mul, Sort::Int, Scalar, NoVar, {std::move(A)});
}

TermRef exo::smt::div(TermRef A, int64_t Divisor) {
  assert(Divisor > 0 && "quasi-affine division needs a positive literal");
  if (Divisor == 1)
    return A;
  if (A->kind() == TermKind::IntConst)
    return intConst(floorDiv(A->intValue(), Divisor));
  return makeNode(TermKind::Div, Sort::Int, Divisor, NoVar, {std::move(A)});
}

TermRef exo::smt::mod(TermRef A, int64_t Modulus) {
  assert(Modulus > 0 && "quasi-affine modulo needs a positive literal");
  if (Modulus == 1)
    return intConst(0);
  if (A->kind() == TermKind::IntConst)
    return intConst(floorMod(A->intValue(), Modulus));
  return makeNode(TermKind::Mod, Sort::Int, Modulus, NoVar, {std::move(A)});
}

TermRef exo::smt::eq(TermRef A, TermRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "eq of non-int");
  if (A->kind() == TermKind::IntConst && B->kind() == TermKind::IntConst)
    return boolConst(A->intValue() == B->intValue());
  if (A->equals(*B))
    return mkTrue();
  return makeNode(TermKind::Eq, Sort::Bool, 0, NoVar,
                  {std::move(A), std::move(B)});
}

TermRef exo::smt::ne(TermRef A, TermRef B) {
  return mkNot(eq(std::move(A), std::move(B)));
}

TermRef exo::smt::le(TermRef A, TermRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "le of non-int");
  if (A->kind() == TermKind::IntConst && B->kind() == TermKind::IntConst)
    return boolConst(A->intValue() <= B->intValue());
  if (A->equals(*B))
    return mkTrue();
  return makeNode(TermKind::Le, Sort::Bool, 0, NoVar,
                  {std::move(A), std::move(B)});
}

TermRef exo::smt::lt(TermRef A, TermRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "lt of non-int");
  if (A->kind() == TermKind::IntConst && B->kind() == TermKind::IntConst)
    return boolConst(A->intValue() < B->intValue());
  if (A->equals(*B))
    return mkFalse();
  return makeNode(TermKind::Lt, Sort::Bool, 0, NoVar,
                  {std::move(A), std::move(B)});
}

TermRef exo::smt::ge(TermRef A, TermRef B) { return le(std::move(B), std::move(A)); }
TermRef exo::smt::gt(TermRef A, TermRef B) { return lt(std::move(B), std::move(A)); }

TermRef exo::smt::mkNot(TermRef A) {
  assert(A->sort() == Sort::Bool && "not of non-bool");
  if (A->kind() == TermKind::BoolConst)
    return boolConst(!A->boolValue());
  if (A->kind() == TermKind::Not)
    return A->operand(0);
  return makeNode(TermKind::Not, Sort::Bool, 0, NoVar, {std::move(A)});
}

TermRef exo::smt::mkAnd(std::vector<TermRef> Ops) {
  std::vector<TermRef> Flat;
  for (auto &Op : Ops) {
    assert(Op->sort() == Sort::Bool && "and of non-bool");
    if (isBoolConst(Op, false))
      return mkFalse();
    if (isBoolConst(Op, true))
      continue;
    if (Op->kind() == TermKind::And) {
      for (auto &Inner : Op->operands())
        Flat.push_back(Inner);
    } else {
      Flat.push_back(Op);
    }
  }
  if (Flat.empty())
    return mkTrue();
  if (Flat.size() == 1)
    return Flat[0];
  return makeNode(TermKind::And, Sort::Bool, 0, NoVar, std::move(Flat));
}

TermRef exo::smt::mkAnd(TermRef A, TermRef B) {
  return mkAnd(std::vector<TermRef>{std::move(A), std::move(B)});
}

TermRef exo::smt::mkOr(std::vector<TermRef> Ops) {
  std::vector<TermRef> Flat;
  for (auto &Op : Ops) {
    assert(Op->sort() == Sort::Bool && "or of non-bool");
    if (isBoolConst(Op, true))
      return mkTrue();
    if (isBoolConst(Op, false))
      continue;
    if (Op->kind() == TermKind::Or) {
      for (auto &Inner : Op->operands())
        Flat.push_back(Inner);
    } else {
      Flat.push_back(Op);
    }
  }
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  return makeNode(TermKind::Or, Sort::Bool, 0, NoVar, std::move(Flat));
}

TermRef exo::smt::mkOr(TermRef A, TermRef B) {
  return mkOr(std::vector<TermRef>{std::move(A), std::move(B)});
}

TermRef exo::smt::implies(TermRef A, TermRef B) {
  if (isBoolConst(A, true))
    return B;
  if (isBoolConst(A, false) || isBoolConst(B, true))
    return mkTrue();
  if (isBoolConst(B, false))
    return mkNot(std::move(A));
  return makeNode(TermKind::Implies, Sort::Bool, 0, NoVar,
                  {std::move(A), std::move(B)});
}

TermRef exo::smt::iff(TermRef A, TermRef B) {
  return mkAnd(implies(A, B), implies(B, A));
}

TermRef exo::smt::ite(TermRef C, TermRef T, TermRef E) {
  assert(C->sort() == Sort::Bool && "ite condition not bool");
  assert(T->sort() == E->sort() && "ite branch sorts differ");
  if (isBoolConst(C, true))
    return T;
  if (isBoolConst(C, false))
    return E;
  if (T->equals(*E))
    return T;
  Sort S = T->sort();
  return makeNode(TermKind::Ite, S, 0, NoVar,
                  {std::move(C), std::move(T), std::move(E)});
}

TermRef exo::smt::forall(const TermVar &V, TermRef Body) {
  assert(V.VarSort == Sort::Int && "quantifiers range over ints");
  if (Body->kind() == TermKind::BoolConst)
    return Body;
  return makeNode(TermKind::Forall, Sort::Bool, 0, V, {std::move(Body)});
}

TermRef exo::smt::forall(const std::vector<TermVar> &Vs, TermRef Body) {
  for (auto It = Vs.rbegin(); It != Vs.rend(); ++It)
    Body = forall(*It, std::move(Body));
  return Body;
}

TermRef exo::smt::exists(const TermVar &V, TermRef Body) {
  assert(V.VarSort == Sort::Int && "quantifiers range over ints");
  if (Body->kind() == TermKind::BoolConst)
    return Body;
  return makeNode(TermKind::Exists, Sort::Bool, 0, V, {std::move(Body)});
}

TermRef exo::smt::exists(const std::vector<TermVar> &Vs, TermRef Body) {
  for (auto It = Vs.rbegin(); It != Vs.rend(); ++It)
    Body = exists(*It, std::move(Body));
  return Body;
}

bool Term::equals(const Term &O) const {
  if (this == &O)
    return true;
  if (Hash != O.Hash)
    return false;
  if (Kind != O.Kind || TheSort != O.TheSort || Value != O.Value ||
      Variable.Id != O.Variable.Id || Operands.size() != O.Operands.size())
    return false;
  for (size_t I = 0; I < Operands.size(); ++I)
    if (!Operands[I]->equals(*O.Operands[I]))
      return false;
  return true;
}

static void collectFreeVarsImpl(const TermRef &T,
                                std::unordered_set<unsigned> &Bound,
                                std::unordered_set<unsigned> &Seen,
                                std::vector<TermVar> &Out) {
  // Prune subtrees whose (cached) free-variable ids are all already
  // accounted for — the common case once terms are widely shared.
  {
    bool AllKnown = true;
    for (unsigned Id : T->freeVarIds())
      if (!Seen.count(Id) && !Bound.count(Id)) {
        AllKnown = false;
        break;
      }
    if (AllKnown)
      return;
  }
  switch (T->kind()) {
  case TermKind::Var:
    if (!Bound.count(T->var().Id) && Seen.insert(T->var().Id).second)
      Out.push_back(T->var());
    return;
  case TermKind::Forall:
  case TermKind::Exists: {
    bool Inserted = Bound.insert(T->var().Id).second;
    collectFreeVarsImpl(T->operand(0), Bound, Seen, Out);
    if (Inserted)
      Bound.erase(T->var().Id);
    return;
  }
  default:
    for (auto &Op : T->operands())
      collectFreeVarsImpl(Op, Bound, Seen, Out);
  }
}

void exo::smt::collectFreeVars(const TermRef &T, std::vector<TermVar> &Out) {
  std::unordered_set<unsigned> Bound, Seen;
  for (auto &V : Out)
    Seen.insert(V.Id);
  collectFreeVarsImpl(T, Bound, Seen, Out);
}

TermRef exo::smt::substVar(const TermRef &T, const TermVar &V,
                           TermRef Replacement) {
  if (!T->hasFreeVar(V.Id))
    return T;
  switch (T->kind()) {
  case TermKind::IntConst:
  case TermKind::BoolConst:
    return T;
  case TermKind::Var:
    return T->var().Id == V.Id ? Replacement : T;
  case TermKind::Forall:
  case TermKind::Exists: {
    if (T->var().Id == V.Id)
      return T; // shadowed
    TermRef NewBody = substVar(T->operand(0), V, Replacement);
    if (NewBody == T->operand(0))
      return T;
    return T->kind() == TermKind::Forall ? forall(T->var(), NewBody)
                                         : exists(T->var(), NewBody);
  }
  default: {
    std::vector<TermRef> Ops;
    bool Changed = false;
    Ops.reserve(T->numOperands());
    for (auto &Op : T->operands()) {
      Ops.push_back(substVar(Op, V, Replacement));
      Changed |= Ops.back() != Op;
    }
    if (!Changed)
      return T;
    switch (T->kind()) {
    case TermKind::Add:
      return add(std::move(Ops));
    case TermKind::Mul:
      return mul(T->scalar(), Ops[0]);
    case TermKind::Div:
      return div(Ops[0], T->scalar());
    case TermKind::Mod:
      return mod(Ops[0], T->scalar());
    case TermKind::Eq:
      return eq(Ops[0], Ops[1]);
    case TermKind::Le:
      return le(Ops[0], Ops[1]);
    case TermKind::Lt:
      return lt(Ops[0], Ops[1]);
    case TermKind::Not:
      return mkNot(Ops[0]);
    case TermKind::And:
      return mkAnd(std::move(Ops));
    case TermKind::Or:
      return mkOr(std::move(Ops));
    case TermKind::Implies:
      return implies(Ops[0], Ops[1]);
    case TermKind::Ite:
      return ite(Ops[0], Ops[1], Ops[2]);
    default:
      fatalError("substVar: unexpected term kind");
    }
  }
  }
}

std::string Term::str() const {
  switch (Kind) {
  case TermKind::IntConst:
    return std::to_string(Value);
  case TermKind::BoolConst:
    return Value ? "true" : "false";
  case TermKind::Var:
    return Variable.Name + "#" + std::to_string(Variable.Id);
  default:
    break;
  }
  auto Head = [&]() -> std::string {
    switch (Kind) {
    case TermKind::Add:
      return "+";
    case TermKind::Mul:
      return "* " + std::to_string(Value);
    case TermKind::Div:
      return "div " + std::to_string(Value);
    case TermKind::Mod:
      return "mod " + std::to_string(Value);
    case TermKind::Eq:
      return "=";
    case TermKind::Le:
      return "<=";
    case TermKind::Lt:
      return "<";
    case TermKind::Not:
      return "not";
    case TermKind::And:
      return "and";
    case TermKind::Or:
      return "or";
    case TermKind::Implies:
      return "=>";
    case TermKind::Ite:
      return "ite";
    case TermKind::Forall:
      return "forall " + Variable.Name + "#" + std::to_string(Variable.Id);
    case TermKind::Exists:
      return "exists " + Variable.Name + "#" + std::to_string(Variable.Id);
    default:
      return "?";
    }
  }();
  std::string Out = "(" + Head;
  for (auto &Op : Operands) {
    Out += ' ';
    Out += Op->str();
  }
  Out += ')';
  return Out;
}
