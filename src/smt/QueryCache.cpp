//===- smt/QueryCache.cpp --------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/QueryCache.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

using namespace exo;
using namespace exo::smt;

//===----------------------------------------------------------------------===//
// Canonical serialization
//===----------------------------------------------------------------------===//

namespace {

/// First pass: number the free variables of the query by first occurrence
/// in a natural (unsorted) pre-order walk. The numbering is a pure
/// function of term structure — it never sees the raw VarId beyond
/// identity — so alpha-renamed re-posings of the same obligation get the
/// same numbers. Conflating two keys therefore only ever identifies terms
/// equal up to a bijective renaming of free variables, which preserves the
/// verdict.
struct FreeVarNumberer {
  std::unordered_map<unsigned, unsigned> Canon; ///< id -> canonical index
  std::unordered_map<unsigned, unsigned> Bound; ///< id -> active binders

  void walk(const TermRef &T) {
    switch (T->kind()) {
    case TermKind::IntConst:
    case TermKind::BoolConst:
      return;
    case TermKind::Var: {
      unsigned Id = T->var().Id;
      auto B = Bound.find(Id);
      if (B == Bound.end() || B->second == 0)
        Canon.emplace(Id, (unsigned)Canon.size());
      return;
    }
    case TermKind::Forall:
    case TermKind::Exists: {
      unsigned Id = T->var().Id;
      ++Bound[Id];
      walk(T->operand(0));
      --Bound[Id];
      return;
    }
    default:
      for (auto &Op : T->operands())
        walk(Op);
      return;
    }
  }
};

/// Serializer state. Bound variables map to the *level* (depth) of their
/// binder, so the rendering of a subterm depends only on the binders above
/// it — which is what lets us sort the children of commutative operators
/// independently. Shadowing is handled with a per-id level stack. Free
/// variables render as their canonical first-occurrence index (computed by
/// FreeVarNumberer before rendering), never as a raw VarId.
struct KeySerializer {
  // Keys past this size cost more to build and compare than the solve they
  // would save; abandon them.
  static constexpr size_t MaxKeyBytes = 4u << 20;

  std::unordered_map<unsigned, std::vector<unsigned>> Levels;
  const std::unordered_map<unsigned, unsigned> *FreeCanon = nullptr;
  unsigned Depth = 0;
  bool Overflow = false;

  std::string render(const TermRef &T) {
    std::string Out;
    switch (T->kind()) {
    case TermKind::IntConst:
      Out = "i" + std::to_string(T->intValue());
      break;
    case TermKind::BoolConst:
      Out = T->boolValue() ? "t" : "f";
      break;
    case TermKind::Var: {
      auto It = Levels.find(T->var().Id);
      if (It != Levels.end() && !It->second.empty()) {
        Out = "b" + std::to_string(It->second.back());
      } else {
        // Free var: render the canonical first-occurrence index, never the
        // raw VarId (ids are fresh per compile and would defeat
        // cross-compile sharing).
        Out = "v?"; // unreachable when FreeCanon covers the term
        if (FreeCanon) {
          auto C = FreeCanon->find(T->var().Id);
          if (C != FreeCanon->end())
            Out = "v" + std::to_string(C->second);
        }
      }
      break;
    }
    case TermKind::Mul:
    case TermKind::Div:
    case TermKind::Mod: {
      const char *Tag = T->kind() == TermKind::Mul   ? "*"
                        : T->kind() == TermKind::Div ? "/"
                                                     : "%";
      Out = "(" + std::string(Tag) + std::to_string(T->scalar()) + " " +
            render(T->operand(0)) + ")";
      break;
    }
    case TermKind::Add:
    case TermKind::And:
    case TermKind::Or:
    case TermKind::Eq: {
      // Commutative: sort the children's renderings.
      const char *Tag = T->kind() == TermKind::Add ? "+"
                        : T->kind() == TermKind::And
                            ? "&"
                            : T->kind() == TermKind::Or ? "|" : "=";
      std::vector<std::string> Parts;
      Parts.reserve(T->numOperands());
      for (auto &Op : T->operands())
        Parts.push_back(render(Op));
      std::sort(Parts.begin(), Parts.end());
      Out = "(" + std::string(Tag);
      for (auto &P : Parts) {
        Out += ' ';
        Out += P;
      }
      Out += ')';
      break;
    }
    case TermKind::Le:
    case TermKind::Lt:
    case TermKind::Not:
    case TermKind::Implies:
    case TermKind::Ite: {
      const char *Tag = T->kind() == TermKind::Le    ? "<="
                        : T->kind() == TermKind::Lt  ? "<"
                        : T->kind() == TermKind::Not ? "!"
                        : T->kind() == TermKind::Implies
                            ? ">"
                            : T->sort() == Sort::Int ? "?i" : "?b";
      Out = "(" + std::string(Tag);
      for (auto &Op : T->operands()) {
        Out += ' ';
        Out += render(Op);
      }
      Out += ')';
      break;
    }
    case TermKind::Forall:
    case TermKind::Exists: {
      unsigned Id = T->var().Id;
      Levels[Id].push_back(Depth);
      ++Depth;
      std::string Body = render(T->operand(0));
      --Depth;
      auto It = Levels.find(Id);
      It->second.pop_back();
      if (It->second.empty())
        Levels.erase(It);
      Out = std::string(T->kind() == TermKind::Forall ? "(A " : "(E ") + Body +
            ")";
      break;
    }
    }
    if (Out.size() > MaxKeyBytes)
      Overflow = true;
    return Overflow ? std::string() : Out;
  }
};

} // namespace

std::string exo::smt::canonicalQueryKey(const TermRef &Closed) {
  FreeVarNumberer N;
  N.walk(Closed);
  KeySerializer S;
  S.FreeCanon = &N.Canon;
  std::string Key = S.render(Closed);
  return S.Overflow ? std::string() : Key;
}

//===----------------------------------------------------------------------===//
// Process-wide memo table
//===----------------------------------------------------------------------===//

namespace {

/// The memo table is *striped*: entries distribute across independently
/// locked shards by key hash, so concurrent compile sessions looking up
/// disjoint obligations never contend. The table is read-mostly once warm
/// (hits outnumber insertions by orders of magnitude on schedule replays),
/// so per-stripe mutexes — not a global one — are what keep the parallel
/// batch driver off a single lock. Flush-on-cap becomes per stripe; a
/// flush only forgets verdicts, never changes one.
/// A stored verdict plus the cache job that inserted it (for same-job vs
/// cross-job hit attribution; see ScopedQueryJob).
struct CacheEntry {
  SolverResult R;
  uint64_t OwnerJob;
};

struct CacheStripe {
  std::mutex M;
  std::unordered_map<std::string, CacheEntry> Table;
  QueryCacheStats Stats;
  size_t KeyBytes = 0;
};

struct QueryCache {
  static constexpr size_t NumStripes = 16; // power of two
  CacheStripe Stripes[NumStripes];
  std::atomic<bool> Enabled{true};

  static constexpr size_t MaxEntriesPerStripe = (1u << 16) / NumStripes;
  static constexpr size_t MaxBytesPerStripe = (64u << 20) / NumStripes;

  CacheStripe &stripeFor(const std::string &Key) {
    size_t H = std::hash<std::string>()(Key);
    return Stripes[(H >> 8) & (NumStripes - 1)];
  }

  static QueryCache &get() {
    static QueryCache C;
    return C;
  }
};

/// Thread-local current cache-job id; 0 outside any job. Minted from a
/// process-wide counter so ids are never reused.
thread_local uint64_t CurrentJobId = 0;
std::atomic<uint64_t> NextJobId{1};

/// Thread-local mirror of this thread's own cache activity, so a compile
/// job (which runs entirely on one thread) can take exact deltas without
/// seeing its concurrent siblings' traffic.
thread_local QueryCacheStats TLStats;

} // namespace

exo::smt::ScopedQueryJob::ScopedQueryJob()
    : Id(NextJobId.fetch_add(1, std::memory_order_relaxed)),
      Prev(CurrentJobId) {
  CurrentJobId = Id;
}

exo::smt::ScopedQueryJob::~ScopedQueryJob() { CurrentJobId = Prev; }

uint64_t exo::smt::currentQueryJobId() { return CurrentJobId; }

bool exo::smt::queryCacheEnabled() {
  return QueryCache::get().Enabled.load(std::memory_order_relaxed);
}

void exo::smt::setQueryCacheEnabled(bool Enabled) {
  QueryCache::get().Enabled.store(Enabled, std::memory_order_relaxed);
}

bool exo::smt::queryCacheLookup(const std::string &Key, SolverResult &Out) {
  QueryCache &C = QueryCache::get();
  if (Key.empty()) {
    ++TLStats.Uncacheable;
    CacheStripe &S = C.Stripes[0]; // arbitrary home for the counter
    std::lock_guard<std::mutex> Lock(S.M);
    ++S.Stats.Uncacheable;
    return false;
  }
  CacheStripe &S = C.stripeFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Table.find(Key);
  if (It == S.Table.end()) {
    ++S.Stats.Misses;
    ++TLStats.Misses;
    return false;
  }
  ++S.Stats.Hits;
  ++TLStats.Hits;
  if (It->second.OwnerJob != CurrentJobId) {
    ++S.Stats.CrossJobHits;
    ++TLStats.CrossJobHits;
  }
  Out = It->second.R;
  return true;
}

void exo::smt::queryCacheInsert(const std::string &Key, SolverResult R) {
  assert(R != SolverResult::Unknown && "Unknown must never be cached");
  if (Key.empty() || R == SolverResult::Unknown)
    return;
  CacheStripe &S = QueryCache::get().stripeFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Table.size() >= QueryCache::MaxEntriesPerStripe ||
      S.KeyBytes + Key.size() > QueryCache::MaxBytesPerStripe) {
    S.Table.clear();
    S.KeyBytes = 0;
    ++S.Stats.Evictions;
  }
  auto [It, Inserted] = S.Table.emplace(Key, CacheEntry{R, CurrentJobId});
  if (Inserted) {
    S.KeyBytes += Key.size();
    ++S.Stats.Insertions;
    ++TLStats.Insertions;
  }
}

QueryCacheStats exo::smt::queryCacheThreadStats() { return TLStats; }

QueryCacheStats exo::smt::solverQueryCacheStats() {
  QueryCache &C = QueryCache::get();
  QueryCacheStats Sum;
  for (CacheStripe &S : C.Stripes) {
    std::lock_guard<std::mutex> Lock(S.M);
    Sum.Hits += S.Stats.Hits;
    Sum.Misses += S.Stats.Misses;
    Sum.Insertions += S.Stats.Insertions;
    Sum.Evictions += S.Stats.Evictions;
    Sum.Uncacheable += S.Stats.Uncacheable;
    Sum.CrossJobHits += S.Stats.CrossJobHits;
    Sum.Size += S.Table.size();
  }
  return Sum;
}

void exo::smt::clearSolverQueryCache() {
  QueryCache &C = QueryCache::get();
  for (CacheStripe &S : C.Stripes) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Table.clear();
    S.KeyBytes = 0;
  }
}
