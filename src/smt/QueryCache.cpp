//===- smt/QueryCache.cpp --------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/QueryCache.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

using namespace exo;
using namespace exo::smt;

//===----------------------------------------------------------------------===//
// Canonical serialization
//===----------------------------------------------------------------------===//

namespace {

/// Serializer state. Bound variables map to the *level* (depth) of their
/// binder, so the rendering of a subterm depends only on the binders above
/// it — which is what lets us sort the children of commutative operators
/// independently. Shadowing is handled with a per-id level stack.
struct KeySerializer {
  // Keys past this size cost more to build and compare than the solve they
  // would save; abandon them.
  static constexpr size_t MaxKeyBytes = 4u << 20;

  std::unordered_map<unsigned, std::vector<unsigned>> Levels;
  unsigned Depth = 0;
  bool Overflow = false;

  std::string render(const TermRef &T) {
    std::string Out;
    switch (T->kind()) {
    case TermKind::IntConst:
      Out = "i" + std::to_string(T->intValue());
      break;
    case TermKind::BoolConst:
      Out = T->boolValue() ? "t" : "f";
      break;
    case TermKind::Var: {
      auto It = Levels.find(T->var().Id);
      if (It != Levels.end() && !It->second.empty())
        Out = "b" + std::to_string(It->second.back());
      else
        Out = "v" + std::to_string(T->var().Id); // free var (open query)
      break;
    }
    case TermKind::Mul:
    case TermKind::Div:
    case TermKind::Mod: {
      const char *Tag = T->kind() == TermKind::Mul   ? "*"
                        : T->kind() == TermKind::Div ? "/"
                                                     : "%";
      Out = "(" + std::string(Tag) + std::to_string(T->scalar()) + " " +
            render(T->operand(0)) + ")";
      break;
    }
    case TermKind::Add:
    case TermKind::And:
    case TermKind::Or:
    case TermKind::Eq: {
      // Commutative: sort the children's renderings.
      const char *Tag = T->kind() == TermKind::Add ? "+"
                        : T->kind() == TermKind::And
                            ? "&"
                            : T->kind() == TermKind::Or ? "|" : "=";
      std::vector<std::string> Parts;
      Parts.reserve(T->numOperands());
      for (auto &Op : T->operands())
        Parts.push_back(render(Op));
      std::sort(Parts.begin(), Parts.end());
      Out = "(" + std::string(Tag);
      for (auto &P : Parts) {
        Out += ' ';
        Out += P;
      }
      Out += ')';
      break;
    }
    case TermKind::Le:
    case TermKind::Lt:
    case TermKind::Not:
    case TermKind::Implies:
    case TermKind::Ite: {
      const char *Tag = T->kind() == TermKind::Le    ? "<="
                        : T->kind() == TermKind::Lt  ? "<"
                        : T->kind() == TermKind::Not ? "!"
                        : T->kind() == TermKind::Implies
                            ? ">"
                            : T->sort() == Sort::Int ? "?i" : "?b";
      Out = "(" + std::string(Tag);
      for (auto &Op : T->operands()) {
        Out += ' ';
        Out += render(Op);
      }
      Out += ')';
      break;
    }
    case TermKind::Forall:
    case TermKind::Exists: {
      unsigned Id = T->var().Id;
      Levels[Id].push_back(Depth);
      ++Depth;
      std::string Body = render(T->operand(0));
      --Depth;
      auto It = Levels.find(Id);
      It->second.pop_back();
      if (It->second.empty())
        Levels.erase(It);
      Out = std::string(T->kind() == TermKind::Forall ? "(A " : "(E ") + Body +
            ")";
      break;
    }
    }
    if (Out.size() > MaxKeyBytes)
      Overflow = true;
    return Overflow ? std::string() : Out;
  }
};

} // namespace

std::string exo::smt::canonicalQueryKey(const TermRef &Closed) {
  KeySerializer S;
  std::string Key = S.render(Closed);
  return S.Overflow ? std::string() : Key;
}

//===----------------------------------------------------------------------===//
// Process-wide memo table
//===----------------------------------------------------------------------===//

namespace {

struct QueryCache {
  std::mutex M;
  std::unordered_map<std::string, SolverResult> Table;
  QueryCacheStats Stats;
  bool Enabled = true;

  // Flush-on-cap keeps the policy trivial and the worst case bounded; a
  // flush only forgets verdicts, never changes one.
  static constexpr size_t MaxEntries = 1u << 16;
  static constexpr size_t MaxBytes = 64u << 20;
  size_t KeyBytes = 0;

  static QueryCache &get() {
    static QueryCache C;
    return C;
  }
};

} // namespace

bool exo::smt::queryCacheEnabled() {
  QueryCache &C = QueryCache::get();
  std::lock_guard<std::mutex> Lock(C.M);
  return C.Enabled;
}

void exo::smt::setQueryCacheEnabled(bool Enabled) {
  QueryCache &C = QueryCache::get();
  std::lock_guard<std::mutex> Lock(C.M);
  C.Enabled = Enabled;
}

bool exo::smt::queryCacheLookup(const std::string &Key, SolverResult &Out) {
  if (Key.empty()) {
    QueryCache &C = QueryCache::get();
    std::lock_guard<std::mutex> Lock(C.M);
    ++C.Stats.Uncacheable;
    return false;
  }
  QueryCache &C = QueryCache::get();
  std::lock_guard<std::mutex> Lock(C.M);
  auto It = C.Table.find(Key);
  if (It == C.Table.end()) {
    ++C.Stats.Misses;
    return false;
  }
  ++C.Stats.Hits;
  Out = It->second;
  return true;
}

void exo::smt::queryCacheInsert(const std::string &Key, SolverResult R) {
  assert(R != SolverResult::Unknown && "Unknown must never be cached");
  if (Key.empty() || R == SolverResult::Unknown)
    return;
  QueryCache &C = QueryCache::get();
  std::lock_guard<std::mutex> Lock(C.M);
  if (C.Table.size() >= QueryCache::MaxEntries ||
      C.KeyBytes + Key.size() > QueryCache::MaxBytes) {
    C.Table.clear();
    C.KeyBytes = 0;
    ++C.Stats.Evictions;
  }
  auto [It, Inserted] = C.Table.emplace(Key, R);
  if (Inserted) {
    C.KeyBytes += Key.size();
    ++C.Stats.Insertions;
  }
}

QueryCacheStats exo::smt::solverQueryCacheStats() {
  QueryCache &C = QueryCache::get();
  std::lock_guard<std::mutex> Lock(C.M);
  QueryCacheStats S = C.Stats;
  S.Size = C.Table.size();
  return S;
}

void exo::smt::clearSolverQueryCache() {
  QueryCache &C = QueryCache::get();
  std::lock_guard<std::mutex> Lock(C.M);
  C.Table.clear();
  C.KeyBytes = 0;
}
