//===- smt/Cooper.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Cooper.h"

#include "smt/Simplify.h"
#include "support/MathExtras.h"

#include <set>

using namespace exo;
using namespace exo::smt;

namespace {

/// Caps the period D (lcm of divisibility moduli) and the bound-set size to
/// keep pathological inputs from exploding; exceeding them burns the budget
/// so the caller reports Unknown.
constexpr int64_t MaxPeriod = 4096;
constexpr size_t MaxBoundSet = 512;

} // namespace

/// Splits EQ literals mentioning \p VarId into a pair of LE literals so
/// that every x-literal is LE / DVD / NDVD (the shapes Cooper handles).
static QFormRef splitEqualities(const QFormRef &F, unsigned VarId,
                                Budget &B) {
  switch (F->kind()) {
  case QForm::Kind::True:
  case QForm::Kind::False:
    return F;
  case QForm::Kind::Lit: {
    const QLit &L = F->lit();
    if (L.LitKind != QLit::Kind::EQ || !L.Form.mentions(VarId))
      return F;
    return qAnd({qLe(L.Form, B), qLe(L.Form.negated(), B)}, B);
  }
  case QForm::Kind::And:
  case QForm::Kind::Or: {
    std::vector<QFormRef> Out;
    Out.reserve(F->children().size());
    for (auto &C : F->children())
      Out.push_back(splitEqualities(C, VarId, B));
    return F->kind() == QForm::Kind::And ? qAnd(std::move(Out), B)
                                         : qOr(std::move(Out), B);
  }
  }
  return F;
}

/// Collects the |coefficient| lcm of \p VarId over all literals, and the
/// divisibility-moduli data needed later. Returns 0 on overflow of the cap.
static int64_t coefficientLcm(const QFormRef &F, unsigned VarId) {
  switch (F->kind()) {
  case QForm::Kind::Lit: {
    int64_t C = F->lit().Form.coeff(VarId);
    if (C == 0)
      return 1;
    C = C < 0 ? -C : C;
    return C;
  }
  case QForm::Kind::And:
  case QForm::Kind::Or: {
    int64_t L = 1;
    for (auto &C : F->children()) {
      L = lcm64(L, coefficientLcm(C, VarId));
      if (L > MaxPeriod)
        return 0;
    }
    return L;
  }
  default:
    return 1;
  }
}

/// Rescales every literal mentioning \p VarId so its coefficient is
/// exactly +1 or -1 for the *new* variable \p NewId (representing
/// Delta * old variable). LE literals multiply through by the positive
/// factor; DVD/NDVD multiply both the form and the modulus.
static QFormRef normalizeCoefficient(const QFormRef &F, unsigned VarId,
                                     unsigned NewId, int64_t Delta,
                                     Budget &B) {
  switch (F->kind()) {
  case QForm::Kind::True:
  case QForm::Kind::False:
    return F;
  case QForm::Kind::Lit: {
    const QLit &L = F->lit();
    int64_t A = L.Form.coeff(VarId);
    if (A == 0)
      return F;
    int64_t Abs = A < 0 ? -A : A;
    int64_t M = Delta / Abs;
    LinearForm G = L.Form.scaled(M);
    G.setCoeff(VarId, 0);
    G.setCoeff(NewId, A < 0 ? -1 : 1);
    switch (L.LitKind) {
    case QLit::Kind::LE:
      return qLe(std::move(G), B);
    case QLit::Kind::DVD:
      return qDvd(L.Divisor * M, std::move(G), B);
    case QLit::Kind::NDVD:
      return qNdvd(L.Divisor * M, std::move(G), B);
    case QLit::Kind::EQ:
      fatalError("normalizeCoefficient: EQ literal not split");
    }
    return F;
  }
  case QForm::Kind::And:
  case QForm::Kind::Or: {
    std::vector<QFormRef> Out;
    Out.reserve(F->children().size());
    for (auto &C : F->children())
      Out.push_back(normalizeCoefficient(C, VarId, NewId, Delta, B));
    return F->kind() == QForm::Kind::And ? qAnd(std::move(Out), B)
                                         : qOr(std::move(Out), B);
  }
  }
  return F;
}

/// Negates the coefficient of \p VarId in every literal (the variable flip
/// y := -y used to reuse the lower-bound elimination for the upper-bound
/// case).
static QFormRef flipVariable(const QFormRef &F, unsigned VarId, Budget &B) {
  switch (F->kind()) {
  case QForm::Kind::True:
  case QForm::Kind::False:
    return F;
  case QForm::Kind::Lit: {
    const QLit &L = F->lit();
    int64_t A = L.Form.coeff(VarId);
    if (A == 0)
      return F;
    LinearForm G = L.Form;
    G.setCoeff(VarId, -A);
    return qLit(L.LitKind, std::move(G), L.Divisor, B);
  }
  case QForm::Kind::And:
  case QForm::Kind::Or: {
    std::vector<QFormRef> Out;
    Out.reserve(F->children().size());
    for (auto &C : F->children())
      Out.push_back(flipVariable(C, VarId, B));
    return F->kind() == QForm::Kind::And ? qAnd(std::move(Out), B)
                                         : qOr(std::move(Out), B);
  }
  }
  return F;
}

namespace {

/// Scans a normalized formula for the data of Cooper's theorem: the lower-
/// and upper-bound terms and the divisibility period.
struct BoundInfo {
  std::set<LinearForm> Lower; ///< t such that  t <= y   (literal -y + t <= 0)
  std::set<LinearForm> Upper; ///< t such that  y <= t   (literal  y - t <= 0)
  int64_t Period = 1;
  bool Overflow = false;
};

} // namespace

static void collectBounds(const QFormRef &F, unsigned VarId, BoundInfo &Info) {
  switch (F->kind()) {
  case QForm::Kind::Lit: {
    const QLit &L = F->lit();
    int64_t A = L.Form.coeff(VarId);
    if (A == 0)
      return;
    assert((A == 1 || A == -1) && "collectBounds on unnormalized formula");
    switch (L.LitKind) {
    case QLit::Kind::LE: {
      LinearForm T = L.Form;
      T.setCoeff(VarId, 0);
      if (A == 1) {
        // y + t <= 0  =>  y <= -t, i.e. strict upper bound -t + 1.
        LinearForm U = T.negated();
        U.setConstant(U.constant() + 1);
        Info.Upper.insert(std::move(U));
      } else {
        // -y + t <= 0  =>  t <= y, i.e. strict lower bound t - 1 (Cooper's
        // B-set holds *strict* bounds: the theorem substitutes b + j for
        // j in 1..D).
        T.setConstant(T.constant() - 1);
        Info.Lower.insert(std::move(T));
      }
      if (Info.Lower.size() > MaxBoundSet || Info.Upper.size() > MaxBoundSet)
        Info.Overflow = true;
      return;
    }
    case QLit::Kind::DVD:
    case QLit::Kind::NDVD:
      Info.Period = lcm64(Info.Period, L.Divisor);
      if (Info.Period > MaxPeriod)
        Info.Overflow = true;
      return;
    case QLit::Kind::EQ:
      fatalError("collectBounds: EQ literal not split");
    }
    return;
  }
  case QForm::Kind::And:
  case QForm::Kind::Or:
    for (auto &C : F->children())
      collectBounds(C, VarId, Info);
    return;
  default:
    return;
  }
}

/// Builds the "minus infinity" projection of \p F: LE literals with a
/// positive \p VarId coefficient (upper bounds) become True as y -> -inf;
/// negative ones (lower bounds) become False. Divisibility literals stay.
static QFormRef minusInfinity(const QFormRef &F, unsigned VarId, Budget &B) {
  switch (F->kind()) {
  case QForm::Kind::True:
  case QForm::Kind::False:
    return F;
  case QForm::Kind::Lit: {
    const QLit &L = F->lit();
    int64_t A = L.Form.coeff(VarId);
    if (A == 0 || L.LitKind == QLit::Kind::DVD ||
        L.LitKind == QLit::Kind::NDVD)
      return F;
    assert(L.LitKind == QLit::Kind::LE && "unnormalized literal");
    return A > 0 ? qTrue() : qFalse();
  }
  case QForm::Kind::And:
  case QForm::Kind::Or: {
    std::vector<QFormRef> Out;
    Out.reserve(F->children().size());
    for (auto &C : F->children())
      Out.push_back(minusInfinity(C, VarId, B));
    return F->kind() == QForm::Kind::And ? qAnd(std::move(Out), B)
                                         : qOr(std::move(Out), B);
  }
  }
  return F;
}

QFormRef exo::smt::eliminateExists(unsigned VarId, const QFormRef &F,
                                   Budget &B) {
  if (!F->mentions(VarId) || F->isTrue() || F->isFalse())
    return F;

  QFormRef Phi = splitEqualities(F, VarId, B);

  // Normalize all coefficients of VarId to +-1 via y = Delta * x.
  int64_t Delta = coefficientLcm(Phi, VarId);
  if (Delta == 0 || B.exceeded()) {
    if (Delta == 0)
      B.markStructural(); // coefficient LCM overflow — not tractable LIA
    else
      B.markExhausted(); // literal budget already gone
    return qFalse();
  }
  unsigned Y = VarId;
  if (Delta != 1) {
    TermVar Fresh = freshVar("y", Sort::Int);
    Y = Fresh.Id;
    Phi = normalizeCoefficient(Phi, VarId, Y, Delta, B);
    Phi = qAnd({Phi, qDvd(Delta, LinearForm::variable(Y), B)}, B);
  }

  // Prefer the smaller bound set; flip the variable to reuse the
  // lower-bound form when the uppers are fewer.
  BoundInfo Info;
  collectBounds(Phi, Y, Info);
  if (Info.Overflow) {
    B.markStructural();
    return qFalse();
  }
  bool Flipped = Info.Upper.size() < Info.Lower.size();
  if (Flipped) {
    Phi = flipVariable(Phi, Y, B);
    BoundInfo FlippedInfo;
    collectBounds(Phi, Y, FlippedInfo);
    Info = std::move(FlippedInfo);
    if (Info.Overflow) {
      B.markStructural();
      return qFalse();
    }
  }

  // Cooper:  exists y. Phi  ==
  //   OR_{j=1..D} Phi_{-inf}[y:=j]  \/  OR_{b in B, j=1..D} Phi[y:=b+j].
  int64_t D = Info.Period;
  QFormRef MinusInf = minusInfinity(Phi, Y, B);
  std::vector<QFormRef> Cases;
  for (int64_t J = 1; J <= D && !B.exceeded(); ++J)
    Cases.push_back(qSubst(MinusInf, Y, LinearForm(J), B));
  for (const LinearForm &Bound : Info.Lower) {
    for (int64_t J = 1; J <= D && !B.exceeded(); ++J) {
      LinearForm Repl = Bound;
      Repl.setConstant(Repl.constant() + J);
      Cases.push_back(qSubst(Phi, Y, Repl, B));
    }
  }
  return qOr(std::move(Cases), B);
}

Decision exo::smt::decideClosed(const PrenexResult &P, Budget &B) {
  QFormRef Body = P.Body;
  bool CheapFirst = simplifyConfig().CheapVarOrder;
  // Innermost-first elimination over the prefix. With the cheap-var
  // ordering stage enabled, adjacent same-quantifier entries commute
  // (exists x. exists y. F == exists y. exists x. F), so within each
  // innermost same-quantifier block we may pick the variable with the
  // smallest coefficient LCM — the one whose elimination multiplies the
  // formula the least — and we stop as soon as the matrix is ground
  // (the remaining quantifiers are then vacuous).
  std::vector<QuantEntry> Prefix(P.Prefix.begin(), P.Prefix.end());
  while (!Prefix.empty()) {
    if (B.exceeded())
      return Decision::Unknown;
    if (CheapFirst && (Body->isTrue() || Body->isFalse())) {
      B.noteEarlyExit();
      break;
    }
    size_t End = Prefix.size();
    size_t Pick = End - 1;
    if (CheapFirst && End >= 2 &&
        Prefix[End - 2].Quant == Prefix[End - 1].Quant) {
      size_t Begin = End - 1;
      while (Begin > 0 && Prefix[Begin - 1].Quant == Prefix[End - 1].Quant)
        --Begin;
      uint64_t Best = UINT64_MAX;
      for (size_t I = End; I-- > Begin;) {
        int64_t Lcm = coefficientLcm(Body, Prefix[I].VarId);
        // An LCM of 0 signals overflow past MaxPeriod: treat as the most
        // expensive choice so it is eliminated last.
        uint64_t Cost = Lcm == 0 ? UINT64_MAX : (uint64_t)Lcm;
        if (Cost < Best) {
          Best = Cost;
          Pick = I;
        }
      }
      if (Pick != End - 1)
        B.noteReorder();
    }
    QuantEntry E = Prefix[Pick];
    Prefix.erase(Prefix.begin() + Pick);
    if (E.Quant == QuantEntry::Q::Exists) {
      Body = eliminateExists(E.VarId, Body, B);
    } else {
      Body = qNot(eliminateExists(E.VarId, qNot(Body, B), B), B);
    }
  }
  if (B.exceeded())
    return Decision::Unknown;
  if (Body->isTrue())
    return Decision::True;
  if (Body->isFalse())
    return Decision::False;
  // Non-ground residue: the sentence was not closed.
  return Decision::Unknown;
}
