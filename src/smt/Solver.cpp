//===- smt/Solver.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/Cooper.h"
#include "smt/Prenex.h"
#include "smt/QueryCache.h"
#include "smt/Simplify.h"

#include "support/Deadline.h"
#include "support/FaultInjector.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace exo;
using namespace exo::smt;

namespace {
std::atomic<uint64_t> &defaultBudgetStorage() {
  static std::atomic<uint64_t> Budget{2'000'000};
  return Budget;
}

/// Thread-scoped default overrides (see ScopedSolverDefaults).
struct ThreadDefaults {
  bool Active = false;
  uint64_t Budget = 0;
  bool UseCache = true;
};
thread_local ThreadDefaults TLDefaults;

/// Process-wide aggregate as lock-free atomics: every solver on every
/// session thread bumps these on the query hot path, so a mutex here would
/// both serialize the batch driver and (worse) undercount if skipped.
/// Snapshot reads are per-counter relaxed loads — counters are mutually
/// consistent only at quiescence, which is when benchmarks read them.
struct GlobalStats {
  std::atomic<uint64_t> NumQueries{0};
  std::atomic<uint64_t> NumUnknown{0};
  std::atomic<uint64_t> NumUnknownBudget{0};
  std::atomic<uint64_t> NumUnknownStructural{0};
  std::atomic<uint64_t> NumUnknownTimeout{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> CacheMisses{0};
  std::atomic<uint64_t> NumLiterals{0};
  std::atomic<uint64_t> SimplifyConstFoldHits{0};
  std::atomic<uint64_t> SimplifyConstFoldMisses{0};
  std::atomic<uint64_t> SimplifyEqSubstHits{0};
  std::atomic<uint64_t> SimplifyEqSubstMisses{0};
  std::atomic<uint64_t> SimplifyIntervalHits{0};
  std::atomic<uint64_t> SimplifyIntervalMisses{0};
  std::atomic<uint64_t> SimplifyDecided{0};
  std::atomic<uint64_t> CooperReorders{0};
  std::atomic<uint64_t> CooperEarlyExits{0};
  std::atomic<uint64_t> FastPathHits{0};
  std::atomic<uint64_t> FastPathMisses{0};

  static GlobalStats &get() {
    static GlobalStats G;
    return G;
  }
};

/// Per-thread mirror of the counters (see solverThreadStats()).
thread_local Solver::Stats TLStats;

/// The last budget-Unknown query observed on this thread (see
/// lastBudgetUnknownQuery()).
thread_local TermRef TLLastBudgetUnknown;
} // namespace

namespace {
/// Applies \p Fn to every (snapshot-field, atomic-counter) pair so the
/// snapshot/reset functions cannot drift out of sync with the counter
/// list as stats grow.
template <typename FnT> void forEachCounter(GlobalStats &G, FnT Fn) {
  Fn(&Solver::Stats::NumQueries, G.NumQueries);
  Fn(&Solver::Stats::NumUnknown, G.NumUnknown);
  Fn(&Solver::Stats::NumUnknownBudget, G.NumUnknownBudget);
  Fn(&Solver::Stats::NumUnknownStructural, G.NumUnknownStructural);
  Fn(&Solver::Stats::NumUnknownTimeout, G.NumUnknownTimeout);
  Fn(&Solver::Stats::CacheHits, G.CacheHits);
  Fn(&Solver::Stats::CacheMisses, G.CacheMisses);
  Fn(&Solver::Stats::NumLiterals, G.NumLiterals);
  Fn(&Solver::Stats::SimplifyConstFoldHits, G.SimplifyConstFoldHits);
  Fn(&Solver::Stats::SimplifyConstFoldMisses, G.SimplifyConstFoldMisses);
  Fn(&Solver::Stats::SimplifyEqSubstHits, G.SimplifyEqSubstHits);
  Fn(&Solver::Stats::SimplifyEqSubstMisses, G.SimplifyEqSubstMisses);
  Fn(&Solver::Stats::SimplifyIntervalHits, G.SimplifyIntervalHits);
  Fn(&Solver::Stats::SimplifyIntervalMisses, G.SimplifyIntervalMisses);
  Fn(&Solver::Stats::SimplifyDecided, G.SimplifyDecided);
  Fn(&Solver::Stats::CooperReorders, G.CooperReorders);
  Fn(&Solver::Stats::CooperEarlyExits, G.CooperEarlyExits);
  Fn(&Solver::Stats::FastPathHits, G.FastPathHits);
  Fn(&Solver::Stats::FastPathMisses, G.FastPathMisses);
}
} // namespace

Solver::Stats exo::smt::solverGlobalStats() {
  GlobalStats &G = GlobalStats::get();
  Solver::Stats S;
  forEachCounter(G, [&S](uint64_t Solver::Stats::*M,
                         std::atomic<uint64_t> &C) {
    S.*M = C.load(std::memory_order_relaxed);
  });
  return S;
}

void exo::smt::resetSolverGlobalStats() {
  GlobalStats &G = GlobalStats::get();
  forEachCounter(G, [](uint64_t Solver::Stats::*M,
                       std::atomic<uint64_t> &C) {
    (void)M;
    C.store(0, std::memory_order_relaxed);
  });
}

Solver::Stats exo::smt::solverThreadStats() { return TLStats; }

void exo::smt::noteEffectFastPath(bool Hit) {
  GlobalStats &G = GlobalStats::get();
  if (Hit) {
    ++TLStats.FastPathHits;
    G.FastPathHits.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++TLStats.FastPathMisses;
    G.FastPathMisses.fetch_add(1, std::memory_order_relaxed);
  }
}

TermRef exo::smt::lastBudgetUnknownQuery() { return TLLastBudgetUnknown; }

void exo::smt::clearLastBudgetUnknownQuery() {
  TLLastBudgetUnknown = nullptr;
}

uint64_t exo::smt::defaultMaxLiterals() {
  if (TLDefaults.Active)
    return TLDefaults.Budget;
  return defaultBudgetStorage().load(std::memory_order_relaxed);
}

void exo::smt::setDefaultMaxLiterals(uint64_t Budget) {
  defaultBudgetStorage().store(Budget == 0 ? 1 : Budget,
                               std::memory_order_relaxed);
}

bool exo::smt::defaultUseQueryCache() {
  return TLDefaults.Active ? TLDefaults.UseCache : true;
}

ScopedSolverDefaults::ScopedSolverDefaults(uint64_t MaxLiterals,
                                           bool UseQueryCache)
    : PrevActive(TLDefaults.Active), PrevBudget(TLDefaults.Budget),
      PrevUseCache(TLDefaults.UseCache) {
  TLDefaults.Active = true;
  TLDefaults.Budget = MaxLiterals == 0 ? 1 : MaxLiterals;
  TLDefaults.UseCache = UseQueryCache;
}

ScopedSolverDefaults::~ScopedSolverDefaults() {
  TLDefaults.Active = PrevActive;
  TLDefaults.Budget = PrevBudget;
  TLDefaults.UseCache = PrevUseCache;
}

/// Closes the free variables of \p F with the given quantifier; boolean
/// variables are restricted to {0, 1}.
static TermRef closeFreeVars(TermRef F, bool Universally) {
  std::vector<TermVar> Free;
  collectFreeVars(F, Free);
  for (auto It = Free.rbegin(); It != Free.rend(); ++It) {
    TermVar V = *It;
    if (V.VarSort == Sort::Bool) {
      // Reinterpret the variable as an integer (the prenexer maps bool
      // vars onto int vars with the same Id) and bound it to {0, 1}.
      TermVar IntV{V.Id, V.Name, Sort::Int};
      TermRef X = mkVar(IntV);
      TermRef Range = mkAnd(le(intConst(0), X), le(X, intConst(1)));
      F = Universally ? forall(IntV, implies(Range, F))
                      : exists(IntV, mkAnd(Range, F));
    } else {
      F = Universally ? forall(V, F) : exists(V, F);
    }
  }
  return F;
}

SolverResult Solver::decide(TermRef Closed) {
  GlobalStats &G = GlobalStats::get();
  // Every counter bump lands in three places: this instance, the
  // process-wide aggregate, and the per-thread mirror.
  auto Bump = [&](uint64_t Solver::Stats::*M, std::atomic<uint64_t> &Counter,
                  uint64_t N = 1) {
    TheStats.*M += N;
    TLStats.*M += N;
    Counter.fetch_add(N, std::memory_order_relaxed);
  };
  Bump(&Stats::NumQueries, G.NumQueries);

  // Fault-injection sites, ahead of the cache so an injected fault can
  // never be masked by a hit. An injected timeout models a wedged query:
  // it cooperatively burns the thread's deadline (bounded when there is
  // none) before reporting Unknown{timeout}; an injected budget-Unknown
  // returns immediately with the budget verdict so retry policies can be
  // exercised deterministically.
  support::FaultInjector &Inj = support::FaultInjector::instance();
  if (Inj.enabled()) {
    if (Inj.shouldFire(support::Fault::SolverTimeout)) {
      auto SpinStart = std::chrono::steady_clock::now();
      while (!support::threadDeadlineExpired()) {
        // Without a deadline, stay "wedged" only briefly — injection must
        // never turn into the very hang it exists to test for.
        if (!support::currentThreadDeadline().isFinite() &&
            std::chrono::steady_clock::now() - SpinStart >
                std::chrono::milliseconds(25))
          break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      Bump(&Stats::NumUnknown, G.NumUnknown);
      Bump(&Stats::NumUnknownTimeout, G.NumUnknownTimeout);
      return SolverResult::Unknown;
    }
    if (Inj.shouldFire(support::Fault::SolverBudgetUnknown)) {
      Bump(&Stats::NumUnknown, G.NumUnknown);
      Bump(&Stats::NumUnknownBudget, G.NumUnknownBudget);
      TLLastBudgetUnknown = Closed;
      return SolverResult::Unknown;
    }
  }

  // Preprocessing pipeline, ahead of the cache: a query decided here
  // costs no key computation and no budget, and the cache key below is
  // computed on the *simplified* term so more alpha-variants collide.
  SimplifyConfig Cfg = simplifyConfig();
  SimplifyOutcome SO = simplifyQuery(Closed);
  if (Cfg.ConstFold)
    Bump(SO.ConstFoldHit ? &Stats::SimplifyConstFoldHits
                         : &Stats::SimplifyConstFoldMisses,
         SO.ConstFoldHit ? G.SimplifyConstFoldHits
                         : G.SimplifyConstFoldMisses);
  if (Cfg.EqSubst)
    Bump(SO.EqSubstHit ? &Stats::SimplifyEqSubstHits
                       : &Stats::SimplifyEqSubstMisses,
         SO.EqSubstHit ? G.SimplifyEqSubstHits : G.SimplifyEqSubstMisses);
  if (Cfg.IntervalProp)
    Bump(SO.IntervalHit ? &Stats::SimplifyIntervalHits
                        : &Stats::SimplifyIntervalMisses,
         SO.IntervalHit ? G.SimplifyIntervalHits
                        : G.SimplifyIntervalMisses);
  if (SO.decided()) {
    Bump(&Stats::SimplifyDecided, G.SimplifyDecided);
    return SO.Simplified->boolValue() ? SolverResult::Yes : SolverResult::No;
  }
  TermRef Query = SO.Simplified;

  // Consult the process-wide memo table. A hit returns exactly what the
  // cold decision procedure returned for an alpha-equivalent query;
  // Unknown verdicts are never stored, so budget changes always re-solve.
  bool UseCache = Opts.UseQueryCache && queryCacheEnabled();
  std::string Key;
  if (UseCache) {
    Key = canonicalQueryKey(Query);
    SolverResult Cached;
    if (queryCacheLookup(Key, Cached)) {
      Bump(&Stats::CacheHits, G.CacheHits);
      return Cached;
    }
    Bump(&Stats::CacheMisses, G.CacheMisses);
  }

  Budget B(Opts.MaxLiterals);
  PrenexResult P = prenex(Query, B);
  Decision D = B.exceeded() ? Decision::Unknown : decideClosed(P, B);
  if (B.spent())
    Bump(&Stats::NumLiterals, G.NumLiterals, B.spent());
  if (B.reorders())
    Bump(&Stats::CooperReorders, G.CooperReorders, B.reorders());
  if (B.earlyExits())
    Bump(&Stats::CooperEarlyExits, G.CooperEarlyExits, B.earlyExits());
  switch (D) {
  case Decision::True:
  case Decision::False: {
    SolverResult R =
        D == Decision::True ? SolverResult::Yes : SolverResult::No;
    if (UseCache && !Key.empty())
      queryCacheInsert(Key, R);
    return R;
  }
  case Decision::Unknown:
    break;
  }
  Bump(&Stats::NumUnknown, G.NumUnknown);
  if (B.timedOut()) {
    Bump(&Stats::NumUnknownTimeout, G.NumUnknownTimeout);
  } else if (B.structuralOverflow()) {
    Bump(&Stats::NumUnknownStructural, G.NumUnknownStructural);
  } else {
    Bump(&Stats::NumUnknownBudget, G.NumUnknownBudget);
    // Remember the (pre-simplification) query so a retry policy can
    // re-prove just this one under an escalated budget.
    TLLastBudgetUnknown = Closed;
  }
  return SolverResult::Unknown;
}

SolverResult Solver::checkValid(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/true));
}

SolverResult Solver::checkSat(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/false));
}
