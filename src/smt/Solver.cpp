//===- smt/Solver.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/Cooper.h"
#include "smt/Prenex.h"
#include "smt/QueryCache.h"

#include "support/Deadline.h"
#include "support/FaultInjector.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace exo;
using namespace exo::smt;

namespace {
std::atomic<uint64_t> &defaultBudgetStorage() {
  static std::atomic<uint64_t> Budget{2'000'000};
  return Budget;
}

/// Thread-scoped default overrides (see ScopedSolverDefaults).
struct ThreadDefaults {
  bool Active = false;
  uint64_t Budget = 0;
  bool UseCache = true;
};
thread_local ThreadDefaults TLDefaults;

/// Process-wide aggregate as lock-free atomics: every solver on every
/// session thread bumps these on the query hot path, so a mutex here would
/// both serialize the batch driver and (worse) undercount if skipped.
/// Snapshot reads are per-counter relaxed loads — counters are mutually
/// consistent only at quiescence, which is when benchmarks read them.
struct GlobalStats {
  std::atomic<uint64_t> NumQueries{0};
  std::atomic<uint64_t> NumUnknown{0};
  std::atomic<uint64_t> NumUnknownBudget{0};
  std::atomic<uint64_t> NumUnknownStructural{0};
  std::atomic<uint64_t> NumUnknownTimeout{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> CacheMisses{0};

  static GlobalStats &get() {
    static GlobalStats G;
    return G;
  }
};
} // namespace

Solver::Stats exo::smt::solverGlobalStats() {
  GlobalStats &G = GlobalStats::get();
  Solver::Stats S;
  S.NumQueries = G.NumQueries.load(std::memory_order_relaxed);
  S.NumUnknown = G.NumUnknown.load(std::memory_order_relaxed);
  S.NumUnknownBudget = G.NumUnknownBudget.load(std::memory_order_relaxed);
  S.NumUnknownStructural =
      G.NumUnknownStructural.load(std::memory_order_relaxed);
  S.NumUnknownTimeout = G.NumUnknownTimeout.load(std::memory_order_relaxed);
  S.CacheHits = G.CacheHits.load(std::memory_order_relaxed);
  S.CacheMisses = G.CacheMisses.load(std::memory_order_relaxed);
  return S;
}

void exo::smt::resetSolverGlobalStats() {
  GlobalStats &G = GlobalStats::get();
  G.NumQueries.store(0, std::memory_order_relaxed);
  G.NumUnknown.store(0, std::memory_order_relaxed);
  G.NumUnknownBudget.store(0, std::memory_order_relaxed);
  G.NumUnknownStructural.store(0, std::memory_order_relaxed);
  G.NumUnknownTimeout.store(0, std::memory_order_relaxed);
  G.CacheHits.store(0, std::memory_order_relaxed);
  G.CacheMisses.store(0, std::memory_order_relaxed);
}

uint64_t exo::smt::defaultMaxLiterals() {
  if (TLDefaults.Active)
    return TLDefaults.Budget;
  return defaultBudgetStorage().load(std::memory_order_relaxed);
}

void exo::smt::setDefaultMaxLiterals(uint64_t Budget) {
  defaultBudgetStorage().store(Budget == 0 ? 1 : Budget,
                               std::memory_order_relaxed);
}

bool exo::smt::defaultUseQueryCache() {
  return TLDefaults.Active ? TLDefaults.UseCache : true;
}

ScopedSolverDefaults::ScopedSolverDefaults(uint64_t MaxLiterals,
                                           bool UseQueryCache)
    : PrevActive(TLDefaults.Active), PrevBudget(TLDefaults.Budget),
      PrevUseCache(TLDefaults.UseCache) {
  TLDefaults.Active = true;
  TLDefaults.Budget = MaxLiterals == 0 ? 1 : MaxLiterals;
  TLDefaults.UseCache = UseQueryCache;
}

ScopedSolverDefaults::~ScopedSolverDefaults() {
  TLDefaults.Active = PrevActive;
  TLDefaults.Budget = PrevBudget;
  TLDefaults.UseCache = PrevUseCache;
}

/// Closes the free variables of \p F with the given quantifier; boolean
/// variables are restricted to {0, 1}.
static TermRef closeFreeVars(TermRef F, bool Universally) {
  std::vector<TermVar> Free;
  collectFreeVars(F, Free);
  for (auto It = Free.rbegin(); It != Free.rend(); ++It) {
    TermVar V = *It;
    if (V.VarSort == Sort::Bool) {
      // Reinterpret the variable as an integer (the prenexer maps bool
      // vars onto int vars with the same Id) and bound it to {0, 1}.
      TermVar IntV{V.Id, V.Name, Sort::Int};
      TermRef X = mkVar(IntV);
      TermRef Range = mkAnd(le(intConst(0), X), le(X, intConst(1)));
      F = Universally ? forall(IntV, implies(Range, F))
                      : exists(IntV, mkAnd(Range, F));
    } else {
      F = Universally ? forall(V, F) : exists(V, F);
    }
  }
  return F;
}

SolverResult Solver::decide(TermRef Closed) {
  ++TheStats.NumQueries;
  GlobalStats &G = GlobalStats::get();
  auto Bump = [](std::atomic<uint64_t> &Counter) {
    Counter.fetch_add(1, std::memory_order_relaxed);
  };
  Bump(G.NumQueries);

  // Fault-injection sites, ahead of the cache so an injected fault can
  // never be masked by a hit. An injected timeout models a wedged query:
  // it cooperatively burns the thread's deadline (bounded when there is
  // none) before reporting Unknown{timeout}; an injected budget-Unknown
  // returns immediately with the budget verdict so retry policies can be
  // exercised deterministically.
  support::FaultInjector &Inj = support::FaultInjector::instance();
  if (Inj.enabled()) {
    if (Inj.shouldFire(support::Fault::SolverTimeout)) {
      auto SpinStart = std::chrono::steady_clock::now();
      while (!support::threadDeadlineExpired()) {
        // Without a deadline, stay "wedged" only briefly — injection must
        // never turn into the very hang it exists to test for.
        if (!support::currentThreadDeadline().isFinite() &&
            std::chrono::steady_clock::now() - SpinStart >
                std::chrono::milliseconds(25))
          break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ++TheStats.NumUnknown;
      Bump(G.NumUnknown);
      ++TheStats.NumUnknownTimeout;
      Bump(G.NumUnknownTimeout);
      return SolverResult::Unknown;
    }
    if (Inj.shouldFire(support::Fault::SolverBudgetUnknown)) {
      ++TheStats.NumUnknown;
      Bump(G.NumUnknown);
      ++TheStats.NumUnknownBudget;
      Bump(G.NumUnknownBudget);
      return SolverResult::Unknown;
    }
  }

  // Consult the process-wide memo table first. A hit returns exactly what
  // the cold decision procedure returned for an alpha-equivalent query;
  // Unknown verdicts are never stored, so budget changes always re-solve.
  bool UseCache = Opts.UseQueryCache && queryCacheEnabled();
  std::string Key;
  if (UseCache) {
    Key = canonicalQueryKey(Closed);
    SolverResult Cached;
    if (queryCacheLookup(Key, Cached)) {
      ++TheStats.CacheHits;
      Bump(G.CacheHits);
      return Cached;
    }
    ++TheStats.CacheMisses;
    Bump(G.CacheMisses);
  }

  Budget B(Opts.MaxLiterals);
  PrenexResult P = prenex(Closed, B);
  Decision D = B.exceeded() ? Decision::Unknown : decideClosed(P, B);
  switch (D) {
  case Decision::True:
  case Decision::False: {
    SolverResult R =
        D == Decision::True ? SolverResult::Yes : SolverResult::No;
    if (UseCache && !Key.empty())
      queryCacheInsert(Key, R);
    return R;
  }
  case Decision::Unknown:
    break;
  }
  ++TheStats.NumUnknown;
  Bump(G.NumUnknown);
  if (B.timedOut()) {
    ++TheStats.NumUnknownTimeout;
    Bump(G.NumUnknownTimeout);
  } else if (B.structuralOverflow()) {
    ++TheStats.NumUnknownStructural;
    Bump(G.NumUnknownStructural);
  } else {
    ++TheStats.NumUnknownBudget;
    Bump(G.NumUnknownBudget);
  }
  return SolverResult::Unknown;
}

SolverResult Solver::checkValid(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/true));
}

SolverResult Solver::checkSat(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/false));
}
