//===- smt/Solver.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/Cooper.h"
#include "smt/Prenex.h"
#include "smt/QueryCache.h"

#include <mutex>

using namespace exo;
using namespace exo::smt;

namespace {
uint64_t &defaultBudgetStorage() {
  static uint64_t Budget = 2'000'000;
  return Budget;
}

struct GlobalStats {
  std::mutex M;
  Solver::Stats S;

  static GlobalStats &get() {
    static GlobalStats G;
    return G;
  }
};
} // namespace

Solver::Stats exo::smt::solverGlobalStats() {
  GlobalStats &G = GlobalStats::get();
  std::lock_guard<std::mutex> Lock(G.M);
  return G.S;
}

void exo::smt::resetSolverGlobalStats() {
  GlobalStats &G = GlobalStats::get();
  std::lock_guard<std::mutex> Lock(G.M);
  G.S = Solver::Stats();
}

uint64_t exo::smt::defaultMaxLiterals() { return defaultBudgetStorage(); }

void exo::smt::setDefaultMaxLiterals(uint64_t Budget) {
  defaultBudgetStorage() = Budget == 0 ? 1 : Budget;
}

/// Closes the free variables of \p F with the given quantifier; boolean
/// variables are restricted to {0, 1}.
static TermRef closeFreeVars(TermRef F, bool Universally) {
  std::vector<TermVar> Free;
  collectFreeVars(F, Free);
  for (auto It = Free.rbegin(); It != Free.rend(); ++It) {
    TermVar V = *It;
    if (V.VarSort == Sort::Bool) {
      // Reinterpret the variable as an integer (the prenexer maps bool
      // vars onto int vars with the same Id) and bound it to {0, 1}.
      TermVar IntV{V.Id, V.Name, Sort::Int};
      TermRef X = mkVar(IntV);
      TermRef Range = mkAnd(le(intConst(0), X), le(X, intConst(1)));
      F = Universally ? forall(IntV, implies(Range, F))
                      : exists(IntV, mkAnd(Range, F));
    } else {
      F = Universally ? forall(V, F) : exists(V, F);
    }
  }
  return F;
}

SolverResult Solver::decide(TermRef Closed) {
  ++TheStats.NumQueries;
  auto Bump = [](auto Field) {
    GlobalStats &G = GlobalStats::get();
    std::lock_guard<std::mutex> Lock(G.M);
    ++(G.S.*Field);
  };
  Bump(&Stats::NumQueries);

  // Consult the process-wide memo table first. A hit returns exactly what
  // the cold decision procedure returned for an alpha-equivalent query;
  // Unknown verdicts are never stored, so budget changes always re-solve.
  bool UseCache = Opts.UseQueryCache && queryCacheEnabled();
  std::string Key;
  if (UseCache) {
    Key = canonicalQueryKey(Closed);
    SolverResult Cached;
    if (queryCacheLookup(Key, Cached)) {
      ++TheStats.CacheHits;
      Bump(&Stats::CacheHits);
      return Cached;
    }
    ++TheStats.CacheMisses;
    Bump(&Stats::CacheMisses);
  }

  Budget B(Opts.MaxLiterals);
  PrenexResult P = prenex(Closed, B);
  Decision D = B.exceeded() ? Decision::Unknown : decideClosed(P, B);
  switch (D) {
  case Decision::True:
  case Decision::False: {
    SolverResult R =
        D == Decision::True ? SolverResult::Yes : SolverResult::No;
    if (UseCache && !Key.empty())
      queryCacheInsert(Key, R);
    return R;
  }
  case Decision::Unknown:
    break;
  }
  ++TheStats.NumUnknown;
  Bump(&Stats::NumUnknown);
  if (B.structuralOverflow()) {
    ++TheStats.NumUnknownStructural;
    Bump(&Stats::NumUnknownStructural);
  } else {
    ++TheStats.NumUnknownBudget;
    Bump(&Stats::NumUnknownBudget);
  }
  return SolverResult::Unknown;
}

SolverResult Solver::checkValid(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/true));
}

SolverResult Solver::checkSat(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/false));
}
