//===- smt/Solver.cpp ------------------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/Cooper.h"
#include "smt/Prenex.h"

using namespace exo;
using namespace exo::smt;

namespace {
uint64_t &defaultBudgetStorage() {
  static uint64_t Budget = 2'000'000;
  return Budget;
}
} // namespace

uint64_t exo::smt::defaultMaxLiterals() { return defaultBudgetStorage(); }

void exo::smt::setDefaultMaxLiterals(uint64_t Budget) {
  defaultBudgetStorage() = Budget == 0 ? 1 : Budget;
}

/// Closes the free variables of \p F with the given quantifier; boolean
/// variables are restricted to {0, 1}.
static TermRef closeFreeVars(TermRef F, bool Universally) {
  std::vector<TermVar> Free;
  collectFreeVars(F, Free);
  for (auto It = Free.rbegin(); It != Free.rend(); ++It) {
    TermVar V = *It;
    if (V.VarSort == Sort::Bool) {
      // Reinterpret the variable as an integer (the prenexer maps bool
      // vars onto int vars with the same Id) and bound it to {0, 1}.
      TermVar IntV{V.Id, V.Name, Sort::Int};
      TermRef X = mkVar(IntV);
      TermRef Range = mkAnd(le(intConst(0), X), le(X, intConst(1)));
      F = Universally ? forall(IntV, implies(Range, F))
                      : exists(IntV, mkAnd(Range, F));
    } else {
      F = Universally ? forall(V, F) : exists(V, F);
    }
  }
  return F;
}

SolverResult Solver::decide(TermRef Closed) {
  ++TheStats.NumQueries;
  Budget B(Opts.MaxLiterals);
  PrenexResult P = prenex(Closed, B);
  Decision D = B.exceeded() ? Decision::Unknown : decideClosed(P, B);
  switch (D) {
  case Decision::True:
    return SolverResult::Yes;
  case Decision::False:
    return SolverResult::No;
  case Decision::Unknown:
    ++TheStats.NumUnknown;
    return SolverResult::Unknown;
  }
  return SolverResult::Unknown;
}

SolverResult Solver::checkValid(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/true));
}

SolverResult Solver::checkSat(const TermRef &F) {
  return decide(closeFreeVars(F, /*Universally=*/false));
}
