//===- smt/Prenex.h - Prenex normal form conversion ------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a Term into prenex normal form: a quantifier prefix over a
/// quantifier-free QForm body. Along the way it
///   - pushes negations (NNF) and expands Implies / boolean Ite,
///   - freshly renames every bound variable (so hoisting cannot capture),
///   - splits atoms containing integer-sorted Ite into guarded cases,
///   - lowers quasi-affine Div/Mod terms into fresh existentials with
///     functional defining constraints (an equivalence, valid under any
///     polarity, because the quotient is uniquely determined),
///   - maps Bool-sorted variables onto 0/1-constrained Int variables.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_PRENEX_H
#define EXO_SMT_PRENEX_H

#include "smt/QForm.h"
#include "smt/Term.h"

namespace exo {
namespace smt {

/// One entry of a quantifier prefix (outermost first).
struct QuantEntry {
  enum class Q { Forall, Exists };
  Q Quant;
  unsigned VarId;
};

/// The result of prenexing: Prefix (outermost first) and a QF body.
/// The body's free variables are exactly the input term's free variables
/// plus the prefix variables.
struct PrenexResult {
  std::vector<QuantEntry> Prefix;
  QFormRef Body;
};

/// Prenexes \p F. On budget exhaustion the body is garbage; the caller
/// must check \p B.exceeded().
PrenexResult prenex(const TermRef &F, Budget &B);

} // namespace smt
} // namespace exo

#endif // EXO_SMT_PRENEX_H
