//===- smt/Linear.h - Canonical linear integer forms -----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LinearForm: the canonical representation Σ cᵢ·xᵢ + c used inside the
/// quantifier elimination engine and by the unification solver. Variables
/// are solver variable Ids; coefficients are exact 64-bit integers.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_SMT_LINEAR_H
#define EXO_SMT_LINEAR_H

#include "smt/Term.h"

#include <map>
#include <optional>

namespace exo {
namespace smt {

/// A linear combination of integer variables plus a constant.
/// The coefficient map never stores zero entries.
class LinearForm {
public:
  LinearForm() = default;
  explicit LinearForm(int64_t Constant) : Constant(Constant) {}

  static LinearForm variable(unsigned VarId, int64_t Coeff = 1) {
    LinearForm F;
    if (Coeff != 0)
      F.Coeffs[VarId] = Coeff;
    return F;
  }

  int64_t constant() const { return Constant; }
  void setConstant(int64_t C) { Constant = C; }

  /// Coefficient of a variable (0 if absent).
  int64_t coeff(unsigned VarId) const {
    auto It = Coeffs.find(VarId);
    return It == Coeffs.end() ? 0 : It->second;
  }

  void setCoeff(unsigned VarId, int64_t C) {
    if (C == 0)
      Coeffs.erase(VarId);
    else
      Coeffs[VarId] = C;
  }

  const std::map<unsigned, int64_t> &coeffs() const { return Coeffs; }

  bool isConstant() const { return Coeffs.empty(); }
  bool mentions(unsigned VarId) const { return Coeffs.count(VarId) != 0; }

  LinearForm &operator+=(const LinearForm &O);
  LinearForm &operator-=(const LinearForm &O);
  LinearForm operator+(const LinearForm &O) const;
  LinearForm operator-(const LinearForm &O) const;
  LinearForm scaled(int64_t S) const;
  LinearForm negated() const { return scaled(-1); }

  /// Removes variable \p VarId and adds Coeff * Replacement instead.
  LinearForm substituted(unsigned VarId, const LinearForm &Replacement) const;

  /// gcd of the variable coefficients (0 when constant).
  int64_t coeffGcd() const;

  bool operator==(const LinearForm &O) const {
    return Constant == O.Constant && Coeffs == O.Coeffs;
  }

  /// Total ordering for canonicalization / dedup.
  bool operator<(const LinearForm &O) const;

  /// Debug rendering, e.g. "2*x#3 + -1*y#5 + 7".
  std::string str() const;

private:
  std::map<unsigned, int64_t> Coeffs;
  int64_t Constant = 0;
};

/// Extracts a LinearForm from an integer term, if it is linear (no Div,
/// Mod, or Ite nodes). Returns nullopt otherwise.
std::optional<LinearForm> linearFromTerm(const TermRef &T);

/// Renders a LinearForm back into a term (variables must carry names via
/// the supplied lookup, or get synthetic names).
TermRef linearToTerm(const LinearForm &F);

} // namespace smt
} // namespace exo

#endif // EXO_SMT_LINEAR_H
