//===- bench/ablation_simplify.cpp - Preprocessing ablation ------*- C++-*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the solver preprocessing pipeline (DESIGN.md, "Solver
/// preprocessing"): the six-kernel suite is compiled serially with each
/// stage toggled in isolation, with everything off, and with everything
/// on. Each row runs with cleared caches and the query cache disabled so
/// the per-row Cooper literal consumption is the true per-stage cost.
///
/// The binary doubles as a regression tripwire (exit 1):
///  - the all-on row must answer at least 30% of safety queries by the
///    effect fast path or during preprocessing (the PR's acceptance
///    floor), and
///  - the all-on row's Cooper literal consumption must not exceed the
///    recorded baseline by more than 10% (a silent simplifier regression
///    would show up here first).
///
/// Results are written as JSON to argv[1] (default BENCH_simplify.json).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "analysis/EffectCache.h"
#include "driver/BatchDriver.h"
#include "driver/KernelSuite.h"
#include "smt/QueryCache.h"
#include "smt/Simplify.h"
#include "smt/Solver.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace exo;
using namespace exo::bench;
using namespace exo::driver;

namespace {

/// All-on Cooper literal consumption on the standard kernel suite,
/// re-recorded when the AMX tile-engine matmul joined it (the previous
/// six-kernel baseline was 17,564; amx_matmul's staging/replace queries
/// account for the rest — all-off consumes 2,268,281, a 64.6x
/// reduction). The tripwire allows 10% drift.
constexpr uint64_t BaselineAllOnLiterals = 35'128;

struct Row {
  const char *Name;
  smt::SimplifyConfig Cfg;
  smt::Solver::Stats S;
  double Ms = 0;
  bool AllOk = false;
};

smt::SimplifyConfig onlyStage(unsigned I) {
  smt::SimplifyConfig C;
  C.ConstFold = I == 0;
  C.EqSubst = I == 1;
  C.IntervalProp = I == 2;
  C.CheapVarOrder = I == 3;
  C.EffectFastPath = I == 4;
  return C;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_simplify.json";
  std::printf("Ablation: solver preprocessing stages on the six-kernel "
              "suite (serial, query cache off)\n\n");

  smt::SimplifyConfig AllOff;
  AllOff.ConstFold = AllOff.EqSubst = AllOff.IntervalProp = false;
  AllOff.CheapVarOrder = AllOff.EffectFastPath = false;
  smt::SimplifyConfig AllOn; // defaults: everything on

  std::vector<Row> Rows = {
      {"all-off", AllOff, {}, 0, false},
      {"const-fold", onlyStage(0), {}, 0, false},
      {"eq-subst", onlyStage(1), {}, 0, false},
      {"interval", onlyStage(2), {}, 0, false},
      {"cheap-var", onlyStage(3), {}, 0, false},
      {"fast-path", onlyStage(4), {}, 0, false},
      {"all-on", AllOn, {}, 0, false},
  };

  SessionOptions Opts;
  Opts.UseQueryCache = false; // every query must exercise the pipeline

  printRow({"config", "ok", "time (ms)", "queries", "decided", "fp hit",
            "fp miss", "literals", "unknown"},
           {11, 4, 10, 9, 9, 8, 8, 12, 9});
  for (Row &R : Rows) {
    smt::setSimplifyConfig(R.Cfg);
    smt::clearSolverQueryCache();
    analysis::clearEffectCache();
    smt::resetSolverGlobalStats();
    BatchResult B = BatchDriver(1, Opts).run(standardKernelSuite());
    R.Ms = B.WallMillis;
    R.AllOk = B.AllOk;
    R.S = smt::solverGlobalStats();
    char T[32], Q[32], D[32], FH[32], FM[32], L[32], U[32];
    std::snprintf(T, 32, "%.1f", R.Ms);
    std::snprintf(Q, 32, "%llu", (unsigned long long)R.S.NumQueries);
    std::snprintf(D, 32, "%llu", (unsigned long long)R.S.SimplifyDecided);
    std::snprintf(FH, 32, "%llu", (unsigned long long)R.S.FastPathHits);
    std::snprintf(FM, 32, "%llu", (unsigned long long)R.S.FastPathMisses);
    std::snprintf(L, 32, "%llu", (unsigned long long)R.S.NumLiterals);
    std::snprintf(U, 32, "%llu", (unsigned long long)R.S.NumUnknown);
    printRow({R.Name, R.AllOk ? "ok" : "FAIL", T, Q, D, FH, FM, L, U},
             {11, 4, 10, 9, 9, 8, 8, 12, 9});
  }
  smt::setSimplifyConfig(smt::SimplifyConfig());

  const Row &On = Rows.back();
  const Row &Off = Rows.front();
  uint64_t Answered = On.S.SimplifyDecided + On.S.FastPathHits;
  uint64_t Posed = On.S.NumQueries + On.S.FastPathHits;
  double Ratio = Posed ? (double)Answered / (double)Posed : 0;
  // The all-off row's "decided" count is the number of queries that were
  // ground on arrival (the term factories fold ground atoms at
  // construction); those return early regardless of any stage. The
  // pipeline's own contribution is everything beyond that.
  uint64_t GroundAtArrival = Off.S.SimplifyDecided;
  std::printf("\nall-on: %llu of %llu safety queries (%.1f%%) answered by "
              "the fast path or decided during preprocessing\n(%llu were "
              "ground on arrival; the pipeline decided %llu of the %llu "
              "that were not);\nCooper literals %llu (all-off: %llu, "
              "%.1fx reduction)\n",
              (unsigned long long)Answered, (unsigned long long)Posed,
              100.0 * Ratio, (unsigned long long)GroundAtArrival,
              (unsigned long long)(On.S.SimplifyDecided - GroundAtArrival),
              (unsigned long long)(On.S.NumQueries - GroundAtArrival),
              (unsigned long long)On.S.NumLiterals,
              (unsigned long long)Off.S.NumLiterals,
              On.S.NumLiterals
                  ? (double)Off.S.NumLiterals / (double)On.S.NumLiterals
                  : 0.0);

  std::ofstream OutF(OutPath);
  OutF << "{\n  \"rows\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    OutF << "    {\"config\": \"" << R.Name << "\", \"ok\": "
         << (R.AllOk ? "true" : "false") << ", \"ms\": " << R.Ms
         << ", \"queries\": " << R.S.NumQueries
         << ", \"simplify_decided\": " << R.S.SimplifyDecided
         << ", \"fastpath_hits\": " << R.S.FastPathHits
         << ", \"fastpath_misses\": " << R.S.FastPathMisses
         << ", \"cooper_literals\": " << R.S.NumLiterals
         << ", \"cooper_reorders\": " << R.S.CooperReorders
         << ", \"cooper_early_exits\": " << R.S.CooperEarlyExits
         << ", \"unknown\": " << R.S.NumUnknown << "}"
         << (I + 1 < Rows.size() ? "," : "") << "\n";
  }
  OutF << "  ],\n  \"metric\": {\"answered_before_cooper\": " << Answered
       << ", \"posed\": " << Posed << ", \"ratio\": " << Ratio
       << ", \"ground_at_arrival\": " << GroundAtArrival
       << "},\n  \"tripwire\": {\"baseline_all_on_literals\": "
       << BaselineAllOnLiterals
       << ", \"all_on_literals\": " << On.S.NumLiterals << "}\n}\n";
  OutF.close();
  std::printf("wrote %s\n", OutPath.c_str());

  int Failures = 0;
  for (const Row &R : Rows)
    if (!R.AllOk) {
      std::printf("TRIPWIRE: suite failed under config '%s'\n", R.Name);
      ++Failures;
    }
  if (Ratio < 0.30) {
    std::printf("TRIPWIRE: preprocessing answered only %.1f%% of queries "
                "(floor: 30%%)\n",
                100.0 * Ratio);
    ++Failures;
  }
  if (On.S.NumLiterals > BaselineAllOnLiterals + BaselineAllOnLiterals / 10) {
    std::printf("TRIPWIRE: all-on Cooper literal consumption %llu exceeds "
                "baseline %llu by more than 10%%\n",
                (unsigned long long)On.S.NumLiterals,
                (unsigned long long)BaselineAllOnLiterals);
    ++Failures;
  }
  return Failures ? 1 : 0;
}
