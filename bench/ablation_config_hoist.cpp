//===- bench/ablation_config_hoist.cpp - Hoisting ablation -----*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the §2 headline optimization: identical instruction
/// streams except for configuration-hoisting, with the simulator's
/// flush statistics alongside the cycle counts. This isolates how much
/// of the Fig. 4 gap is pipeline flushing (all of it, by construction).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/GemminiMatmul.h"
#include "backend/CodeGen.h"

#include <cstdio>

using namespace exo;
using namespace exo::bench;

int main() {
  const int64_t N = 512, M = 512, K = 512;
  auto Kernels = apps::buildGemminiMatmul(N, M, K);
  if (!Kernels) {
    std::fprintf(stderr, "%s\n", Kernels.error().str().c_str());
    return 1;
  }
  auto CSrc = backend::generateC({Kernels->OldLib, Kernels->ExoLib});
  if (!CSrc) {
    std::fprintf(stderr, "%s\n", CSrc.error().str().c_str());
    return 1;
  }
  std::string Main = R"(
#include <stdio.h>
#include "gemmini_sim.h"
enum { N = 512, M = 512, K = 512 };
static float A[N * K], B[K * M], C[N * M];
int main(void) {
  for (long i = 0; i < (long)N * K; i++) A[i] = (float)(i % 7) - 3.0f;
  for (long i = 0; i < (long)K * M; i++) B[i] = (float)(i % 5) - 2.0f;

  gemmini_reset(EXO_GEMMINI_MODE_SW);
  gemmini_matmul_old(A, B, C);
  printf("%llu %llu\n", (unsigned long long)gemmini_cycles(),
         (unsigned long long)gemmini_stat_config_writes());

  gemmini_reset(EXO_GEMMINI_MODE_SW);
  gemmini_matmul_exo(A, B, C);
  printf("%llu %llu\n", (unsigned long long)gemmini_cycles(),
         (unsigned long long)gemmini_stat_config_writes());
  return 0;
}
)";
  auto Out = compileAndRun(*CSrc + Main,
                           {gemminiRuntimeDir() + "/gemmini_sim.c"},
                           {gemminiRuntimeDir()});
  if (!Out || Out->size() < 4) {
    std::fprintf(stderr, "harness failed\n");
    return 1;
  }
  double OldCyc = std::atof((*Out)[0].c_str());
  double OldCfg = std::atof((*Out)[1].c_str());
  double ExoCyc = std::atof((*Out)[2].c_str());
  double ExoCfg = std::atof((*Out)[3].c_str());
  std::printf("Ablation: configuration hoisting on a 512^3 Gemmini "
              "matmul\n\n");
  printRow({"variant", "cycles", "config writes", "flush cycles"},
           {12, 12, 14, 13});
  char B1[4][32];
  std::snprintf(B1[0], 32, "%.0f", OldCyc);
  std::snprintf(B1[1], 32, "%.0f", OldCfg);
  std::snprintf(B1[2], 32, "%.0f", OldCfg * 70);
  printRow({"per-tile", B1[0], B1[1], B1[2]}, {12, 12, 14, 13});
  std::snprintf(B1[0], 32, "%.0f", ExoCyc);
  std::snprintf(B1[1], 32, "%.0f", ExoCfg);
  std::snprintf(B1[2], 32, "%.0f", ExoCfg * 70);
  printRow({"hoisted", B1[0], B1[1], B1[2]}, {12, 12, 14, 13});
  std::printf("\nspeedup from hoisting alone: %.2fx; flush share of the "
              "gap: %.0f%%\n",
              OldCyc / ExoCyc,
              100.0 * (OldCfg - ExoCfg) * 70 / (OldCyc - ExoCyc));
  return 0;
}
