//===- bench/fig6_conv_x86.cpp - Fig. 6 reproduction -----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 6: single-threaded x86 CONV performance for the
/// Halide-benchmark layer (N=5, W=82, H=102, IC=OC=128, 3x3, unit
/// stride, no padding, fused ReLU). The paper's Exo, Halide, and oneDNN
/// all land within 0.1 % of each other (~40.5 % of peak); here the
/// baselines are a naive C conv and a channel-vectorized "tuned" C conv,
/// and the expected shape is Exo ≈ tuned ≫ naive.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/Conv.h"
#include "backend/CodeGen.h"

#include <cstdio>

using namespace exo;
using namespace exo::bench;
using apps::ConvShape;

namespace {

const char *HarnessCommon = R"(
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

static double now_s(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec + 1e-9 * ts.tv_nsec;
}
)";

std::string mainHarness(const ConvShape &S) {
  char Buf[8192];
  std::snprintf(Buf, sizeof(Buf), R"(
enum { NB = %lld, H = %lld, W = %lld, IC = %lld, OC = %lld,
       OH = %lld, OW = %lld };

static void naive_conv(const float *x, const float *w, float *y) {
  for (long n = 0; n < NB; n++)
    for (long oh = 0; oh < OH; oh++)
      for (long ow = 0; ow < OW; ow++)
        for (long oc = 0; oc < OC; oc++) {
          float acc = 0.0f;
          for (long kh = 0; kh < 3; kh++)
            for (long kw = 0; kw < 3; kw++)
              for (long ic = 0; ic < IC; ic++)
                acc += x[(((n * H + oh + kh) * W) + ow + kw) * IC + ic] *
                       w[((kh * 3 + kw) * IC + ic) * OC + oc];
          y[((n * OH + oh) * OW + ow) * OC + oc] = acc > 0 ? acc : 0.0f;
        }
}

static void tuned_conv(const float *restrict x, const float *restrict w,
                       float *restrict y) {
  for (long n = 0; n < NB; n++)
    for (long oh = 0; oh < OH; oh++)
      for (long ow = 0; ow < OW; ow++) {
        float acc[OC];
        for (long oc = 0; oc < OC; oc++) acc[oc] = 0.0f;
        for (long kh = 0; kh < 3; kh++)
          for (long kw = 0; kw < 3; kw++) {
            const float *restrict xr =
                &x[(((n * H + oh + kh) * W) + ow + kw) * IC];
            for (long ic = 0; ic < IC; ic++) {
              float xv = xr[ic];
              const float *restrict wr = &w[((kh * 3 + kw) * IC + ic) * OC];
              for (long oc = 0; oc < OC; oc++)
                acc[oc] += xv * wr[oc];
            }
          }
        float *restrict yr = &y[((n * OH + oh) * OW + ow) * OC];
        for (long oc = 0; oc < OC; oc++)
          yr[oc] = acc[oc] > 0 ? acc[oc] : 0.0f;
      }
}

static float *x, *w, *ybuf, *yref;
int main(void) {
  x = malloc((size_t)NB * H * W * IC * sizeof(float));
  w = malloc((size_t)9 * IC * OC * sizeof(float));
  ybuf = malloc((size_t)NB * OH * OW * OC * sizeof(float));
  yref = malloc((size_t)NB * OH * OW * OC * sizeof(float));
  unsigned s = 1u;
  for (long i = 0; i < (long)NB * H * W * IC; i++) {
    s = s * 1103515245u + 12345u;
    x[i] = (float)((s >> 16) %% 1000) / 500.0f - 1.0f;
  }
  for (long i = 0; i < (long)9 * IC * OC; i++) {
    s = s * 1103515245u + 12345u;
    w[i] = (float)((s >> 16) %% 1000) / 500.0f - 1.0f;
  }
  tuned_conv(x, w, yref);
  memset(ybuf, 0, (size_t)NB * OH * OW * OC * sizeof(float));
  exo_conv_x86(x, w, ybuf);
  int ok = 1;
  for (long i = 0; i < (long)NB * OH * OW * OC; i += 53)
    if (ybuf[i] < yref[i] - 0.05f || ybuf[i] > yref[i] + 0.05f) {
      ok = 0;
      break;
    }
  double tn = 1e30, tt = 1e30, te = 1e30;
  for (int r = 0; r < 2; r++) {
    double t0 = now_s();
    naive_conv(x, w, ybuf);
    double t = now_s() - t0;
    if (t < tn) tn = t;
  }
  for (int r = 0; r < 3; r++) {
    double t0 = now_s();
    tuned_conv(x, w, ybuf);
    double t = now_s() - t0;
    if (t < tt) tt = t;
  }
  for (int r = 0; r < 3; r++) {
    memset(ybuf, 0, (size_t)NB * OH * OW * OC * sizeof(float));
    double t0 = now_s();
    exo_conv_x86(x, w, ybuf);
    double t = now_s() - t0;
    if (t < te) te = t;
  }
  printf("%%d %%.6f %%.6f %%.6f\n", ok, tn, tt, te);
  return 0;
}
)",
                (long long)S.N, (long long)S.H, (long long)S.W,
                (long long)S.IC, (long long)S.OC, (long long)S.oh(),
                (long long)S.ow());
  return Buf;
}

} // namespace

int main() {
  // The paper's layer: batch 5, output 100x80, 128 channels in and out.
  ConvShape S{5, 102, 82, 128, 128};
  std::printf("Figure 6: x86 CONV (N=%lld W=%lld H=%lld IC=%lld OC=%lld, "
              "3x3, ReLU)\n",
              (long long)S.N, (long long)S.W, (long long)S.H,
              (long long)S.IC, (long long)S.OC);
  std::printf("paper shape: Exo 40.50%%, Halide 40.59%%, oneDNN 40.55%% of "
              "peak — all within noise; here Exo vs naive/tuned C\n\n");

  auto K = apps::buildConvX86(S);
  if (!K) {
    std::fprintf(stderr, "schedule failed: %s\n", K.error().str().c_str());
    return 1;
  }
  auto CSrc = backend::generateC(K->Scheduled,
                                 {.Prelude = std::string(HarnessCommon)});
  if (!CSrc) {
    std::fprintf(stderr, "codegen failed: %s\n", CSrc.error().str().c_str());
    return 1;
  }
  auto Out = compileAndRun(*CSrc + mainHarness(S), {}, {avx512RuntimeDir()});
  if (!Out || Out->size() < 4) {
    std::fprintf(stderr, "harness failed: %s\n",
                 Out ? "bad output" : Out.error().str().c_str());
    return 1;
  }
  bool Ok = (*Out)[0] == "1";
  double Flops = 2.0 * S.macs();
  double GN = Flops / std::atof((*Out)[1].c_str()) * 1e-9;
  double GT = Flops / std::atof((*Out)[2].c_str()) * 1e-9;
  double GE = Flops / std::atof((*Out)[3].c_str()) * 1e-9;
  printRow({"impl", "GFLOP/s", "vs tuned", "check"}, {10, 10, 10, 6});
  char Buf[3][32];
  std::snprintf(Buf[0], 32, "%6.2f", GN);
  std::snprintf(Buf[1], 32, "%6.2f", GT);
  std::snprintf(Buf[2], 32, "%6.2f", GE);
  char Pct[2][32];
  std::snprintf(Pct[0], 32, "%5.0f%%", 100.0 * GN / GT);
  std::snprintf(Pct[1], 32, "%5.0f%%", 100.0 * GE / GT);
  printRow({"naive", Buf[0], Pct[0], "ok"}, {10, 10, 10, 6});
  printRow({"tuned", Buf[1], "100%", "ok"}, {10, 10, 10, 6});
  printRow({"Exo", Buf[2], Pct[1], Ok ? "ok" : "FAIL"}, {10, 10, 10, 6});
  return Ok ? 0 : 1;
}
