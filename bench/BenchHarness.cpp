//===- bench/BenchHarness.cpp ----------------------------------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "analysis/EffectCache.h"
#include "smt/QueryCache.h"
#include "smt/Solver.h"
#include "smt/Term.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unistd.h>
#include <sstream>

using namespace exo;
using namespace exo::bench;

#ifndef EXO_SOURCE_DIR
#define EXO_SOURCE_DIR "."
#endif

std::string exo::bench::gemminiRuntimeDir() {
  return std::string(EXO_SOURCE_DIR) + "/src/hwlibs/gemmini/runtime";
}

std::string exo::bench::avx512RuntimeDir() {
  return std::string(EXO_SOURCE_DIR) + "/src/hwlibs/avx512/runtime";
}

Expected<std::vector<std::string>>
exo::bench::compileAndRun(const std::string &CSource,
                          const std::vector<std::string> &ExtraSources,
                          const std::vector<std::string> &IncludeDirs,
                          const std::string &ExtraCFlags) {
  static int Counter = 0;
  std::string Dir = "/tmp/exocc_bench";
  (void)std::system(("mkdir -p " + Dir).c_str());
  std::string Tag = std::to_string(getpid()) + "_" + std::to_string(Counter++);
  std::string CPath = Dir + "/gen_" + Tag + ".c";
  std::string Bin = Dir + "/gen_" + Tag + ".bin";
  std::string OutPath = Dir + "/gen_" + Tag + ".out";
  std::string ErrPath = Dir + "/gen_" + Tag + ".err";
  {
    std::ofstream F(CPath);
    F << CSource;
  }
  std::string Cmd = "cc -O2 -march=native -std=gnu11 " + ExtraCFlags + " ";
  for (const std::string &I : IncludeDirs)
    Cmd += "-I" + I + " ";
  Cmd += CPath + " ";
  for (const std::string &S : ExtraSources)
    Cmd += S + " ";
  Cmd += "-lm -o " + Bin + " 2> " + ErrPath;
  if (std::system(Cmd.c_str()) != 0) {
    std::ifstream E(ErrPath);
    std::stringstream SS;
    SS << E.rdbuf();
    return makeError(Error::Kind::Internal,
                     "C compilation failed:\n" + SS.str());
  }
  if (std::system((Bin + " > " + OutPath).c_str()) != 0)
    return makeError(Error::Kind::Internal, "generated binary failed");
  std::ifstream In(OutPath);
  std::vector<std::string> Tokens;
  std::string T;
  while (In >> T)
    Tokens.push_back(T);
  return Tokens;
}

std::string exo::bench::solverStatsJson() {
  smt::Solver::Stats S = smt::solverGlobalStats();
  smt::QueryCacheStats Q = smt::solverQueryCacheStats();
  analysis::EffectCacheStats E = analysis::effectCacheStats();
  smt::TermInternerStats T = smt::termInternerStats();
  std::ostringstream O;
  O << "{\n"
    << "  \"solver\": {\"queries\": " << S.NumQueries
    << ", \"unknown\": " << S.NumUnknown
    << ", \"unknown_budget\": " << S.NumUnknownBudget
    << ", \"unknown_structural\": " << S.NumUnknownStructural
    << ", \"unknown_timeout\": " << S.NumUnknownTimeout
    << ", \"cache_hits\": " << S.CacheHits
    << ", \"cache_misses\": " << S.CacheMisses
    << ", \"cooper_literals\": " << S.NumLiterals
    << ", \"cooper_reorders\": " << S.CooperReorders
    << ", \"cooper_early_exits\": " << S.CooperEarlyExits << "},\n"
    << "  \"simplify\": {\"decided\": " << S.SimplifyDecided
    << ", \"const_fold_hits\": " << S.SimplifyConstFoldHits
    << ", \"const_fold_misses\": " << S.SimplifyConstFoldMisses
    << ", \"eq_subst_hits\": " << S.SimplifyEqSubstHits
    << ", \"eq_subst_misses\": " << S.SimplifyEqSubstMisses
    << ", \"interval_hits\": " << S.SimplifyIntervalHits
    << ", \"interval_misses\": " << S.SimplifyIntervalMisses
    << ", \"fastpath_hits\": " << S.FastPathHits
    << ", \"fastpath_misses\": " << S.FastPathMisses << "},\n"
    << "  \"query_cache\": {\"hits\": " << Q.Hits
    << ", \"misses\": " << Q.Misses << ", \"insertions\": " << Q.Insertions
    << ", \"evictions\": " << Q.Evictions
    << ", \"uncacheable\": " << Q.Uncacheable << ", \"size\": " << Q.Size
    << "},\n"
    << "  \"effect_cache\": {\"hits\": " << E.Hits
    << ", \"misses\": " << E.Misses << ", \"uncacheable\": " << E.Uncacheable
    << ", \"evictions\": " << E.Evictions << ", \"size\": " << E.Size
    << "},\n"
    << "  \"term_interner\": {\"hits\": " << T.Hits
    << ", \"misses\": " << T.Misses << ", \"flushes\": " << T.Flushes
    << ", \"live\": " << T.Live << "}\n"
    << "}\n";
  return O.str();
}

bool exo::bench::writeSolverStatsJson(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << solverStatsJson();
  return static_cast<bool>(Out);
}

void exo::bench::printRow(const std::vector<std::string> &Cells,
                          const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I < Cells.size(); ++I) {
    int W = I < Widths.size() ? Widths[I] : 12;
    std::string C = Cells[I];
    if (static_cast<int>(C.size()) < W)
      C += std::string(W - C.size(), ' ');
    Line += C + " ";
  }
  std::printf("%s\n", Line.c_str());
}
