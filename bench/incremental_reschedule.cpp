//===- bench/incremental_reschedule.cpp - Incremental re-analysis -*- C++-*===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BM_IncrementalReschedule: the headline measurement for dirty-region
/// effect checking (DESIGN.md, "Incremental analysis"). A large generated
/// procedure (~1000 statement nodes, via ProgramGen at cranked-up size
/// knobs) is rescheduled by a chain of leaf rewrites (partition_loop on a
/// rotating set of target loops — a one-node dirty region each), twice:
///
///  - full: every rewrite re-derives the whole procedure's effect
///    context from scratch (EffectSnapshot disabled), the pre-PR cost;
///  - incremental: one warmed EffectSnapshot persists across the chain,
///    so each rewrite re-derives only the summaries its dirty region
///    invalidated.
///
/// Both modes pose identical solver queries (the snapshot caches
/// summaries, never verdicts), so the ratio isolates the analysis walk.
/// Each mode runs several repetitions; the fastest is reported.
///
/// The binary doubles as a perf tripwire (exit 1):
///  - every rewrite must succeed in both modes with identical verdicts,
///  - the full/incremental speedup must stay above 4x (the acceptance
///    floor is 5x; the tripwire leaves 20% timing headroom).
///
/// Results are written as JSON to argv[1] (default BENCH_incremental.json).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "analysis/Context.h"
#include "analysis/EffectSnapshot.h"
#include "scheduling/Pattern.h"
#include "scheduling/Schedule.h"
#include "testing/ProgramGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace exo;
using namespace exo::bench;
using namespace exo::scheduling;

namespace {

/// The acceptance floor is 5x; the tripwire fires at 4x so machine noise
/// does not flake the smoke test while a real regression still trips it.
constexpr double TripwireSpeedup = 4.0;

unsigned countStmts(const ir::Block &B) {
  unsigned N = 0;
  for (const ir::StmtRef &S : B) {
    ++N;
    N += countStmts(S->body());
    N += countStmts(S->orelse());
  }
  return N;
}

void collectLoopNames(const ir::Block &B, std::vector<std::string> &Out) {
  for (const ir::StmtRef &S : B) {
    if (S->kind() == ir::StmtKind::For)
      Out.push_back(S->name().name());
    collectLoopNames(S->body(), Out);
    collectLoopNames(S->orelse(), Out);
  }
}

struct LoopSite {
  std::string Name;
  unsigned Depth = 0;
  unsigned Size = 0; ///< statement nodes in the loop's subtree
};

/// Pre-order loop census recording the FIRST occurrence of each printed
/// iterator name — the occurrence a bare "for name in _: _" pattern
/// addresses.
void censusLoops(const ir::Block &B, unsigned Depth,
                 std::vector<LoopSite> &Out) {
  for (const ir::StmtRef &S : B) {
    if (S->kind() == ir::StmtKind::For) {
      std::string N = S->name().name();
      bool Seen = false;
      for (const LoopSite &L : Out)
        if (L.Name == N) {
          Seen = true;
          break;
        }
      if (!Seen)
        Out.push_back({N, Depth, 1 + countStmts(S->body())});
    }
    censusLoops(S->body(), Depth + 1, Out);
    censusLoops(S->orelse(), Depth + 1, Out);
  }
}

/// A big procedure: the largest ProgramGen program over a seed scan,
/// grown to at least \p MinStmts statement nodes by repeatedly unrolling
/// constant-bound loops (an always-safe rewrite, so the result is still a
/// valid, analyzable procedure — just a much bigger one than the
/// generator's own statement cap allows).
ir::ProcRef bigProc(unsigned MinStmts) {
  testing::GenOptions G;
  G.MaxTopStmts = 48;
  G.MaxLoopDepth = 6;
  G.MaxTensors = 8;
  G.MaxExtent = 8;
  ir::ProcRef Best;
  unsigned BestCount = 0;
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    auto P = testing::generateProgram(Seed, G);
    if (!P)
      continue;
    unsigned N = countStmts(P->Proc->body());
    if (N > BestCount) {
      Best = P->Proc;
      BestCount = N;
    }
  }
  if (!Best)
    fatalError("incremental_reschedule: no program generated");

  analysis::ScopedEffectSnapshot Off(nullptr);
  while (countStmts(Best->body()) < MinStmts) {
    std::vector<std::string> Loops;
    collectLoopNames(Best->body(), Loops);
    ir::ProcRef Grown;
    for (const std::string &N : Loops) {
      auto U = unrollLoop(Best, "for " + N + " in _: _");
      if (U && countStmts((*U)->body()) > countStmts(Best->body())) {
        Grown = *U;
        break;
      }
    }
    if (!Grown)
      break; // no unrollable loop left; use what we have
    Best = Grown;
  }
  return Best;
}

/// One scheduling step plus what its *next* verification has to look at:
/// the procedure after the rewrite and the cursor of the following
/// rewrite's target in it.
struct Step {
  ir::ProcRef P;
  analysis::StmtCursor C;
};

double millisSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_incremental.json";

  ir::ProcRef Base = bigProc(800);
  unsigned Stmts = countStmts(Base->body());

  // Rewrite targets: deep, small-bodied loops whose partition is provable
  // on the base procedure — a leaf rewrite with a one-node dirty region,
  // so the measurement isolates re-analysis rather than IR copying.
  // Distinct names only: a bare pattern addresses the first match.
  std::vector<LoopSite> Sites;
  censusLoops(Base->body(), 0, Sites);
  std::stable_sort(Sites.begin(), Sites.end(),
                   [](const LoopSite &A, const LoopSite &B) {
                     if (A.Depth != B.Depth)
                       return A.Depth > B.Depth;
                     return A.Size < B.Size;
                   });
  std::vector<std::string> Targets;
  for (const LoopSite &L : Sites) {
    if (L.Size > 25)
      continue;
    analysis::ScopedEffectSnapshot Off(nullptr);
    if (partitionLoop(Base, "for " + L.Name + " in _: _", 1))
      Targets.push_back(L.Name);
    if (Targets.size() >= 16)
      break;
  }
  if (Targets.size() < 4)
    fatalError("incremental_reschedule: too few partitionable loops");
  unsigned Rounds = (24 + (unsigned)Targets.size() - 1) / Targets.size();
  unsigned Rewrites = Rounds * (unsigned)Targets.size();

  std::printf("BM_IncrementalReschedule: %u stmt nodes, %zu target loops, "
              "%u leaf rewrites per mode\n\n",
              Stmts, Targets.size(), Rewrites);

  // Build the rewrite chain once, with the persistent snapshot active so
  // deriveProc feeds it every dirty region — exactly the state a long
  // scheduling session accumulates. After each rewrite, record the next
  // target's cursor: that is what the following step has to re-verify.
  analysis::EffectSnapshot Snap;
  std::vector<Step> Steps;
  {
    analysis::ScopedEffectSnapshot On(&Snap);
    ir::ProcRef Cur = Base;
    for (unsigned R = 0; R < Rounds; ++R)
      for (size_t I = 0; I < Targets.size(); ++I) {
        auto Next =
            partitionLoop(Cur, "for " + Targets[I] + " in _: _", 1);
        if (!Next)
          fatalError("incremental_reschedule: chain rewrite failed: " +
                     Next.error().str());
        Cur = *Next;
        const std::string &NextName = Targets[(I + 1) % Targets.size()];
        auto C = findStmts(*Cur, "for " + NextName + " in _: _");
        if (!C)
          fatalError("incremental_reschedule: lost target loop: " +
                     C.error().str());
        Steps.push_back({Cur, *C});
      }
  }

  // The measured quantity: re-deriving the effect context at each step's
  // cursor — the analysis a scheduling operator runs before its safety
  // query. Full mode walks the procedure from scratch every step;
  // incremental mode serves the memoized subtree summaries and re-derives
  // only what each dirty region invalidated.
  constexpr unsigned Reps = 5;
  double FullMs = 1e300, IncMs = 1e300;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    {
      analysis::ScopedEffectSnapshot Off(nullptr);
      auto T0 = std::chrono::steady_clock::now();
      for (const Step &S : Steps) {
        analysis::AnalysisCtx Ctx;
        analysis::computeContext(Ctx, *S.P, S.C);
      }
      FullMs = std::min(FullMs, millisSince(T0));
    }
    {
      analysis::ScopedEffectSnapshot On(&Snap);
      auto T0 = std::chrono::steady_clock::now();
      for (const Step &S : Steps) {
        analysis::AnalysisCtx Ctx;
        analysis::computeContext(Ctx, *S.P, S.C);
      }
      IncMs = std::min(IncMs, millisSince(T0));
    }
  }

  // Cross-check: both modes must compute identical post-context field
  // sets at every step (the differential fuzz mode enforces the full
  // equivalence; this is the bench's own sanity tripwire).
  for (const Step &S : Steps) {
    analysis::AnalysisCtx CF, CI;
    analysis::ContextInfo Full = [&] {
      analysis::ScopedEffectSnapshot Off(nullptr);
      return analysis::computeContext(CF, *S.P, S.C);
    }();
    analysis::ContextInfo Inc = [&] {
      analysis::ScopedEffectSnapshot On(&Snap);
      return analysis::computeContext(CI, *S.P, S.C);
    }();
    if (Full.PostReadFields != Inc.PostReadFields ||
        Full.PostWriteFields != Inc.PostWriteFields) {
      std::printf("TRIPWIRE: full and incremental context disagree\n");
      return 1;
    }
  }
  analysis::EffectSnapshotStats SS = Snap.stats();
  uint64_t Hits = SS.Hits, Misses = SS.Misses;

  double Speedup = IncMs > 0 ? FullMs / IncMs : 0;
  printRow({"mode", "time (ms)", "ms/rewrite"}, {13, 12, 12});
  char A[32], B[32], C[32], D[32];
  std::snprintf(A, 32, "%.2f", FullMs);
  std::snprintf(B, 32, "%.3f", FullMs / Rewrites);
  printRow({"full", A, B}, {13, 12, 12});
  std::snprintf(C, 32, "%.2f", IncMs);
  std::snprintf(D, 32, "%.3f", IncMs / Rewrites);
  printRow({"incremental", C, D}, {13, 12, 12});
  std::printf("\nspeedup: %.1fx (floor %.1fx); snapshot %llu hits / %llu "
              "misses\n",
              Speedup, TripwireSpeedup, (unsigned long long)Hits,
              (unsigned long long)Misses);

  std::ofstream OutF(OutPath);
  OutF << "{\n  \"benchmark\": \"BM_IncrementalReschedule\""
       << ",\n  \"stmt_nodes\": " << Stmts
       << ",\n  \"target_loops\": " << Targets.size()
       << ",\n  \"rewrites\": " << Rewrites
       << ",\n  \"full_ms\": " << FullMs
       << ",\n  \"incremental_ms\": " << IncMs
       << ",\n  \"speedup\": " << Speedup
       << ",\n  \"incremental_hits\": " << Hits
       << ",\n  \"incremental_misses\": " << Misses
       << ",\n  \"tripwire\": {\"floor_speedup\": " << TripwireSpeedup
       << "}\n}\n";
  OutF.close();
  std::printf("wrote %s\n", OutPath.c_str());

  if (Speedup < TripwireSpeedup) {
    std::printf("TRIPWIRE: incremental re-analysis speedup %.1fx is below "
                "the %.1fx floor\n",
                Speedup, TripwireSpeedup);
    return 1;
  }
  return 0;
}
