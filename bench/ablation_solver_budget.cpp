//===- bench/ablation_solver_budget.cpp - Solver budget ablation -*- C++-*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the SMT-lite solver's literal budget (DESIGN.md): the
/// paper relies on Z3; our in-tree Cooper-elimination solver degrades to
/// *Unknown* when its budget runs out, and every scheduling operator
/// fails safe on Unknown. This sweep shows at which budget the full
/// Gemmini matmul pipeline starts succeeding and how scheduling time
/// scales with the budget, with the Unknown verdicts broken down into
/// budget exhaustion (a bigger budget may fix it) vs structural overflow
/// (genuine non-quasi-affine fallout no budget will fix). Each row runs
/// with cleared caches so the per-budget numbers are comparable; the
/// cache columns then show how much of the row's work was memoized
/// within the row itself.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "analysis/EffectCache.h"
#include "apps/GemminiMatmul.h"
#include "smt/QueryCache.h"
#include "smt/Simplify.h"
#include "smt/Solver.h"

#include <chrono>
#include <cstdio>

using namespace exo;
using namespace exo::bench;

int main() {
  std::printf("Ablation: solver literal budget vs scheduling success "
              "(Gemmini matmul 128^3 pipeline)\n");
  const uint64_t Budgets[] = {100,     1000,    10'000,   50'000,
                              200'000, 500'000, 2'000'000};
  // Two sweeps: preprocessing pipeline off, then on. The success
  // threshold shifts left with the pipeline enabled because most
  // containment/disjointness obligations are decided before Cooper ever
  // charges a literal (see EXPERIMENTS.md).
  for (bool Pipeline : {false, true}) {
  std::printf("\n--- preprocessing pipeline %s ---\n\n",
              Pipeline ? "ON" : "OFF");
  smt::SimplifyConfig Cfg;
  if (!Pipeline) {
    Cfg.ConstFold = Cfg.EqSubst = Cfg.IntervalProp = false;
    Cfg.CheapVarOrder = Cfg.EffectFastPath = false;
  }
  smt::setSimplifyConfig(Cfg);
  printRow({"budget", "pipeline", "time (ms)", "unk(budget)", "unk(struct)",
            "cache hits", "first failing step"},
           {10, 9, 10, 11, 11, 10, 40});
  for (uint64_t Budget : Budgets) {
    smt::setDefaultMaxLiterals(Budget);
    // Fresh caches per row: a verdict memoized under one budget must not
    // mask the next row's budget sensitivity (Unknown is never cached, but
    // Yes/No hits would hide the solve-time scaling).
    smt::clearSolverQueryCache();
    analysis::clearEffectCache();
    smt::resetSolverGlobalStats();
    auto T0 = std::chrono::steady_clock::now();
    auto K = apps::buildGemminiMatmul(128, 128, 128);
    auto T1 = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(T1 - T0).count();
    smt::Solver::Stats S = smt::solverGlobalStats();
    char BBuf[32], TBuf[32], UB[32], US[32], CH[32];
    std::snprintf(BBuf, 32, "%llu", (unsigned long long)Budget);
    std::snprintf(TBuf, 32, "%.1f", Ms);
    std::snprintf(UB, 32, "%llu", (unsigned long long)S.NumUnknownBudget);
    std::snprintf(US, 32, "%llu", (unsigned long long)S.NumUnknownStructural);
    std::snprintf(CH, 32, "%llu", (unsigned long long)S.CacheHits);
    printRow({BBuf, K ? "ok" : "FAILS", TBuf, UB, US, CH,
              K ? "-" : K.error().message().substr(0, 40)},
             {10, 9, 10, 11, 11, 10, 40});
  }
  }
  smt::setSimplifyConfig(smt::SimplifyConfig());
  smt::setDefaultMaxLiterals(2'000'000);
  std::printf("\nSafety is preserved at every budget: an exhausted solver "
              "rejects the rewrite\ninstead of admitting it (§5: analyses "
              "may approximate, but only toward 'no').\n");
  std::printf("\nInstrumentation snapshot (last row):\n%s",
              solverStatsJson().c_str());
  return 0;
}
