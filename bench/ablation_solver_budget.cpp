//===- bench/ablation_solver_budget.cpp - Solver budget ablation -*- C++-*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the SMT-lite solver's literal budget (DESIGN.md): the
/// paper relies on Z3; our in-tree Cooper-elimination solver degrades to
/// *Unknown* when its budget runs out, and every scheduling operator
/// fails safe on Unknown. This sweep shows at which budget the full
/// Gemmini matmul pipeline starts succeeding and how scheduling time
/// scales with the budget.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/GemminiMatmul.h"
#include "smt/Solver.h"

#include <chrono>
#include <cstdio>

using namespace exo;
using namespace exo::bench;

int main() {
  std::printf("Ablation: solver literal budget vs scheduling success "
              "(Gemmini matmul 128^3 pipeline)\n\n");
  printRow({"budget", "pipeline", "time (ms)", "first failing step"},
           {10, 9, 10, 40});
  const uint64_t Budgets[] = {100,     1000,    10'000,   50'000,
                              200'000, 500'000, 2'000'000};
  for (uint64_t Budget : Budgets) {
    smt::setDefaultMaxLiterals(Budget);
    auto T0 = std::chrono::steady_clock::now();
    auto K = apps::buildGemminiMatmul(128, 128, 128);
    auto T1 = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(T1 - T0).count();
    char BBuf[32], TBuf[32];
    std::snprintf(BBuf, 32, "%llu", (unsigned long long)Budget);
    std::snprintf(TBuf, 32, "%.1f", Ms);
    printRow({BBuf, K ? "ok" : "FAILS", TBuf,
              K ? "-" : K.error().message().substr(0, 40)},
             {10, 9, 10, 40});
  }
  smt::setDefaultMaxLiterals(2'000'000);
  std::printf("\nSafety is preserved at every budget: an exhausted solver "
              "rejects the rewrite\ninstead of admitting it (§5: analyses "
              "may approximate, but only toward 'no').\n");
  return 0;
}
