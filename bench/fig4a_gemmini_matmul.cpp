//===- bench/fig4a_gemmini_matmul.cpp - Fig. 4a reproduction ---*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4a: MATMUL utilization on the Gemmini accelerator
/// (as a percentage of peak MACs) for ResNet-50-derived shapes, comparing
///
///   Old-lib  — the handwritten-library schedule (configuration
///              instructions re-issued for every tile),
///   Exo-lib  — the Exo schedule with configuration hoisted,
///   Hardware — the same instruction stream on the dynamically-scheduled
///              hardware loop unrollers (simulator HW mode).
///
/// Paper: Exo ≈ 3.5x Old-lib on average, and ≈ 67 % of Hardware.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/GemminiMatmul.h"
#include "backend/CodeGen.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace exo;
using namespace exo::bench;

namespace {

struct Shape {
  int64_t N, M, K;
};

/// ResNet-50 (batch 4) GEMM shapes rounded to multiples of 16 — the
/// paper's Fig. 4a x-axis (N x M x K).
const Shape Shapes[] = {
    {12544, 64, 64},  {3136, 64, 256},  {3136, 128, 512},
    {784, 256, 512},  {784, 512, 1024}, {192, 512, 2048},
    {192, 1024, 256}, {3136, 256, 64},
};

std::string mainHarness(const Shape &S) {
  char Buf[4096];
  std::snprintf(Buf, sizeof(Buf), R"(
#include <stdio.h>
#include "gemmini_sim.h"
enum { N = %lld, M = %lld, K = %lld };
static float A[N * K], B[K * M], C[N * M], Ref[N * M];
int main(void) {
  unsigned s = 1u;
  for (long i = 0; i < (long)N * K; i++) {
    s = s * 1103515245u + 12345u;
    A[i] = (float)((s >> 16) %% 7) - 3.0f;
  }
  for (long i = 0; i < (long)K * M; i++) {
    s = s * 1103515245u + 12345u;
    B[i] = (float)((s >> 16) %% 5) - 2.0f;
  }
  /* reference on a K-slice sample for correctness */
  for (long i = 0; i < 16; i++)
    for (long j = 0; j < 16; j++) {
      float acc = 0.0f;
      for (long k = 0; k < K; k++)
        acc += A[i * K + k] * B[k * M + j];
      Ref[i * M + j] = acc;
    }

  for (long i = 0; i < (long)N * M; i++) C[i] = 0.0f;
  gemmini_reset(EXO_GEMMINI_MODE_SW);
  gemmini_matmul_old(A, B, C);
  unsigned long long old_cyc = gemmini_cycles();
  int ok = 1;
  for (long i = 0; i < 16 && ok; i++)
    for (long j = 0; j < 16; j++)
      if (C[i * M + j] < Ref[i * M + j] - 1e-2f ||
          C[i * M + j] > Ref[i * M + j] + 1e-2f) { ok = 0; break; }

  for (long i = 0; i < (long)N * M; i++) C[i] = 0.0f;
  gemmini_reset(EXO_GEMMINI_MODE_SW);
  gemmini_matmul_exo(A, B, C);
  unsigned long long exo_cyc = gemmini_cycles();
  for (long i = 0; i < 16 && ok; i++)
    for (long j = 0; j < 16; j++)
      if (C[i * M + j] < Ref[i * M + j] - 1e-2f ||
          C[i * M + j] > Ref[i * M + j] + 1e-2f) { ok = 0; break; }

  for (long i = 0; i < (long)N * M; i++) C[i] = 0.0f;
  gemmini_reset(EXO_GEMMINI_MODE_HW);
  gemmini_matmul_exo(A, B, C);
  unsigned long long hw_cyc = gemmini_cycles();

  printf("%%d %%llu %%llu %%llu\n", ok, old_cyc, exo_cyc, hw_cyc);
  return 0;
}
)",
                (long long)S.N, (long long)S.M, (long long)S.K);
  return Buf;
}

} // namespace

int main() {
  std::printf("Figure 4a: Gemmini MATMUL utilization (%% of peak MACs)\n");
  std::printf("paper shape: Old-lib 14-20%%, Exo-lib 40-79%%, Hardware "
              "62-98%%; Exo ~3.5x Old-lib, ~67%% of Hardware\n\n");
  printRow({"N x M x K", "Old-lib", "Exo-lib", "Hardware", "Exo/Old",
            "Exo/HW", "check"},
           {18, 9, 9, 9, 9, 9, 6});

  double GeoSpeedup = 1.0, GeoFrac = 1.0;
  int Count = 0;
  for (const Shape &S : Shapes) {
    auto K = apps::buildGemminiMatmul(S.N, S.M, S.K);
    if (!K) {
      std::fprintf(stderr, "schedule failed: %s\n", K.error().str().c_str());
      return 1;
    }
    auto CSrc = backend::generateC({K->OldLib, K->ExoLib});
    if (!CSrc) {
      std::fprintf(stderr, "codegen failed: %s\n",
                   CSrc.error().str().c_str());
      return 1;
    }
    auto Out = compileAndRun(*CSrc + mainHarness(S),
                             {gemminiRuntimeDir() + "/gemmini_sim.c"},
                             {gemminiRuntimeDir()});
    if (!Out || Out->size() < 4) {
      std::fprintf(stderr, "harness failed: %s\n",
                   Out ? "bad output" : Out.error().str().c_str());
      return 1;
    }
    bool Ok = (*Out)[0] == "1";
    double OldCyc = std::atof((*Out)[1].c_str());
    double ExoCyc = std::atof((*Out)[2].c_str());
    double HwCyc = std::atof((*Out)[3].c_str());
    double Macs = double(S.N) * S.M * S.K;
    auto Util = [&](double Cyc) { return 100.0 * Macs / (256.0 * Cyc); };
    char Row[7][32];
    std::snprintf(Row[0], 32, "%lldx%lldx%lld", (long long)S.N,
                  (long long)S.M, (long long)S.K);
    std::snprintf(Row[1], 32, "%5.1f%%", Util(OldCyc));
    std::snprintf(Row[2], 32, "%5.1f%%", Util(ExoCyc));
    std::snprintf(Row[3], 32, "%5.1f%%", Util(HwCyc));
    std::snprintf(Row[4], 32, "%4.2fx", OldCyc / ExoCyc);
    std::snprintf(Row[5], 32, "%4.0f%%", 100.0 * HwCyc / ExoCyc);
    printRow({Row[0], Row[1], Row[2], Row[3], Row[4], Row[5],
              Ok ? "ok" : "FAIL"},
             {18, 9, 9, 9, 9, 9, 6});
    GeoSpeedup *= OldCyc / ExoCyc;
    GeoFrac *= HwCyc / ExoCyc;
    ++Count;
    if (!Ok)
      return 1;
  }
  std::printf("\ngeomean Exo-lib speedup over Old-lib: %.2fx (paper: "
              "~3.5x)\n",
              std::pow(GeoSpeedup, 1.0 / Count));
  std::printf("geomean Exo-lib fraction of Hardware:  %.0f%% (paper: "
              "~67%%)\n",
              100.0 * std::pow(GeoFrac, 1.0 / Count));
  return 0;
}
