//===- bench/BenchHarness.h - Figure-reproduction helpers ------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-figure benchmark binaries: each harness
/// generates C from the scheduled Exo procedures, compiles it together
/// with the simulator runtimes using the system C compiler, runs the
/// resulting program, and parses the numbers it prints back.
///
//===----------------------------------------------------------------------===//

#ifndef EXO_BENCH_BENCHHARNESS_H
#define EXO_BENCH_BENCHHARNESS_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace exo {
namespace bench {

/// Compiles \p CSource (already containing any #includes it needs) plus
/// \p ExtraSources and runs the binary; returns the whitespace-separated
/// tokens it printed to stdout.
Expected<std::vector<std::string>>
compileAndRun(const std::string &CSource,
              const std::vector<std::string> &ExtraSources,
              const std::vector<std::string> &IncludeDirs,
              const std::string &ExtraCFlags = "");

/// Repository-relative runtime directories (set via compile definitions).
std::string gemminiRuntimeDir();
std::string avx512RuntimeDir();

/// Pretty table-row printing: pads each cell to the column width.
void printRow(const std::vector<std::string> &Cells,
              const std::vector<int> &Widths);

/// A JSON object snapshotting the solver/caching instrumentation: the
/// process-wide aggregate Solver::Stats, the query-cache counters, the
/// effect-cache counters, and the term-interner counters. Bench harnesses
/// append this to their output so the bench trajectory records cache
/// behaviour alongside timings.
std::string solverStatsJson();

/// Writes solverStatsJson() to \p Path; returns false on I/O failure.
bool writeSolverStatsJson(const std::string &Path);

} // namespace bench
} // namespace exo

#endif // EXO_BENCH_BENCHHARNESS_H
