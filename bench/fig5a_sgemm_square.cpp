//===- bench/fig5a_sgemm_square.cpp - Fig. 5a reproduction -----*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 5a: SGEMM GFLOP/s on square matrices. The paper
/// compares Exo against MKL and OpenBLAS on an AVX-512 core; here the
/// baselines are a naive three-loop C GEMM and a hand-blocked,
/// restrict-qualified C GEMM ("tuned", standing in for OpenBLAS). The
/// expected shape: Exo ≈ tuned ≫ naive, roughly flat across sizes.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/Sgemm.h"
#include "backend/CodeGen.h"

#include <cstdio>

using namespace exo;
using namespace exo::bench;

namespace {

const int64_t Sizes[] = {192, 384, 768, 1152, 1536};

/// The baselines plus timing/validation harness. The "tuned" baseline is
/// a cache-blocked ikj kernel the C compiler vectorizes well.
const char *HarnessCommon = R"(
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

static double now_s(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec + 1e-9 * ts.tv_nsec;
}

static void naive_gemm(long M, long N, long K, const float *A,
                       const float *B, float *C) {
  for (long i = 0; i < M; i++)
    for (long j = 0; j < N; j++) {
      float acc = C[i * N + j];
      for (long k = 0; k < K; k++)
        acc += A[i * K + k] * B[k * N + j];
      C[i * N + j] = acc;
    }
}

static void tuned_gemm(long M, long N, long K, const float *restrict A,
                       const float *restrict B, float *restrict C) {
  enum { BI = 64, BK = 64 };
  for (long ib = 0; ib < M; ib += BI)
    for (long kb = 0; kb < K; kb += BK) {
      long imax = ib + BI < M ? ib + BI : M;
      long kmax = kb + BK < K ? kb + BK : K;
      for (long i = ib; i < imax; i++)
        for (long k = kb; k < kmax; k++) {
          float a = A[i * K + k];
          const float *restrict Br = &B[k * N];
          float *restrict Cr = &C[i * N];
          for (long j = 0; j < N; j++)
            Cr[j] += a * Br[j];
        }
    }
}
)";

std::string mainHarness(int64_t Dim) {
  char Buf[4096];
  std::snprintf(Buf, sizeof(Buf), R"(
enum { SZ = %lld };
static float A[SZ * SZ], B[SZ * SZ], C[SZ * SZ], Ref[SZ * SZ];
typedef void (*gemm_fn)(float *, float *, float *);
static double bench(gemm_fn fn, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; r++) {
    memset(C, 0, sizeof(C));
    double t0 = now_s();
    fn(A, B, C);
    double t = now_s() - t0;
    if (t < best) best = t;
  }
  return best;
}
static void run_naive(float *a, float *b, float *c) {
  naive_gemm(SZ, SZ, SZ, a, b, c);
}
static void run_tuned(float *a, float *b, float *c) {
  tuned_gemm(SZ, SZ, SZ, a, b, c);
}
static void run_exo(float *a, float *b, float *c) { exo_sgemm(a, b, c); }
int main(void) {
  unsigned s = 1u;
  for (long i = 0; i < (long)SZ * SZ; i++) {
    s = s * 1103515245u + 12345u;
    A[i] = (float)((s >> 16) %% 1000) / 500.0f - 1.0f;
  }
  for (long i = 0; i < (long)SZ * SZ; i++) {
    s = s * 1103515245u + 12345u;
    B[i] = (float)((s >> 16) %% 1000) / 500.0f - 1.0f;
  }
  int reps = SZ <= 512 ? 3 : 1;
  /* correctness: tuned as reference, spot-check exo */
  memset(Ref, 0, sizeof(Ref));
  tuned_gemm(SZ, SZ, SZ, A, B, Ref);
  memset(C, 0, sizeof(C));
  exo_sgemm(A, B, C);
  int ok = 1;
  for (long i = 0; i < (long)SZ * SZ; i += 37)
    if (C[i] < Ref[i] - 1e-1f - 1e-3f * (Ref[i] < 0 ? -Ref[i] : Ref[i]) ||
        C[i] > Ref[i] + 1e-1f + 1e-3f * (Ref[i] < 0 ? -Ref[i] : Ref[i])) {
      ok = 0;
      break;
    }
  double tn = bench(run_naive, SZ <= 512 ? 2 : 1);
  double tt = bench(run_tuned, reps);
  double te = bench(run_exo, reps);
  printf("%%d %%.6f %%.6f %%.6f\n", ok, tn, tt, te);
  return 0;
}
)",
                (long long)Dim);
  return Buf;
}

} // namespace

int main() {
  std::printf("Figure 5a: SGEMM GFLOP/s on square matrices (M = N = K)\n");
  std::printf("paper shape: Exo within noise of MKL/OpenBLAS (80-95%% of "
              "peak); here vs naive and hand-blocked C baselines\n\n");
  printRow({"size", "naive", "tuned", "Exo", "Exo/tuned", "Exo/naive",
            "check"},
           {6, 9, 9, 9, 10, 10, 6});
  for (int64_t Dim : Sizes) {
    auto K = apps::buildSgemm(Dim, Dim, Dim);
    if (!K) {
      std::fprintf(stderr, "schedule failed: %s\n", K.error().str().c_str());
      return 1;
    }
    auto CSrc = backend::generateC(K->ExoSgemm,
                                   {.Prelude = std::string(HarnessCommon)});
    if (!CSrc) {
      std::fprintf(stderr, "codegen failed: %s\n",
                   CSrc.error().str().c_str());
      return 1;
    }
    auto Out = compileAndRun(*CSrc + mainHarness(Dim), {},
                             {avx512RuntimeDir()});
    if (!Out || Out->size() < 4) {
      std::fprintf(stderr, "harness failed: %s\n",
                   Out ? "bad output" : Out.error().str().c_str());
      return 1;
    }
    bool Ok = (*Out)[0] == "1";
    double Flops = 2.0 * Dim * Dim * Dim;
    double GN = Flops / std::atof((*Out)[1].c_str()) * 1e-9;
    double GT = Flops / std::atof((*Out)[2].c_str()) * 1e-9;
    double GE = Flops / std::atof((*Out)[3].c_str()) * 1e-9;
    char Row[6][32];
    std::snprintf(Row[0], 32, "%lld", (long long)Dim);
    std::snprintf(Row[1], 32, "%6.2f", GN);
    std::snprintf(Row[2], 32, "%6.2f", GT);
    std::snprintf(Row[3], 32, "%6.2f", GE);
    std::snprintf(Row[4], 32, "%5.0f%%", 100.0 * GE / GT);
    std::snprintf(Row[5], 32, "%5.1fx", GE / GN);
    printRow({Row[0], Row[1], Row[2], Row[3], Row[4], Row[5],
              Ok ? "ok" : "FAIL"},
             {6, 9, 9, 9, 10, 10, 6});
    if (!Ok)
      return 1;
  }
  return 0;
}
