//===- bench/fig4b_gemmini_conv.cpp - Fig. 4b reproduction -----*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4b: CONV utilization on Gemmini (% of peak MACs)
/// for the paper's three ResNet-50 layer shapes (output dim x output
/// channels x input channels, 3x3 kernels, batch 4).
///
/// Paper: Old-lib ~25-27 %, Exo ~71-78 %, Hardware ~91-95 %;
/// Exo ≈ 2.9x Old-lib, ≈ 79 % of Hardware.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/Conv.h"
#include "backend/CodeGen.h"

#include <cmath>
#include <cstdio>

using namespace exo;
using namespace exo::bench;
using apps::ConvShape;

namespace {

struct Case {
  ConvShape Shape;
  int64_t RowTile;
};

// out x OC x IC from the paper's x-axis; H = W = out + 2 (3x3, no pad).
const Case Cases[] = {
    {{4, 58, 58, 64, 64}, 14},
    {{4, 30, 30, 128, 128}, 14},
    {{4, 16, 16, 256, 256}, 14},
};

std::string mainHarness(const ConvShape &S) {
  char Buf[8192];
  std::snprintf(Buf, sizeof(Buf), R"(
#include <stdio.h>
#include <stdlib.h>
#include "gemmini_sim.h"
enum { N = %lld, H = %lld, W = %lld, IC = %lld, OC = %lld,
       OH = %lld, OW = %lld };
int main(void) {
  float *x = malloc((size_t)N * H * W * IC * sizeof(float));
  float *w = malloc((size_t)9 * IC * OC * sizeof(float));
  float *y = malloc((size_t)N * OH * OW * OC * sizeof(float));
  unsigned s = 1u;
  for (long i = 0; i < (long)N * H * W * IC; i++) {
    s = s * 1103515245u + 12345u;
    x[i] = (float)((s >> 16) %% 5) - 2.0f;
  }
  for (long i = 0; i < (long)9 * IC * OC; i++) {
    s = s * 1103515245u + 12345u;
    w[i] = (float)((s >> 16) %% 3) - 1.0f;
  }

  /* spot-check reference: one output pixel row */
  float ref[OC];
  for (long oc = 0; oc < OC; oc++) {
    float acc = 0.0f;
    for (long kh = 0; kh < 3; kh++)
      for (long kw = 0; kw < 3; kw++)
        for (long ic = 0; ic < IC; ic++)
          acc += x[((0 * H + kh) * W + kw) * IC + ic] *
                 w[((kh * 3 + kw) * IC + ic) * OC + oc];
    ref[oc] = acc;
  }

  for (long i = 0; i < (long)N * OH * OW * OC; i++) y[i] = 0.0f;
  gemmini_reset(EXO_GEMMINI_MODE_SW);
  gemmini_conv_old(x, w, y);
  unsigned long long old_cyc = gemmini_cycles();
  int ok = 1;
  for (long oc = 0; oc < OC; oc++)
    if (y[oc] < ref[oc] - 1e-1f || y[oc] > ref[oc] + 1e-1f) { ok = 0; break; }

  for (long i = 0; i < (long)N * OH * OW * OC; i++) y[i] = 0.0f;
  gemmini_reset(EXO_GEMMINI_MODE_SW);
  gemmini_conv_exo(x, w, y);
  unsigned long long exo_cyc = gemmini_cycles();
  for (long oc = 0; oc < OC; oc++)
    if (y[oc] < ref[oc] - 1e-1f || y[oc] > ref[oc] + 1e-1f) { ok = 0; break; }

  for (long i = 0; i < (long)N * OH * OW * OC; i++) y[i] = 0.0f;
  gemmini_reset(EXO_GEMMINI_MODE_HW);
  gemmini_conv_exo(x, w, y);
  unsigned long long hw_cyc = gemmini_cycles();

  printf("%%d %%llu %%llu %%llu\n", ok, old_cyc, exo_cyc, hw_cyc);
  free(x); free(w); free(y);
  return 0;
}
)",
                (long long)S.N, (long long)S.H, (long long)S.W,
                (long long)S.IC, (long long)S.OC, (long long)S.oh(),
                (long long)S.ow());
  return Buf;
}

} // namespace

int main() {
  std::printf("Figure 4b: Gemmini CONV utilization (%% of peak MACs)\n");
  std::printf("paper shape: Old-lib ~25%%, Exo ~71-78%%, Hardware ~91-95%%; "
              "Exo ~2.9x Old-lib, ~79%% of Hardware\n\n");
  printRow({"out x OC x IC", "Old-lib", "Exo", "Hardware", "Exo/Old",
            "Exo/HW", "check"},
           {16, 9, 9, 9, 9, 9, 6});

  double GeoSpeedup = 1.0, GeoFrac = 1.0;
  int Count = 0;
  for (const Case &C : Cases) {
    auto K = apps::buildConvGemmini(C.Shape, C.RowTile);
    if (!K) {
      std::fprintf(stderr, "schedule failed: %s\n", K.error().str().c_str());
      return 1;
    }
    auto CSrc = backend::generateC({K->OldLib, K->Scheduled});
    if (!CSrc) {
      std::fprintf(stderr, "codegen failed: %s\n",
                   CSrc.error().str().c_str());
      return 1;
    }
    auto Out = compileAndRun(*CSrc + mainHarness(C.Shape),
                             {gemminiRuntimeDir() + "/gemmini_sim.c"},
                             {gemminiRuntimeDir()});
    if (!Out || Out->size() < 4) {
      std::fprintf(stderr, "harness failed: %s\n",
                   Out ? "bad output" : Out.error().str().c_str());
      return 1;
    }
    bool Ok = (*Out)[0] == "1";
    double OldCyc = std::atof((*Out)[1].c_str());
    double ExoCyc = std::atof((*Out)[2].c_str());
    double HwCyc = std::atof((*Out)[3].c_str());
    double Macs = C.Shape.macs();
    auto Util = [&](double Cyc) { return 100.0 * Macs / (256.0 * Cyc); };
    char Row[6][32];
    std::snprintf(Row[0], 32, "%lldx%lldx%lld", (long long)C.Shape.oh(),
                  (long long)C.Shape.OC, (long long)C.Shape.IC);
    std::snprintf(Row[1], 32, "%5.1f%%", Util(OldCyc));
    std::snprintf(Row[2], 32, "%5.1f%%", Util(ExoCyc));
    std::snprintf(Row[3], 32, "%5.1f%%", Util(HwCyc));
    std::snprintf(Row[4], 32, "%4.2fx", OldCyc / ExoCyc);
    std::snprintf(Row[5], 32, "%4.0f%%", 100.0 * HwCyc / ExoCyc);
    printRow({Row[0], Row[1], Row[2], Row[3], Row[4], Row[5],
              Ok ? "ok" : "FAIL"},
             {16, 9, 9, 9, 9, 9, 6});
    GeoSpeedup *= OldCyc / ExoCyc;
    GeoFrac *= HwCyc / ExoCyc;
    ++Count;
    if (!Ok)
      return 1;
  }
  std::printf("\ngeomean Exo speedup over Old-lib: %.2fx (paper: ~2.9x)\n",
              std::pow(GeoSpeedup, 1.0 / Count));
  std::printf("geomean Exo fraction of Hardware: %.0f%% (paper: ~79%%)\n",
              100.0 * std::pow(GeoFrac, 1.0 / Count));
  return 0;
}
