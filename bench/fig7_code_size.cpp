//===- bench/fig7_code_size.cpp - Fig. 7 reproduction ----------*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7: source-code sizes. For each kernel the table
/// reports the generated C line count, the reference-library line count
/// from the paper, the algorithm statement count, and the number of
/// scheduling directives — the paper's productivity claim is that a few
/// dozen directives on a handful of algorithm statements replace
/// hundreds-to-thousands of handwritten lines.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/Conv.h"
#include "apps/GemminiMatmul.h"
#include "apps/Sgemm.h"
#include "backend/CodeGen.h"
#include "support/StringExtras.h"

#include <cstdio>

using namespace exo;
using namespace exo::bench;

namespace {

unsigned cLines(const ir::ProcRef &P) {
  auto C = backend::generateC(P);
  if (!C)
    fatalError("codegen failed: " + C.error().str());
  return countLines(*C);
}

void row(const char *App, const char *Platform, unsigned Gen,
         const char *Ref, unsigned Alg, unsigned Sched, const char *Paper) {
  char G[16], A[16], S[16];
  std::snprintf(G, 16, "%u", Gen);
  std::snprintf(A, 16, "%u", Alg);
  std::snprintf(S, 16, "%u", Sched);
  printRow({App, Platform, G, Ref, A, S, Paper}, {8, 9, 8, 9, 5, 7, 26});
}

} // namespace

int main() {
  std::printf("Figure 7: source code sizes\n");
  std::printf("C(gen) = lines of generated C;  C(ref) = reference library "
              "size quoted from the paper;\nAlg = algorithm statements;  "
              "Sched = scheduling directives\n\n");
  printRow({"App", "Platform", "C(gen)", "C(ref)", "Alg", "Sched",
            "paper (gen/alg/sched)"},
           {8, 9, 8, 9, 5, 7, 26});

  {
    auto K = apps::buildGemminiMatmul(256, 256, 256);
    if (!K) {
      std::fprintf(stderr, "%s\n", K.error().str().c_str());
      return 1;
    }
    row("MATMUL", "Gemmini", cLines(K->ExoLib), "313", K->AlgStmts,
        K->ExoLibSteps, "462 / 23 / 43");
  }
  {
    auto K = apps::buildConvGemmini({4, 30, 30, 128, 128}, 14);
    if (!K) {
      std::fprintf(stderr, "%s\n", K.error().str().c_str());
      return 1;
    }
    row("CONV", "Gemmini", cLines(K->Scheduled), "450", K->AlgStmts,
        K->ScheduleSteps, "8317 / 26 / 44");
  }
  {
    auto K = apps::buildSgemm(192, 192, 192);
    if (!K) {
      std::fprintf(stderr, "%s\n", K.error().str().c_str());
      return 1;
    }
    row("SGEMM", "x86", cLines(K->ExoSgemm), ">1690", K->AlgStmts,
        K->ScheduleSteps, "846 / 11 / 162");
  }
  {
    auto K = apps::buildConvX86({5, 102, 82, 128, 128});
    if (!K) {
      std::fprintf(stderr, "%s\n", K.error().str().c_str());
      return 1;
    }
    row("CONV", "x86", cLines(K->Scheduled), ">5400", K->AlgStmts,
        K->ScheduleSteps, "102 / 23 / 39");
  }

  std::printf("\nShape to check: a handful of algorithm statements plus a "
              "few dozen directives\nversus hundreds-to-thousands of "
              "reference lines.\n");
  return 0;
}
