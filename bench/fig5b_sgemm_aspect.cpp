//===- bench/fig5b_sgemm_aspect.cpp - Fig. 5b reproduction -----*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 5b: SGEMM throughput at fixed work (K = 512,
/// M·N ≈ 512²) while the output aspect ratio M/N sweeps across five
/// orders of magnitude. The paper's claim: performance stays roughly
/// flat (Exo matches OpenBLAS across aspect ratios, with MKL pulling
/// ahead only at the extremes thanks to extra specialized kernels).
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/Sgemm.h"
#include "backend/CodeGen.h"

#include <cstdio>

using namespace exo;
using namespace exo::bench;

namespace {

struct Case {
  int64_t M, N;
};

// M multiples of 6, N multiples of 64, M*N ≈ 512^2 = 262144.
const Case Cases[] = {
    {66, 4032},  {126, 2048}, {258, 1024}, {510, 512},
    {1026, 256}, {2046, 128}, {4092, 64},
};
const int64_t KDim = 512;

const char *HarnessCommon = R"(
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

static double now_s(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec + 1e-9 * ts.tv_nsec;
}

static void tuned_gemm(long M, long N, long K, const float *restrict A,
                       const float *restrict B, float *restrict C) {
  enum { BI = 64, BK = 64 };
  for (long ib = 0; ib < M; ib += BI)
    for (long kb = 0; kb < K; kb += BK) {
      long imax = ib + BI < M ? ib + BI : M;
      long kmax = kb + BK < K ? kb + BK : K;
      for (long i = ib; i < imax; i++)
        for (long k = kb; k < kmax; k++) {
          float a = A[i * K + k];
          const float *restrict Br = &B[k * N];
          float *restrict Cr = &C[i * N];
          for (long j = 0; j < N; j++)
            Cr[j] += a * Br[j];
        }
    }
}
)";

std::string mainHarness(const Case &C) {
  char Buf[4096];
  std::snprintf(Buf, sizeof(Buf), R"(
enum { M = %lld, N = %lld, K = %lld };
static float A[M * K], B[K * N], Cbuf[M * N], Ref[M * N];
int main(void) {
  unsigned s = 1u;
  for (long i = 0; i < (long)M * K; i++) {
    s = s * 1103515245u + 12345u;
    A[i] = (float)((s >> 16) %% 1000) / 500.0f - 1.0f;
  }
  for (long i = 0; i < (long)K * N; i++) {
    s = s * 1103515245u + 12345u;
    B[i] = (float)((s >> 16) %% 1000) / 500.0f - 1.0f;
  }
  memset(Ref, 0, sizeof(Ref));
  tuned_gemm(M, N, K, A, B, Ref);
  memset(Cbuf, 0, sizeof(Cbuf));
  exo_sgemm(A, B, Cbuf);
  int ok = 1;
  for (long i = 0; i < (long)M * N; i += 41)
    if (Cbuf[i] < Ref[i] - 0.1f || Cbuf[i] > Ref[i] + 0.1f) { ok = 0; break; }

  double bt = 1e30, be = 1e30;
  for (int r = 0; r < 3; r++) {
    memset(Cbuf, 0, sizeof(Cbuf));
    double t0 = now_s();
    tuned_gemm(M, N, K, A, B, Cbuf);
    double t = now_s() - t0;
    if (t < bt) bt = t;
  }
  for (int r = 0; r < 3; r++) {
    memset(Cbuf, 0, sizeof(Cbuf));
    double t0 = now_s();
    exo_sgemm(A, B, Cbuf);
    double t = now_s() - t0;
    if (t < be) be = t;
  }
  printf("%%d %%.6f %%.6f\n", ok, bt, be);
  return 0;
}
)",
                (long long)C.M, (long long)C.N, (long long)KDim);
  return Buf;
}

} // namespace

int main() {
  std::printf("Figure 5b: SGEMM at fixed work, sweeping aspect ratio "
              "M/N (K = 512, M*N ~ 512^2)\n");
  std::printf("paper shape: roughly flat GFLOP/s across ratios "
              "(Exo tracks OpenBLAS)\n\n");
  printRow({"M", "N", "M/N", "tuned GF/s", "Exo GF/s", "Exo/tuned",
            "check"},
           {6, 6, 8, 11, 10, 10, 6});
  for (const Case &C : Cases) {
    auto K = apps::buildSgemm(C.M, C.N, KDim);
    if (!K) {
      std::fprintf(stderr, "schedule failed: %s\n", K.error().str().c_str());
      return 1;
    }
    auto CSrc = backend::generateC(K->ExoSgemm,
                                   {.Prelude = std::string(HarnessCommon)});
    if (!CSrc) {
      std::fprintf(stderr, "codegen failed: %s\n",
                   CSrc.error().str().c_str());
      return 1;
    }
    auto Out = compileAndRun(*CSrc + mainHarness(C), {},
                             {avx512RuntimeDir()});
    if (!Out || Out->size() < 3) {
      std::fprintf(stderr, "harness failed: %s\n",
                   Out ? "bad output" : Out.error().str().c_str());
      return 1;
    }
    bool Ok = (*Out)[0] == "1";
    double Flops = 2.0 * C.M * C.N * KDim;
    double GT = Flops / std::atof((*Out)[1].c_str()) * 1e-9;
    double GE = Flops / std::atof((*Out)[2].c_str()) * 1e-9;
    char Row[6][32];
    std::snprintf(Row[0], 32, "%lld", (long long)C.M);
    std::snprintf(Row[1], 32, "%lld", (long long)C.N);
    std::snprintf(Row[2], 32, "%.3f", double(C.M) / C.N);
    std::snprintf(Row[3], 32, "%7.2f", GT);
    std::snprintf(Row[4], 32, "%7.2f", GE);
    std::snprintf(Row[5], 32, "%5.0f%%", 100.0 * GE / GT);
    printRow({Row[0], Row[1], Row[2], Row[3], Row[4], Row[5],
              Ok ? "ok" : "FAIL"},
             {6, 6, 8, 11, 10, 10, 6});
    if (!Ok)
      return 1;
  }
  return 0;
}
