//===- bench/micro_compiler.cpp - google-benchmark micro suite -*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the compiler itself (not of generated code): how
/// fast are the scheduling operators, their SMT safety checks, effect
/// extraction, parsing, and code generation? The paper's §3.3 argues the
/// rewrite architecture keeps each operator simple — these numbers show
/// the operators are also cheap enough for interactive use.
///
//===----------------------------------------------------------------------===//

#include "analysis/Checks.h"
#include "backend/CodeGen.h"
#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "scheduling/Schedule.h"

#include <benchmark/benchmark.h>

using namespace exo;
using namespace exo::ir;
using namespace exo::scheduling;

namespace {

const char *GemmSrc = R"(
@proc
def gemm(A: R[128, 128], B: R[128, 128], C: R[128, 128]):
    for i in seq(0, 128):
        for j in seq(0, 128):
            for k in seq(0, 128):
                C[i, j] += A[i, k] * B[k, j]
)";

ProcRef gemm() {
  static ProcRef P = *frontend::parseProc(GemmSrc);
  return P;
}

void BM_ParseGemm(benchmark::State &State) {
  for (auto _ : State) {
    auto P = frontend::parseProc(GemmSrc);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseGemm);

void BM_SplitLoop(benchmark::State &State) {
  ProcRef P = gemm();
  for (auto _ : State) {
    auto Q = splitLoop(P, "for i in _: _", 16, "io", "ii",
                       SplitTail::Guard);
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_SplitLoop);

void BM_SplitLoopPerfect(benchmark::State &State) {
  // Includes the divisibility proof.
  ProcRef P = gemm();
  for (auto _ : State) {
    auto Q = splitLoop(P, "for i in _: _", 16, "io", "ii",
                       SplitTail::Perfect);
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_SplitLoopPerfect);

void BM_ReorderLoops(benchmark::State &State) {
  // Includes the full commutativity check (two effect extractions plus
  // an SMT validity query over the flipped iteration pairs).
  ProcRef P = gemm();
  for (auto _ : State) {
    auto Q = reorderLoops(P, "for j in _: _");
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_ReorderLoops);

void BM_StageMem(benchmark::State &State) {
  static ProcRef Tiled = [] {
    ProcRef Q = *splitLoop(gemm(), "for i in _: _", 16, "io", "ii",
                           SplitTail::Perfect);
    return *splitLoop(Q, "for k in _: _", 16, "ko", "ki",
                      SplitTail::Perfect);
  }();
  for (auto _ : State) {
    auto Q = stageMem(Tiled, "for ki in _: _", 1,
                      "A[16 * io : 16 * io + 16, 16 * ko : 16 * ko + 16]",
                      "a_tile");
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_StageMem);

void BM_EffectExtraction(benchmark::State &State) {
  ProcRef P = gemm();
  for (auto _ : State) {
    analysis::AnalysisCtx Ctx;
    analysis::FlowState FS;
    auto E = analysis::extractBlock(Ctx, FS, P->body());
    benchmark::DoNotOptimize(E);
  }
}
BENCHMARK(BM_EffectExtraction);

void BM_SolverTileDisjointness(benchmark::State &State) {
  using namespace exo::smt;
  for (auto _ : State) {
    Solver S;
    TermVar Io = freshVar("io", Sort::Int), Io2 = freshVar("io2", Sort::Int);
    TermVar Ii = freshVar("ii", Sort::Int), Ii2 = freshVar("ii2", Sort::Int);
    TermRef Bounds =
        mkAnd({le(intConst(0), mkVar(Ii)), lt(mkVar(Ii), intConst(16)),
               le(intConst(0), mkVar(Ii2)), lt(mkVar(Ii2), intConst(16)),
               ne(mkVar(Io), mkVar(Io2))});
    TermRef Distinct = ne(add(mul(16, mkVar(Io)), mkVar(Ii)),
                          add(mul(16, mkVar(Io2)), mkVar(Ii2)));
    auto R = S.checkValid(implies(Bounds, Distinct));
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SolverTileDisjointness);

void BM_CodeGenGemm(benchmark::State &State) {
  ProcRef P = gemm();
  for (auto _ : State) {
    auto C = backend::generateC(P);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_CodeGenGemm);

void BM_InterpGemm16(benchmark::State &State) {
  static ProcRef P = *frontend::parseProc(R"(
@proc
def gemm16(A: R[16, 16], B: R[16, 16], C: R[16, 16]):
    for i in seq(0, 16):
        for j in seq(0, 16):
            for k in seq(0, 16):
                C[i, j] += A[i, k] * B[k, j]
)");
  std::vector<double> A(256, 1.0), B(256, 2.0), C(256, 0.0);
  for (auto _ : State) {
    interp::Interp I;
    auto R = I.run(
        P, {interp::ArgValue::buffer(
                interp::BufferView::dense(A.data(), {16, 16})),
            interp::ArgValue::buffer(
                interp::BufferView::dense(B.data(), {16, 16})),
            interp::ArgValue::buffer(
                interp::BufferView::dense(C.data(), {16, 16}))});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_InterpGemm16);

} // namespace

BENCHMARK_MAIN();
