//===- bench/micro_compiler.cpp - google-benchmark micro suite -*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the compiler itself (not of generated code): how
/// fast are the scheduling operators, their SMT safety checks, effect
/// extraction, parsing, and code generation? The paper's §3.3 argues the
/// rewrite architecture keeps each operator simple — these numbers show
/// the operators are also cheap enough for interactive use.
///
//===----------------------------------------------------------------------===//

#include "analysis/Checks.h"
#include "analysis/EffectCache.h"
#include "apps/Sgemm.h"
#include "backend/CodeGen.h"
#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "scheduling/Schedule.h"
#include "smt/QueryCache.h"

#include <benchmark/benchmark.h>

using namespace exo;
using namespace exo::ir;
using namespace exo::scheduling;

namespace {

const char *GemmSrc = R"(
@proc
def gemm(A: R[128, 128], B: R[128, 128], C: R[128, 128]):
    for i in seq(0, 128):
        for j in seq(0, 128):
            for k in seq(0, 128):
                C[i, j] += A[i, k] * B[k, j]
)";

ProcRef gemm() {
  static ProcRef P = *frontend::parseProc(GemmSrc);
  return P;
}

void BM_ParseGemm(benchmark::State &State) {
  for (auto _ : State) {
    auto P = frontend::parseProc(GemmSrc);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseGemm);

void BM_SplitLoop(benchmark::State &State) {
  ProcRef P = gemm();
  for (auto _ : State) {
    auto Q = splitLoop(P, "for i in _: _", 16, "io", "ii",
                       SplitTail::Guard);
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_SplitLoop);

void BM_SplitLoopPerfect(benchmark::State &State) {
  // Includes the divisibility proof.
  ProcRef P = gemm();
  for (auto _ : State) {
    auto Q = splitLoop(P, "for i in _: _", 16, "io", "ii",
                       SplitTail::Perfect);
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_SplitLoopPerfect);

void BM_ReorderLoops(benchmark::State &State) {
  // Includes the full commutativity check (two effect extractions plus
  // an SMT validity query over the flipped iteration pairs).
  ProcRef P = gemm();
  for (auto _ : State) {
    auto Q = reorderLoops(P, "for j in _: _");
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_ReorderLoops);

void BM_StageMem(benchmark::State &State) {
  static ProcRef Tiled = [] {
    ProcRef Q = *splitLoop(gemm(), "for i in _: _", 16, "io", "ii",
                           SplitTail::Perfect);
    return *splitLoop(Q, "for k in _: _", 16, "ko", "ki",
                      SplitTail::Perfect);
  }();
  for (auto _ : State) {
    auto Q = stageMem(Tiled, "for ki in _: _", 1,
                      "A[16 * io : 16 * io + 16, 16 * ko : 16 * ko + 16]",
                      "a_tile");
    benchmark::DoNotOptimize(Q);
  }
}
BENCHMARK(BM_StageMem);

void BM_EffectExtraction(benchmark::State &State) {
  // Cold: the effect cache is cleared every iteration so this keeps
  // measuring the raw extraction recursion (cf. BM_EffectExtractionWarm).
  ProcRef P = gemm();
  for (auto _ : State) {
    analysis::clearEffectCache();
    analysis::AnalysisCtx Ctx;
    analysis::FlowState FS;
    auto E = analysis::extractBlock(Ctx, FS, P->body());
    benchmark::DoNotOptimize(E);
  }
}
BENCHMARK(BM_EffectExtraction);

void BM_SolverTileDisjointness(benchmark::State &State) {
  using namespace exo::smt;
  for (auto _ : State) {
    Solver S;
    TermVar Io = freshVar("io", Sort::Int), Io2 = freshVar("io2", Sort::Int);
    TermVar Ii = freshVar("ii", Sort::Int), Ii2 = freshVar("ii2", Sort::Int);
    TermRef Bounds =
        mkAnd({le(intConst(0), mkVar(Ii)), lt(mkVar(Ii), intConst(16)),
               le(intConst(0), mkVar(Ii2)), lt(mkVar(Ii2), intConst(16)),
               ne(mkVar(Io), mkVar(Io2))});
    TermRef Distinct = ne(add(mul(16, mkVar(Io)), mkVar(Ii)),
                          add(mul(16, mkVar(Io2)), mkVar(Ii2)));
    auto R = S.checkValid(implies(Bounds, Distinct));
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SolverTileDisjointness);

/// One scheduling-op-shaped safety check: the tile-disjointness obligation
/// of a 16-way split, posed with freshly minted variables exactly as the
/// operators do. Alpha-canonicalization is what lets the query cache hit
/// across calls despite the fresh variables.
smt::SolverResult tileDisjointQuery() {
  using namespace exo::smt;
  Solver S;
  TermVar Io = freshVar("io", Sort::Int), Io2 = freshVar("io2", Sort::Int);
  TermVar Ii = freshVar("ii", Sort::Int), Ii2 = freshVar("ii2", Sort::Int);
  TermRef Bounds =
      mkAnd({le(intConst(0), mkVar(Ii)), lt(mkVar(Ii), intConst(16)),
             le(intConst(0), mkVar(Ii2)), lt(mkVar(Ii2), intConst(16)),
             ne(mkVar(Io), mkVar(Io2))});
  TermRef Distinct = ne(add(mul(16, mkVar(Io)), mkVar(Ii)),
                        add(mul(16, mkVar(Io2)), mkVar(Ii2)));
  return S.checkValid(implies(Bounds, Distinct));
}

void BM_SolverCacheCold(benchmark::State &State) {
  // Every iteration starts from an empty memo table: each of the 8 queries
  // runs the full prenex + Cooper pipeline.
  for (auto _ : State) {
    smt::clearSolverQueryCache();
    for (int I = 0; I < 8; ++I) {
      auto R = tileDisjointQuery();
      benchmark::DoNotOptimize(R);
    }
  }
}
BENCHMARK(BM_SolverCacheCold);

void BM_SolverCacheWarm(benchmark::State &State) {
  // Identical workload, but the memo table is primed: all 8 alpha-variant
  // queries resolve from the cache.
  smt::clearSolverQueryCache();
  auto Prime = tileDisjointQuery();
  benchmark::DoNotOptimize(Prime);
  for (auto _ : State) {
    for (int I = 0; I < 8; ++I) {
      auto R = tileDisjointQuery();
      benchmark::DoNotOptimize(R);
    }
  }
}
BENCHMARK(BM_SolverCacheWarm);

void BM_EffectExtractionWarm(benchmark::State &State) {
  // Same workload as BM_EffectExtraction, but without clearing the effect
  // cache: every statement summary after the first iteration is a hit.
  ProcRef P = gemm();
  for (auto _ : State) {
    analysis::AnalysisCtx Ctx;
    analysis::FlowState FS;
    auto E = analysis::extractBlock(Ctx, FS, P->body());
    benchmark::DoNotOptimize(E);
  }
  auto ES = analysis::effectCacheStats();
  State.counters["effect_hits"] = static_cast<double>(ES.Hits);
}
BENCHMARK(BM_EffectExtractionWarm);

void BM_Fig5aScheduleReplay(benchmark::State &State) {
  // Replays the full fig5a SGEMM schedule (split/reorder/stage/vectorize
  // pipeline) end to end. Each replay builds a fresh proc with fresh
  // symbols, so the solver cache is what carries work across iterations —
  // exactly the "same schedule, re-run" interactive workload.
  smt::Solver::Stats Before = smt::solverGlobalStats();
  for (auto _ : State) {
    auto K = apps::buildSgemm(48, 128, 64);
    benchmark::DoNotOptimize(K);
  }
  smt::Solver::Stats After = smt::solverGlobalStats();
  State.counters["solver_hits"] =
      static_cast<double>(After.CacheHits - Before.CacheHits);
  State.counters["solver_misses"] =
      static_cast<double>(After.CacheMisses - Before.CacheMisses);
  State.counters["solver_queries"] =
      static_cast<double>(After.NumQueries - Before.NumQueries);
}
BENCHMARK(BM_Fig5aScheduleReplay);

void BM_CodeGenGemm(benchmark::State &State) {
  ProcRef P = gemm();
  for (auto _ : State) {
    auto C = backend::generateC(P);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_CodeGenGemm);

void BM_InterpGemm16(benchmark::State &State) {
  static ProcRef P = *frontend::parseProc(R"(
@proc
def gemm16(A: R[16, 16], B: R[16, 16], C: R[16, 16]):
    for i in seq(0, 16):
        for j in seq(0, 16):
            for k in seq(0, 16):
                C[i, j] += A[i, k] * B[k, j]
)");
  std::vector<double> A(256, 1.0), B(256, 2.0), C(256, 0.0);
  for (auto _ : State) {
    interp::Interp I;
    auto R = I.run(
        P, {interp::ArgValue::buffer(
                interp::BufferView::dense(A.data(), {16, 16})),
            interp::ArgValue::buffer(
                interp::BufferView::dense(B.data(), {16, 16})),
            interp::ArgValue::buffer(
                interp::BufferView::dense(C.data(), {16, 16}))});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_InterpGemm16);

} // namespace

BENCHMARK_MAIN();
