# Runs one bench smoke command and copies the JSON it produced into the
# repository root, so the recorded bench trajectory (BENCH_*.json) lives
# next to the sources instead of only inside the build tree.
#
# Usage:
#   cmake -DJSON=<produced file> -DREPO_ROOT=<dir> -DARGS=<;-list>
#         -P RunBench.cmake
if(NOT DEFINED ARGS OR NOT DEFINED JSON OR NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "RunBench.cmake needs -DARGS, -DJSON and -DREPO_ROOT")
endif()
execute_process(COMMAND ${ARGS} RESULT_VARIABLE RC)
if(EXISTS "${JSON}")
  file(COPY "${JSON}" DESTINATION "${REPO_ROOT}")
endif()
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bench command failed with status ${RC}: ${ARGS}")
endif()
