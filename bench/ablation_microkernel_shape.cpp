//===- bench/ablation_microkernel_shape.cpp - Tile-shape sweep -*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the paper's 6x64 register-block choice (§7.2): because
/// the micro-kernel shape is a *scheduling parameter* rather than
/// hand-written code, sweeping it is a one-line change — which is the
/// productivity claim in action. AVX-512 has 32 zmm registers; 6 rows x
/// 4 vectors uses 24 accumulators + 4 B vectors + broadcasts, close to
/// the sweet spot. Shapes far from it should lose.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/Sgemm.h"
#include "backend/CodeGen.h"

#include <cstdio>

using namespace exo;
using namespace exo::bench;

namespace {

struct Shape {
  int64_t Rows, Cols;
};
const Shape Shapes[] = {{2, 64}, {4, 64}, {6, 64}, {8, 64},
                        {6, 32}, {6, 128}, {12, 32}, {16, 16}};
const int64_t Dim = 768; // divisible by every tile above

const char *HarnessCommon = R"(
#include <stdio.h>
#include <string.h>
#include <time.h>
static double now_s(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec + 1e-9 * ts.tv_nsec;
}
)";

std::string mainHarness() {
  char Buf[2048];
  std::snprintf(Buf, sizeof(Buf), R"(
enum { SZ = %lld };
static float A[SZ * SZ], B[SZ * SZ], C[SZ * SZ];
int main(void) {
  for (long i = 0; i < (long)SZ * SZ; i++) {
    A[i] = (float)(i %% 13) * 0.25f - 1.5f;
    B[i] = (float)(i %% 7) * 0.5f - 1.0f;
  }
  double best = 1e30;
  for (int r = 0; r < 2; r++) {
    memset(C, 0, sizeof(C));
    double t0 = now_s();
    exo_sgemm(A, B, C);
    double t = now_s() - t0;
    if (t < best) best = t;
  }
  printf("%%.6f %%.6f\n", best, (double)C[SZ + 17]);
  return 0;
}
)",
                (long long)Dim);
  return Buf;
}

} // namespace

int main() {
  std::printf("Ablation: SGEMM micro-kernel shape (rows x cols of C kept "
              "in registers), %lld^3\n\n",
              (long long)Dim);
  printRow({"shape", "accum regs", "GFLOP/s", "vs 6x64"}, {8, 11, 9, 8});
  double Baseline = 0;
  std::vector<double> Results;
  for (const Shape &S : Shapes) {
    auto K = apps::buildSgemm(Dim, Dim, Dim, S.Rows, S.Cols);
    if (!K) {
      std::fprintf(stderr, "schedule failed for %lldx%lld: %s\n",
                   (long long)S.Rows, (long long)S.Cols,
                   K.error().str().c_str());
      return 1;
    }
    auto CSrc = backend::generateC(K->ExoSgemm,
                                   {.Prelude = std::string(HarnessCommon)});
    if (!CSrc) {
      std::fprintf(stderr, "codegen failed: %s\n",
                   CSrc.error().str().c_str());
      return 1;
    }
    auto Out = compileAndRun(*CSrc + mainHarness(), {}, {avx512RuntimeDir()});
    if (!Out || Out->size() < 2) {
      std::fprintf(stderr, "harness failed\n");
      return 1;
    }
    double G = 2.0 * Dim * Dim * Dim / std::atof((*Out)[0].c_str()) * 1e-9;
    Results.push_back(G);
    if (S.Rows == 6 && S.Cols == 64)
      Baseline = G;
  }
  for (size_t I = 0; I < Results.size(); ++I) {
    char R0[32], R1[32], R2[32], R3[32];
    std::snprintf(R0, 32, "%lldx%lld", (long long)Shapes[I].Rows,
                  (long long)Shapes[I].Cols);
    std::snprintf(R1, 32, "%lld", (long long)(Shapes[I].Rows *
                                              (Shapes[I].Cols / 16)));
    std::snprintf(R2, 32, "%6.2f", Results[I]);
    std::snprintf(R3, 32, "%5.0f%%", 100.0 * Results[I] / Baseline);
    printRow({R0, R1, R2, R3}, {8, 11, 9, 8});
  }
  std::printf("\nEach row is the same algorithm with two numbers changed "
              "in the schedule.\n");
  return 0;
}
