//===- bench/parallel_compile.cpp - batch-compile benchmark ----*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall time of compiling the standard kernel suite serially vs. on a
/// work-stealing pool, with the shared-cache traffic as counters. Every
/// iteration starts from cold caches so the numbers measure real
/// compilation, not memoized replay. On a single-core host the parallel
/// variants document contention overhead rather than speedup — the
/// counters (identical across thread counts) are the determinism
/// evidence either way.
///
//===----------------------------------------------------------------------===//

#include "analysis/EffectCache.h"
#include "driver/BatchDriver.h"
#include "driver/KernelSuite.h"
#include "smt/QueryCache.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

using namespace exo;
using namespace exo::driver;

namespace {

void coldCaches() {
  smt::clearTermInterner();
  smt::clearSolverQueryCache();
  analysis::clearEffectCache();
  smt::resetSolverGlobalStats();
}

void runBatch(benchmark::State &State, unsigned Threads) {
  std::vector<CompileJob> Jobs = standardKernelSuite();
  BatchDriver Driver(Threads);
  uint64_t Bytes = 0;
  BatchCacheStats Last;
  for (auto _ : State) {
    coldCaches();
    BatchResult R = Driver.run(Jobs);
    if (!R.AllOk)
      State.SkipWithError("a batch job failed");
    Bytes = 0;
    for (const JobResult &J : R.Jobs)
      Bytes += J.Output.size();
    Last = R.Cache;
    benchmark::DoNotOptimize(R);
  }
  State.counters["threads"] = static_cast<double>(Threads);
  State.counters["c_bytes"] = static_cast<double>(Bytes);
  State.counters["solver_queries"] = static_cast<double>(Last.SolverQueries);
  State.counters["query_cache_hits"] =
      static_cast<double>(Last.QueryCacheHits);
  State.counters["term_hits"] = static_cast<double>(Last.TermHits);
  State.counters["effect_hits"] = static_cast<double>(Last.EffectHits);
}

void BM_BatchCompile1(benchmark::State &State) { runBatch(State, 1); }
BENCHMARK(BM_BatchCompile1)->Unit(benchmark::kMillisecond);

void BM_BatchCompileN(benchmark::State &State) {
  unsigned N = support::ThreadPool::hardwareThreads();
  runBatch(State, N < 2 ? 2 : N);
}
BENCHMARK(BM_BatchCompileN)->Unit(benchmark::kMillisecond);

void BM_BatchCompile4(benchmark::State &State) { runBatch(State, 4); }
BENCHMARK(BM_BatchCompile4)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
