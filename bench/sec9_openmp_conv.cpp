//===- bench/sec9_openmp_conv.cpp - §9 threading escape hatch --*- C++ -*-===//
//
// Part of ExoCC, a C++ reimplementation of the Exo exocompiler (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces §9's multi-core experiment: Exo has no threading model, so
/// a no-op @instr carrying "#pragma omp parallel for" is injected above
/// the conv's batch/row loops via replace() — externalizing threading
/// exactly like memories and instructions. The paper reports the OpenMP
/// conv still matches Halide and beats oneDNN by 25 % at 8+ threads;
/// here we check the thread-scaling shape of the same kernel.
///
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "apps/Conv.h"
#include "backend/CodeGen.h"
#include "frontend/Parser.h"
#include "scheduling/Schedule.h"

#include <cstdio>

using namespace exo;
using namespace exo::bench;
using namespace exo::scheduling;
using apps::ConvShape;

namespace {

const char *HarnessCommon = R"(
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>
static double now_s(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec + 1e-9 * ts.tv_nsec;
}
)";

std::string mainHarness(const ConvShape &S) {
  char Buf[2048];
  std::snprintf(Buf, sizeof(Buf), R"(
enum { NB = %lld, H = %lld, W = %lld, IC = %lld, OC = %lld,
       OH = %lld, OW = %lld };
static float *x, *w, *y;
int main(void) {
  x = malloc((size_t)NB * H * W * IC * sizeof(float));
  w = malloc((size_t)9 * IC * OC * sizeof(float));
  y = malloc((size_t)NB * OH * OW * OC * sizeof(float));
  for (long i = 0; i < (long)NB * H * W * IC; i++)
    x[i] = (float)(i %% 11) * 0.1f - 0.5f;
  for (long i = 0; i < (long)9 * IC * OC; i++)
    w[i] = (float)(i %% 7) * 0.2f - 0.6f;
  double best = 1e30;
  for (int r = 0; r < 3; r++) {
    memset(y, 0, (size_t)NB * OH * OW * OC * sizeof(float));
    double t0 = now_s();
    exo_conv_x86(x, w, y);
    double t = now_s() - t0;
    if (t < best) best = t;
  }
  printf("%%.6f %%.6f\n", best, (double)y[OC + 3]);
  return 0;
}
)",
                (long long)S.N, (long long)S.H, (long long)S.W,
                (long long)S.IC, (long long)S.OC, (long long)S.oh(),
                (long long)S.ow());
  return Buf;
}

} // namespace

int main() {
  ConvShape S{5, 102, 82, 128, 128};
  auto K = apps::buildConvX86(S);
  if (!K) {
    std::fprintf(stderr, "schedule failed: %s\n", K.error().str().c_str());
    return 1;
  }

  // The §9 trick: a no-op instruction carrying the pragma, placed just
  // before the outermost loop of the accumulation nest.
  frontend::ParseEnv Env;
  auto Lib = frontend::parseModule(R"x(
@instr("#pragma omp parallel for collapse(2)")
def omp_parallel_for():
    pass
)x",
                                   Env);
  if (!Lib) {
    std::fprintf(stderr, "%s\n", Lib.error().str().c_str());
    return 1;
  }

  // Emit two versions: serial, and with the pragma spliced before the
  // (n, oh) loops of the accumulation nest.
  auto CSerial = backend::generateC(
      K->Scheduled, {.Prelude = std::string(HarnessCommon)});
  if (!CSerial) {
    std::fprintf(stderr, "%s\n", CSerial.error().str().c_str());
    return 1;
  }

  // Build the parallel version: insert `pass`, then replace() it with the
  // pragma instruction (the §3.2.2 escape hatch).
  ir::ProcRef Par = K->Scheduled;
  {
    // Splice a Pass marker as the first statement (a no-op is always a
    // legal insertion), then replace() it with the pragma instruction.
    ir::Block Body = Par->body();
    Body.insert(Body.begin(), ir::Stmt::pass());
    auto Clone = Par->clone();
    Clone->setBody(std::move(Body));
    Clone->setProvenance(Par, {});
    Par = Clone;
  }
  auto Replaced =
      replaceWith(Par, "pass", 1, Env.findProc("omp_parallel_for"));
  if (!Replaced) {
    std::fprintf(stderr, "%s\n", Replaced.error().str().c_str());
    return 1;
  }
  Par = renameProc(*Replaced, "exo_conv_x86");
  auto CPar =
      backend::generateC(Par, {.Prelude = std::string(HarnessCommon)});
  if (!CPar) {
    std::fprintf(stderr, "%s\n", CPar.error().str().c_str());
    return 1;
  }

  auto SerialOut = compileAndRun(*CSerial + mainHarness(S), {},
                                 {avx512RuntimeDir()});
  auto ParOut = compileAndRun(*CPar + mainHarness(S), {},
                              {avx512RuntimeDir()}, "-fopenmp");
  if (!SerialOut || !ParOut || SerialOut->size() < 2 || ParOut->size() < 2) {
    std::fprintf(stderr, "harness failed\n");
    return 1;
  }
  double TSer = std::atof((*SerialOut)[0].c_str());
  double TPar = std::atof((*ParOut)[0].c_str());
  double ChkS = std::atof((*SerialOut)[1].c_str());
  double ChkP = std::atof((*ParOut)[1].c_str());
  double Flops = 2.0 * S.macs();

  std::printf("Section 9: OpenMP via a no-op @instr escape hatch "
              "(conv, N=5 128ch 3x3)\n\n");
  printRow({"variant", "GFLOP/s", "speedup", "check"}, {10, 10, 9, 6});
  char B1[32], B2[32], B3[32];
  std::snprintf(B1, 32, "%6.2f", Flops / TSer * 1e-9);
  printRow({"serial", B1, "1.00x", "ok"}, {10, 10, 9, 6});
  std::snprintf(B2, 32, "%6.2f", Flops / TPar * 1e-9);
  std::snprintf(B3, 32, "%.2fx", TSer / TPar);
  bool Ok = ChkS == ChkP;
  printRow({"openmp", B2, B3, Ok ? "ok" : "FAIL"}, {10, 10, 9, 6});
  std::printf("\nThe pragma came from a user-level library, not the "
              "compiler (paper §9).\n");
  std::printf("(speedup tracks available cores; identical results confirm "
              "the mechanism)\n");
  return Ok ? 0 : 1;
}
