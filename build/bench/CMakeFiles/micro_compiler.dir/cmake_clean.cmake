file(REMOVE_RECURSE
  "CMakeFiles/micro_compiler.dir/micro_compiler.cpp.o"
  "CMakeFiles/micro_compiler.dir/micro_compiler.cpp.o.d"
  "micro_compiler"
  "micro_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
