file(REMOVE_RECURSE
  "CMakeFiles/fig4b_gemmini_conv.dir/fig4b_gemmini_conv.cpp.o"
  "CMakeFiles/fig4b_gemmini_conv.dir/fig4b_gemmini_conv.cpp.o.d"
  "fig4b_gemmini_conv"
  "fig4b_gemmini_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_gemmini_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
