# Empty dependencies file for fig4b_gemmini_conv.
# This may be replaced when dependencies are built.
