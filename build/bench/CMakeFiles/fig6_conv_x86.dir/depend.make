# Empty dependencies file for fig6_conv_x86.
# This may be replaced when dependencies are built.
