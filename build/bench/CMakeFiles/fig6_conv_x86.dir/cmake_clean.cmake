file(REMOVE_RECURSE
  "CMakeFiles/fig6_conv_x86.dir/fig6_conv_x86.cpp.o"
  "CMakeFiles/fig6_conv_x86.dir/fig6_conv_x86.cpp.o.d"
  "fig6_conv_x86"
  "fig6_conv_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_conv_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
