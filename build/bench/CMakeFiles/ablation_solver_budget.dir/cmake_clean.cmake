file(REMOVE_RECURSE
  "CMakeFiles/ablation_solver_budget.dir/ablation_solver_budget.cpp.o"
  "CMakeFiles/ablation_solver_budget.dir/ablation_solver_budget.cpp.o.d"
  "ablation_solver_budget"
  "ablation_solver_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_solver_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
