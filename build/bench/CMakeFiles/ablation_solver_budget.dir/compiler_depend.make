# Empty compiler generated dependencies file for ablation_solver_budget.
# This may be replaced when dependencies are built.
