file(REMOVE_RECURSE
  "CMakeFiles/fig5a_sgemm_square.dir/fig5a_sgemm_square.cpp.o"
  "CMakeFiles/fig5a_sgemm_square.dir/fig5a_sgemm_square.cpp.o.d"
  "fig5a_sgemm_square"
  "fig5a_sgemm_square.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_sgemm_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
