# Empty dependencies file for fig5a_sgemm_square.
# This may be replaced when dependencies are built.
