file(REMOVE_RECURSE
  "CMakeFiles/fig7_code_size.dir/fig7_code_size.cpp.o"
  "CMakeFiles/fig7_code_size.dir/fig7_code_size.cpp.o.d"
  "fig7_code_size"
  "fig7_code_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_code_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
