# Empty compiler generated dependencies file for fig7_code_size.
# This may be replaced when dependencies are built.
