# Empty compiler generated dependencies file for fig5b_sgemm_aspect.
# This may be replaced when dependencies are built.
