file(REMOVE_RECURSE
  "CMakeFiles/fig5b_sgemm_aspect.dir/fig5b_sgemm_aspect.cpp.o"
  "CMakeFiles/fig5b_sgemm_aspect.dir/fig5b_sgemm_aspect.cpp.o.d"
  "fig5b_sgemm_aspect"
  "fig5b_sgemm_aspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_sgemm_aspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
