# Empty dependencies file for ablation_config_hoist.
# This may be replaced when dependencies are built.
