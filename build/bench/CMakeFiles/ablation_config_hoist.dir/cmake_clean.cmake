file(REMOVE_RECURSE
  "CMakeFiles/ablation_config_hoist.dir/ablation_config_hoist.cpp.o"
  "CMakeFiles/ablation_config_hoist.dir/ablation_config_hoist.cpp.o.d"
  "ablation_config_hoist"
  "ablation_config_hoist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_config_hoist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
