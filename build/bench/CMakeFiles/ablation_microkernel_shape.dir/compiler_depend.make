# Empty compiler generated dependencies file for ablation_microkernel_shape.
# This may be replaced when dependencies are built.
