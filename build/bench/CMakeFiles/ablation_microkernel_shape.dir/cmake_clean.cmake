file(REMOVE_RECURSE
  "CMakeFiles/ablation_microkernel_shape.dir/ablation_microkernel_shape.cpp.o"
  "CMakeFiles/ablation_microkernel_shape.dir/ablation_microkernel_shape.cpp.o.d"
  "ablation_microkernel_shape"
  "ablation_microkernel_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_microkernel_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
