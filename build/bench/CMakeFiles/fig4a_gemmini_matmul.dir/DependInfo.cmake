
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4a_gemmini_matmul.cpp" "bench/CMakeFiles/fig4a_gemmini_matmul.dir/fig4a_gemmini_matmul.cpp.o" "gcc" "bench/CMakeFiles/fig4a_gemmini_matmul.dir/fig4a_gemmini_matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/exo_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_scheduling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_hwlibs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
