# Empty dependencies file for fig4a_gemmini_matmul.
# This may be replaced when dependencies are built.
