file(REMOVE_RECURSE
  "CMakeFiles/fig4a_gemmini_matmul.dir/fig4a_gemmini_matmul.cpp.o"
  "CMakeFiles/fig4a_gemmini_matmul.dir/fig4a_gemmini_matmul.cpp.o.d"
  "fig4a_gemmini_matmul"
  "fig4a_gemmini_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_gemmini_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
