file(REMOVE_RECURSE
  "CMakeFiles/exo_bench_harness.dir/BenchHarness.cpp.o"
  "CMakeFiles/exo_bench_harness.dir/BenchHarness.cpp.o.d"
  "libexo_bench_harness.a"
  "libexo_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
