# Empty dependencies file for exo_bench_harness.
# This may be replaced when dependencies are built.
