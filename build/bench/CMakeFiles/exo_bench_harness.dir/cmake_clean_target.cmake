file(REMOVE_RECURSE
  "libexo_bench_harness.a"
)
