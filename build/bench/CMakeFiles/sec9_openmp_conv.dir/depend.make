# Empty dependencies file for sec9_openmp_conv.
# This may be replaced when dependencies are built.
