file(REMOVE_RECURSE
  "CMakeFiles/sec9_openmp_conv.dir/sec9_openmp_conv.cpp.o"
  "CMakeFiles/sec9_openmp_conv.dir/sec9_openmp_conv.cpp.o.d"
  "sec9_openmp_conv"
  "sec9_openmp_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_openmp_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
