# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig7_code_size "/root/repo/build/bench/fig7_code_size")
set_tests_properties(bench_fig7_code_size PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
