
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduling/ConfigOps.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/ConfigOps.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/ConfigOps.cpp.o.d"
  "/root/repo/src/scheduling/LoopOps.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/LoopOps.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/LoopOps.cpp.o.d"
  "/root/repo/src/scheduling/MemOps.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/MemOps.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/MemOps.cpp.o.d"
  "/root/repo/src/scheduling/Pattern.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/Pattern.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/Pattern.cpp.o.d"
  "/root/repo/src/scheduling/ProcOps.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/ProcOps.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/ProcOps.cpp.o.d"
  "/root/repo/src/scheduling/Provenance.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/Provenance.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/Provenance.cpp.o.d"
  "/root/repo/src/scheduling/StmtOps.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/StmtOps.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/StmtOps.cpp.o.d"
  "/root/repo/src/scheduling/Unify.cpp" "src/CMakeFiles/exo_scheduling.dir/scheduling/Unify.cpp.o" "gcc" "src/CMakeFiles/exo_scheduling.dir/scheduling/Unify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
