# Empty dependencies file for exo_scheduling.
# This may be replaced when dependencies are built.
