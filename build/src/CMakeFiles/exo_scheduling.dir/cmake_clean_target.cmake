file(REMOVE_RECURSE
  "libexo_scheduling.a"
)
