file(REMOVE_RECURSE
  "CMakeFiles/exo_scheduling.dir/scheduling/ConfigOps.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/ConfigOps.cpp.o.d"
  "CMakeFiles/exo_scheduling.dir/scheduling/LoopOps.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/LoopOps.cpp.o.d"
  "CMakeFiles/exo_scheduling.dir/scheduling/MemOps.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/MemOps.cpp.o.d"
  "CMakeFiles/exo_scheduling.dir/scheduling/Pattern.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/Pattern.cpp.o.d"
  "CMakeFiles/exo_scheduling.dir/scheduling/ProcOps.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/ProcOps.cpp.o.d"
  "CMakeFiles/exo_scheduling.dir/scheduling/Provenance.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/Provenance.cpp.o.d"
  "CMakeFiles/exo_scheduling.dir/scheduling/StmtOps.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/StmtOps.cpp.o.d"
  "CMakeFiles/exo_scheduling.dir/scheduling/Unify.cpp.o"
  "CMakeFiles/exo_scheduling.dir/scheduling/Unify.cpp.o.d"
  "libexo_scheduling.a"
  "libexo_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
