# Empty compiler generated dependencies file for exo_backend.
# This may be replaced when dependencies are built.
