file(REMOVE_RECURSE
  "libexo_backend.a"
)
