file(REMOVE_RECURSE
  "CMakeFiles/exo_backend.dir/backend/CodeGen.cpp.o"
  "CMakeFiles/exo_backend.dir/backend/CodeGen.cpp.o.d"
  "CMakeFiles/exo_backend.dir/backend/Memory.cpp.o"
  "CMakeFiles/exo_backend.dir/backend/Memory.cpp.o.d"
  "CMakeFiles/exo_backend.dir/backend/MemoryCheck.cpp.o"
  "CMakeFiles/exo_backend.dir/backend/MemoryCheck.cpp.o.d"
  "CMakeFiles/exo_backend.dir/backend/PrecisionCheck.cpp.o"
  "CMakeFiles/exo_backend.dir/backend/PrecisionCheck.cpp.o.d"
  "libexo_backend.a"
  "libexo_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
