# Empty dependencies file for exo_smt.
# This may be replaced when dependencies are built.
