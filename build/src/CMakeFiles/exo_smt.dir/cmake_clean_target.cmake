file(REMOVE_RECURSE
  "libexo_smt.a"
)
