file(REMOVE_RECURSE
  "CMakeFiles/exo_smt.dir/smt/Cooper.cpp.o"
  "CMakeFiles/exo_smt.dir/smt/Cooper.cpp.o.d"
  "CMakeFiles/exo_smt.dir/smt/Linear.cpp.o"
  "CMakeFiles/exo_smt.dir/smt/Linear.cpp.o.d"
  "CMakeFiles/exo_smt.dir/smt/Prenex.cpp.o"
  "CMakeFiles/exo_smt.dir/smt/Prenex.cpp.o.d"
  "CMakeFiles/exo_smt.dir/smt/QForm.cpp.o"
  "CMakeFiles/exo_smt.dir/smt/QForm.cpp.o.d"
  "CMakeFiles/exo_smt.dir/smt/Solver.cpp.o"
  "CMakeFiles/exo_smt.dir/smt/Solver.cpp.o.d"
  "CMakeFiles/exo_smt.dir/smt/Term.cpp.o"
  "CMakeFiles/exo_smt.dir/smt/Term.cpp.o.d"
  "libexo_smt.a"
  "libexo_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
