
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/Cooper.cpp" "src/CMakeFiles/exo_smt.dir/smt/Cooper.cpp.o" "gcc" "src/CMakeFiles/exo_smt.dir/smt/Cooper.cpp.o.d"
  "/root/repo/src/smt/Linear.cpp" "src/CMakeFiles/exo_smt.dir/smt/Linear.cpp.o" "gcc" "src/CMakeFiles/exo_smt.dir/smt/Linear.cpp.o.d"
  "/root/repo/src/smt/Prenex.cpp" "src/CMakeFiles/exo_smt.dir/smt/Prenex.cpp.o" "gcc" "src/CMakeFiles/exo_smt.dir/smt/Prenex.cpp.o.d"
  "/root/repo/src/smt/QForm.cpp" "src/CMakeFiles/exo_smt.dir/smt/QForm.cpp.o" "gcc" "src/CMakeFiles/exo_smt.dir/smt/QForm.cpp.o.d"
  "/root/repo/src/smt/Solver.cpp" "src/CMakeFiles/exo_smt.dir/smt/Solver.cpp.o" "gcc" "src/CMakeFiles/exo_smt.dir/smt/Solver.cpp.o.d"
  "/root/repo/src/smt/Term.cpp" "src/CMakeFiles/exo_smt.dir/smt/Term.cpp.o" "gcc" "src/CMakeFiles/exo_smt.dir/smt/Term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
