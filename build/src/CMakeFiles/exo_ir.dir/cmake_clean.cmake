file(REMOVE_RECURSE
  "CMakeFiles/exo_ir.dir/ir/Builder.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Builder.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Expr.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Expr.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/FreeVars.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/FreeVars.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Proc.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Proc.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/StructuralEq.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/StructuralEq.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Subst.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Subst.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Sym.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Sym.cpp.o.d"
  "CMakeFiles/exo_ir.dir/ir/Type.cpp.o"
  "CMakeFiles/exo_ir.dir/ir/Type.cpp.o.d"
  "libexo_ir.a"
  "libexo_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
