
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Builder.cpp" "src/CMakeFiles/exo_ir.dir/ir/Builder.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/CMakeFiles/exo_ir.dir/ir/Expr.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Expr.cpp.o.d"
  "/root/repo/src/ir/FreeVars.cpp" "src/CMakeFiles/exo_ir.dir/ir/FreeVars.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/FreeVars.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/exo_ir.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Proc.cpp" "src/CMakeFiles/exo_ir.dir/ir/Proc.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Proc.cpp.o.d"
  "/root/repo/src/ir/Stmt.cpp" "src/CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Stmt.cpp.o.d"
  "/root/repo/src/ir/StructuralEq.cpp" "src/CMakeFiles/exo_ir.dir/ir/StructuralEq.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/StructuralEq.cpp.o.d"
  "/root/repo/src/ir/Subst.cpp" "src/CMakeFiles/exo_ir.dir/ir/Subst.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Subst.cpp.o.d"
  "/root/repo/src/ir/Sym.cpp" "src/CMakeFiles/exo_ir.dir/ir/Sym.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Sym.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/exo_ir.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/exo_ir.dir/ir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
