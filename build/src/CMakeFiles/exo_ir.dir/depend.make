# Empty dependencies file for exo_ir.
# This may be replaced when dependencies are built.
