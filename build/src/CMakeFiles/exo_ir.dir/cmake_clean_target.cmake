file(REMOVE_RECURSE
  "libexo_ir.a"
)
