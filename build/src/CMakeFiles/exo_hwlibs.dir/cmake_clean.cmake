file(REMOVE_RECURSE
  "CMakeFiles/exo_hwlibs.dir/hwlibs/avx512/Avx512Lib.cpp.o"
  "CMakeFiles/exo_hwlibs.dir/hwlibs/avx512/Avx512Lib.cpp.o.d"
  "CMakeFiles/exo_hwlibs.dir/hwlibs/gemmini/GemminiLib.cpp.o"
  "CMakeFiles/exo_hwlibs.dir/hwlibs/gemmini/GemminiLib.cpp.o.d"
  "CMakeFiles/exo_hwlibs.dir/hwlibs/gemmini/runtime/gemmini_sim.c.o"
  "CMakeFiles/exo_hwlibs.dir/hwlibs/gemmini/runtime/gemmini_sim.c.o.d"
  "libexo_hwlibs.a"
  "libexo_hwlibs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C CXX)
  include(CMakeFiles/exo_hwlibs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
