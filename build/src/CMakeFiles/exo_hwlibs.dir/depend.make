# Empty dependencies file for exo_hwlibs.
# This may be replaced when dependencies are built.
