file(REMOVE_RECURSE
  "libexo_hwlibs.a"
)
