file(REMOVE_RECURSE
  "libexo_interp.a"
)
