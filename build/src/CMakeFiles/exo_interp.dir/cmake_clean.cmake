file(REMOVE_RECURSE
  "CMakeFiles/exo_interp.dir/interp/Interp.cpp.o"
  "CMakeFiles/exo_interp.dir/interp/Interp.cpp.o.d"
  "libexo_interp.a"
  "libexo_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
