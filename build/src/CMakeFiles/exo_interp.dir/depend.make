# Empty dependencies file for exo_interp.
# This may be replaced when dependencies are built.
