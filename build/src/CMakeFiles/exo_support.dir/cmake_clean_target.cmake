file(REMOVE_RECURSE
  "libexo_support.a"
)
