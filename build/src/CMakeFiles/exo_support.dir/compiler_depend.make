# Empty compiler generated dependencies file for exo_support.
# This may be replaced when dependencies are built.
