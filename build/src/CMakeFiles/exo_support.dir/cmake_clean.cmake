file(REMOVE_RECURSE
  "CMakeFiles/exo_support.dir/support/Error.cpp.o"
  "CMakeFiles/exo_support.dir/support/Error.cpp.o.d"
  "CMakeFiles/exo_support.dir/support/Printer.cpp.o"
  "CMakeFiles/exo_support.dir/support/Printer.cpp.o.d"
  "CMakeFiles/exo_support.dir/support/StringExtras.cpp.o"
  "CMakeFiles/exo_support.dir/support/StringExtras.cpp.o.d"
  "libexo_support.a"
  "libexo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
