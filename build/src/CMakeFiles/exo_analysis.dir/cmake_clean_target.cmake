file(REMOVE_RECURSE
  "libexo_analysis.a"
)
