
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Checks.cpp" "src/CMakeFiles/exo_analysis.dir/analysis/Checks.cpp.o" "gcc" "src/CMakeFiles/exo_analysis.dir/analysis/Checks.cpp.o.d"
  "/root/repo/src/analysis/Context.cpp" "src/CMakeFiles/exo_analysis.dir/analysis/Context.cpp.o" "gcc" "src/CMakeFiles/exo_analysis.dir/analysis/Context.cpp.o.d"
  "/root/repo/src/analysis/Dataflow.cpp" "src/CMakeFiles/exo_analysis.dir/analysis/Dataflow.cpp.o" "gcc" "src/CMakeFiles/exo_analysis.dir/analysis/Dataflow.cpp.o.d"
  "/root/repo/src/analysis/EffExpr.cpp" "src/CMakeFiles/exo_analysis.dir/analysis/EffExpr.cpp.o" "gcc" "src/CMakeFiles/exo_analysis.dir/analysis/EffExpr.cpp.o.d"
  "/root/repo/src/analysis/Effects.cpp" "src/CMakeFiles/exo_analysis.dir/analysis/Effects.cpp.o" "gcc" "src/CMakeFiles/exo_analysis.dir/analysis/Effects.cpp.o.d"
  "/root/repo/src/analysis/LocSet.cpp" "src/CMakeFiles/exo_analysis.dir/analysis/LocSet.cpp.o" "gcc" "src/CMakeFiles/exo_analysis.dir/analysis/LocSet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
