# Empty compiler generated dependencies file for exo_analysis.
# This may be replaced when dependencies are built.
