file(REMOVE_RECURSE
  "CMakeFiles/exo_analysis.dir/analysis/Checks.cpp.o"
  "CMakeFiles/exo_analysis.dir/analysis/Checks.cpp.o.d"
  "CMakeFiles/exo_analysis.dir/analysis/Context.cpp.o"
  "CMakeFiles/exo_analysis.dir/analysis/Context.cpp.o.d"
  "CMakeFiles/exo_analysis.dir/analysis/Dataflow.cpp.o"
  "CMakeFiles/exo_analysis.dir/analysis/Dataflow.cpp.o.d"
  "CMakeFiles/exo_analysis.dir/analysis/EffExpr.cpp.o"
  "CMakeFiles/exo_analysis.dir/analysis/EffExpr.cpp.o.d"
  "CMakeFiles/exo_analysis.dir/analysis/Effects.cpp.o"
  "CMakeFiles/exo_analysis.dir/analysis/Effects.cpp.o.d"
  "CMakeFiles/exo_analysis.dir/analysis/LocSet.cpp.o"
  "CMakeFiles/exo_analysis.dir/analysis/LocSet.cpp.o.d"
  "libexo_analysis.a"
  "libexo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
