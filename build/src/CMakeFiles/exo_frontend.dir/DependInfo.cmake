
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/exo_frontend.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/exo_frontend.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/exo_frontend.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/exo_frontend.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/frontend/StaticChecks.cpp" "src/CMakeFiles/exo_frontend.dir/frontend/StaticChecks.cpp.o" "gcc" "src/CMakeFiles/exo_frontend.dir/frontend/StaticChecks.cpp.o.d"
  "/root/repo/src/frontend/TypeCheck.cpp" "src/CMakeFiles/exo_frontend.dir/frontend/TypeCheck.cpp.o" "gcc" "src/CMakeFiles/exo_frontend.dir/frontend/TypeCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
