file(REMOVE_RECURSE
  "CMakeFiles/exo_frontend.dir/frontend/Lexer.cpp.o"
  "CMakeFiles/exo_frontend.dir/frontend/Lexer.cpp.o.d"
  "CMakeFiles/exo_frontend.dir/frontend/Parser.cpp.o"
  "CMakeFiles/exo_frontend.dir/frontend/Parser.cpp.o.d"
  "CMakeFiles/exo_frontend.dir/frontend/StaticChecks.cpp.o"
  "CMakeFiles/exo_frontend.dir/frontend/StaticChecks.cpp.o.d"
  "CMakeFiles/exo_frontend.dir/frontend/TypeCheck.cpp.o"
  "CMakeFiles/exo_frontend.dir/frontend/TypeCheck.cpp.o.d"
  "libexo_frontend.a"
  "libexo_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
