file(REMOVE_RECURSE
  "libexo_frontend.a"
)
