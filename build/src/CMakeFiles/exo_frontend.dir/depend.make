# Empty dependencies file for exo_frontend.
# This may be replaced when dependencies are built.
