file(REMOVE_RECURSE
  "libexo_apps.a"
)
