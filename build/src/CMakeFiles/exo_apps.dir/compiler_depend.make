# Empty compiler generated dependencies file for exo_apps.
# This may be replaced when dependencies are built.
