file(REMOVE_RECURSE
  "CMakeFiles/exo_apps.dir/apps/Autoschedule.cpp.o"
  "CMakeFiles/exo_apps.dir/apps/Autoschedule.cpp.o.d"
  "CMakeFiles/exo_apps.dir/apps/Conv.cpp.o"
  "CMakeFiles/exo_apps.dir/apps/Conv.cpp.o.d"
  "CMakeFiles/exo_apps.dir/apps/GemminiMatmul.cpp.o"
  "CMakeFiles/exo_apps.dir/apps/GemminiMatmul.cpp.o.d"
  "CMakeFiles/exo_apps.dir/apps/Sgemm.cpp.o"
  "CMakeFiles/exo_apps.dir/apps/Sgemm.cpp.o.d"
  "libexo_apps.a"
  "libexo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
