file(REMOVE_RECURSE
  "CMakeFiles/gemmini_matmul.dir/gemmini_matmul.cpp.o"
  "CMakeFiles/gemmini_matmul.dir/gemmini_matmul.cpp.o.d"
  "gemmini_matmul"
  "gemmini_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmini_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
