# Empty compiler generated dependencies file for gemmini_matmul.
# This may be replaced when dependencies are built.
