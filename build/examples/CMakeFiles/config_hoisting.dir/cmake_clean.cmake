file(REMOVE_RECURSE
  "CMakeFiles/config_hoisting.dir/config_hoisting.cpp.o"
  "CMakeFiles/config_hoisting.dir/config_hoisting.cpp.o.d"
  "config_hoisting"
  "config_hoisting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_hoisting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
