# Empty dependencies file for config_hoisting.
# This may be replaced when dependencies are built.
