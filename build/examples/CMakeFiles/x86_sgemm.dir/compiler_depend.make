# Empty compiler generated dependencies file for x86_sgemm.
# This may be replaced when dependencies are built.
