file(REMOVE_RECURSE
  "CMakeFiles/x86_sgemm.dir/x86_sgemm.cpp.o"
  "CMakeFiles/x86_sgemm.dir/x86_sgemm.cpp.o.d"
  "x86_sgemm"
  "x86_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
