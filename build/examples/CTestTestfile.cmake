# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;7;exo_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_config_hoisting "/root/repo/build/examples/config_hoisting")
set_tests_properties(example_config_hoisting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;8;exo_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gemmini_matmul "/root/repo/build/examples/gemmini_matmul")
set_tests_properties(example_gemmini_matmul PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;9;exo_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_x86_sgemm "/root/repo/build/examples/x86_sgemm")
set_tests_properties(example_x86_sgemm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;4;add_test;/root/repo/examples/CMakeLists.txt;10;exo_add_example;/root/repo/examples/CMakeLists.txt;0;")
