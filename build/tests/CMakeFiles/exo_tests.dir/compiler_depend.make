# Empty compiler generated dependencies file for exo_tests.
# This may be replaced when dependencies are built.
