
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AutoscheduleTest.cpp" "tests/CMakeFiles/exo_tests.dir/AutoscheduleTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/AutoscheduleTest.cpp.o.d"
  "/root/repo/tests/CodeGenTest.cpp" "tests/CMakeFiles/exo_tests.dir/CodeGenTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/CodeGenTest.cpp.o.d"
  "/root/repo/tests/ConvTest.cpp" "tests/CMakeFiles/exo_tests.dir/ConvTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/ConvTest.cpp.o.d"
  "/root/repo/tests/EffectsTest.cpp" "tests/CMakeFiles/exo_tests.dir/EffectsTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/EffectsTest.cpp.o.d"
  "/root/repo/tests/EscapeHatchTest.cpp" "tests/CMakeFiles/exo_tests.dir/EscapeHatchTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/EscapeHatchTest.cpp.o.d"
  "/root/repo/tests/GemminiTest.cpp" "tests/CMakeFiles/exo_tests.dir/GemminiTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/GemminiTest.cpp.o.d"
  "/root/repo/tests/IRTest.cpp" "tests/CMakeFiles/exo_tests.dir/IRTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/IRTest.cpp.o.d"
  "/root/repo/tests/IntegrationTest.cpp" "tests/CMakeFiles/exo_tests.dir/IntegrationTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/IntegrationTest.cpp.o.d"
  "/root/repo/tests/InterpTest.cpp" "tests/CMakeFiles/exo_tests.dir/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/InterpTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/exo_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PatternTest.cpp" "tests/CMakeFiles/exo_tests.dir/PatternTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/PatternTest.cpp.o.d"
  "/root/repo/tests/SchedulingOpsTest.cpp" "tests/CMakeFiles/exo_tests.dir/SchedulingOpsTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/SchedulingOpsTest.cpp.o.d"
  "/root/repo/tests/SchedulingTest.cpp" "tests/CMakeFiles/exo_tests.dir/SchedulingTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/SchedulingTest.cpp.o.d"
  "/root/repo/tests/SgemmTest.cpp" "tests/CMakeFiles/exo_tests.dir/SgemmTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/SgemmTest.cpp.o.d"
  "/root/repo/tests/SolverPropertyTest.cpp" "tests/CMakeFiles/exo_tests.dir/SolverPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/SolverPropertyTest.cpp.o.d"
  "/root/repo/tests/SolverTest.cpp" "tests/CMakeFiles/exo_tests.dir/SolverTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/SolverTest.cpp.o.d"
  "/root/repo/tests/StaticChecksTest.cpp" "tests/CMakeFiles/exo_tests.dir/StaticChecksTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/StaticChecksTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/exo_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/exo_tests.dir/SupportTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exo_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_scheduling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_hwlibs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
